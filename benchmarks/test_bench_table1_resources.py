"""Benchmark regenerating Table I — hardware overhead of the evaluated controllers.

The structural resource model replaces FPGA synthesis (see DESIGN.md); the
benchmark prints the model-vs-published table and checks that the headline
ratios quoted in Section V-B of the paper are reproduced within a tolerance.
"""

import pytest

from repro.experiments import run_table1
from repro.hardware.resources import PUBLISHED_TABLE1


@pytest.mark.benchmark(group="table1")
def test_table1_resource_estimates(benchmark):
    result = benchmark(run_table1)

    print()
    print("Table I — hardware overhead (structural model vs published)")
    print(result.to_table())

    # Every modelled LUT/register count is within 10% of the published value
    # (the UART/SPI/CAN anchors are exact by calibration).
    for name, published in PUBLISHED_TABLE1.items():
        estimate = result.estimates[name]
        assert estimate.luts == pytest.approx(published["luts"], rel=0.10)
        assert estimate.registers == pytest.approx(published["registers"], rel=0.10)
        assert estimate.dsps == published["dsps"]
        assert estimate.bram_kb == published["bram_kb"]

    ratios = result.ratios()
    # Paper: proposed uses 23.6% of MB-F LUTs and 22.4% of its registers.
    assert ratios["luts_vs_mb_full"] == pytest.approx(0.236, abs=0.03)
    assert ratios["registers_vs_mb_full"] == pytest.approx(0.224, abs=0.03)
    # Paper: 135.4% LUTs / 185.6% registers of a MB-B.
    assert ratios["luts_vs_mb_basic"] == pytest.approx(1.354, abs=0.10)
    assert ratios["registers_vs_mb_basic"] == pytest.approx(1.856, abs=0.10)
    # Paper: +30.5% LUTs / +52.2% registers over GPIOCP.
    assert ratios["extra_luts_vs_gpiocp"] == pytest.approx(0.305, abs=0.06)
    assert ratios["extra_registers_vs_gpiocp"] == pytest.approx(0.522, abs=0.06)
    # Paper: 8.7% / 4.6% of the MicroBlazes' power.
    assert ratios["power_vs_mb_basic"] == pytest.approx(0.087, abs=0.02)
    assert ratios["power_vs_mb_full"] == pytest.approx(0.046, abs=0.02)
