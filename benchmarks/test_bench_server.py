"""Benchmarks of the serving daemon (``repro.server``).

What makes the daemon worth running is the *warm* path: a request whose
answer is already cached costs one socket round-trip instead of a process
start, pool spin-up and cache load.  Two numbers track it in
``BENCH_results.json``:

* **warm round-trip latency** — one cached schedule request through the full
  stack (client encode, TCP, framing, dispatch, cache hit, response encode);
* **pipelined warm throughput** — a windowed batch of cached requests on one
  connection, the way ``python -m repro.server request`` actually ships
  batches.
"""

import pytest

from repro.server import ServerClient, ThreadedServer
from repro.service import ScheduleRequest, SchedulerSpec
from repro.scenario import create_scenario

SCENARIO = create_scenario("short-hyperperiod")


@pytest.fixture(scope="module")
def warm_server():
    with ThreadedServer(n_workers=1, port=0) as threaded:
        with ServerClient(threaded.host, threaded.port) as client:
            request = ScheduleRequest(
                scenario=SCENARIO, spec=SchedulerSpec.parse("static")
            )
            client.schedule(request)  # warm the daemon's cache
            yield client, request


@pytest.mark.benchmark(group="server")
def test_warm_round_trip_latency(benchmark, warm_server):
    client, request = warm_server
    response = benchmark(client.schedule, request)
    assert response.cache == "hit"
    print(f"\nwarm round-trip: {benchmark.stats.stats.median * 1e6:.0f} us")


@pytest.mark.benchmark(group="server")
def test_warm_pipelined_batch_throughput(benchmark, warm_server):
    client, request = warm_server
    batch = [request] * 64
    responses = benchmark(client.schedule_batch, batch)
    assert all(response.cache == "hit" for response in responses)
    per_request = benchmark.stats.stats.median / len(batch)
    print(
        f"\npipelined warm batch: {per_request * 1e6:.1f} us/request "
        f"({len(batch) / benchmark.stats.stats.median:,.0f} req/s)"
    )
