"""Observability overhead benchmarks.

PR 9 instrumented the warm serving path (request counters, per-phase latency
histograms, trace spans).  The contract is that observability is effectively
free where it matters most — the cached round-trip:

* **instrumented warm round-trip** — the same measurement as
  ``test_bench_server.py::test_warm_round_trip_latency``, now running through
  the instrumented dispatcher and cache.  When ``REPRO_BENCH_BASELINE``
  points at a pre-instrumentation baseline, the median must stay within
  ``OVERHEAD_TOLERANCE`` (5%) of the baseline's warm RTT
  (``REPRO_BENCH_BASELINE_MODE=warn`` downgrades a breach to a warning);
* **registry micro-costs** — a counter increment and a histogram observation,
  the two operations sitting on the warm path.
"""

import json
import os
import warnings

import pytest

from repro.obs import REQUEST_LATENCY_MS, REQUESTS_TOTAL, MetricsRegistry, render
from repro.scenario import create_scenario
from repro.server import ServerClient, ThreadedServer
from repro.service import ScheduleRequest, SchedulerSpec

SCENARIO = create_scenario("short-hyperperiod")

#: Allowed instrumented-vs-uninstrumented warm-RTT slowdown (0.05 == +5%).
OVERHEAD_TOLERANCE = 0.05

#: The pre-instrumentation warm-RTT median this PR is measured against.
BASELINE_KEY = "benchmarks/test_bench_server.py::test_warm_round_trip_latency"


@pytest.fixture(scope="module")
def warm_server():
    with ThreadedServer(n_workers=1, port=0) as threaded:
        with ServerClient(threaded.host, threaded.port) as client:
            request = ScheduleRequest(
                scenario=SCENARIO, spec=SchedulerSpec.parse("static")
            )
            client.schedule(request)  # warm the daemon's cache
            yield client, request


def _baseline_warm_rtt(rootpath) -> float:
    """The committed warm-RTT median, or 0.0 when no baseline is configured."""
    baseline_path = os.environ.get("REPRO_BENCH_BASELINE")
    if not baseline_path:
        return 0.0
    resolved = os.path.join(str(rootpath), baseline_path)
    try:
        with open(resolved, "r", encoding="utf-8") as handle:
            value = json.load(handle).get(BASELINE_KEY)
    except (OSError, ValueError):
        return 0.0
    return float(value) if isinstance(value, (int, float)) and value > 0 else 0.0


@pytest.mark.benchmark(group="obs")
def test_instrumented_warm_round_trip_overhead(benchmark, warm_server, request):
    client, schedule_request = warm_server
    response = benchmark(client.schedule, schedule_request)
    assert response.cache == "hit"

    median = benchmark.stats.stats.median
    baseline = _baseline_warm_rtt(request.config.rootpath)
    print(f"\ninstrumented warm round-trip: {median * 1e6:.0f} us")
    if not baseline:
        return
    overhead = median / baseline - 1.0
    print(f"overhead vs uninstrumented baseline: {overhead * +100.0:+.1f}%")
    if median <= baseline * (1.0 + OVERHEAD_TOLERANCE):
        return
    message = (
        f"instrumented warm RTT {median:.6f}s exceeds baseline "
        f"{baseline:.6f}s by {overhead * 100.0:.1f}% "
        f"(tolerance +{OVERHEAD_TOLERANCE * 100.0:.0f}%)"
    )
    if os.environ.get("REPRO_BENCH_BASELINE_MODE", "fail").lower() == "warn":
        warnings.warn(message, stacklevel=1)
    else:
        pytest.fail(message)


@pytest.mark.benchmark(group="obs")
def test_counter_increment_cost(benchmark):
    registry = MetricsRegistry()

    def bump():
        registry.counter_inc(REQUESTS_TOTAL, kind="schedule", cache="hit")

    benchmark(bump)
    print(f"\ncounter increment: {benchmark.stats.stats.median * 1e9:.0f} ns")


@pytest.mark.benchmark(group="obs")
def test_histogram_observation_cost(benchmark):
    registry = MetricsRegistry()

    def observe():
        registry.histogram_observe(
            REQUEST_LATENCY_MS, 0.4, kind="schedule", phase="cache-lookup"
        )

    benchmark(observe)
    print(f"\nhistogram observation: {benchmark.stats.stats.median * 1e9:.0f} ns")


@pytest.mark.benchmark(group="obs")
def test_exposition_render_throughput(benchmark):
    registry = MetricsRegistry()
    for kind in ("schedule", "simulation"):
        for phase in ("queue-wait", "cache-lookup", "schedule", "simulate", "store"):
            for value in (0.2, 1.5, 40.0, 900.0):
                registry.histogram_observe(
                    REQUEST_LATENCY_MS, value, kind=kind, phase=phase
                )
        for cache in ("hit", "miss"):
            registry.counter_inc(REQUESTS_TOTAL, 50, kind=kind, cache=cache)
    snapshot = registry.snapshot()
    text = benchmark(render, snapshot)
    assert "repro_request_latency_ms_bucket" in text
    print(f"\nexposition render: {benchmark.stats.stats.median * 1e6:.1f} us")
