"""Benchmarks of the campaign layer: grid expansion and report aggregation.

The campaign subsystem's own overhead must stay negligible next to the
scheduling work it orchestrates.  Two hot paths are measured in isolation —
no scheduler runs here:

* **grid expansion** — ``CampaignSpec.cells()`` plus per-cell request
  construction (scenario pinning, spec parsing, content hashing), the cost a
  resume pays to discover pending work;
* **report aggregation** — ``CampaignReport.from_records`` over a
  synthetically-journalled grid, the cost of ``report`` on a big campaign.
"""

import pytest

from repro.campaign import CampaignReport, CampaignSpec, cell_request

#: A production-shaped grid: 4 presets x 3 methods x systems x utilisations.
GRID_SPEC = CampaignSpec(
    name="bench-grid",
    scenarios=("paper-default", "short-hyperperiod", "bursty-periods", "wide-noc"),
    methods=("static", "gpiocp", "fps-offline"),
    n_systems=25,
    utilisations=(0.3, 0.5, 0.7),
    replications=2,
)


@pytest.mark.benchmark(group="campaign")
def test_campaign_grid_expansion_throughput(benchmark):
    def expand():
        return [cell_request(GRID_SPEC, cell) for cell in GRID_SPEC.cells()]

    requests = benchmark(expand)
    assert len(requests) == GRID_SPEC.n_cells == 1800


@pytest.mark.benchmark(group="campaign")
def test_campaign_report_aggregation_throughput(benchmark):
    # Journal-shaped records for every cell, deterministic but varied.
    records = {}
    for index, cell in enumerate(GRID_SPEC.cells()):
        records[cell.key()] = {
            "schedulable": index % 7 != 0,
            "psi": (index % 101) / 100.0,
            "upsilon": (index % 89) / 88.0,
            "best_psi": (index % 103) / 102.0,
            "best_upsilon": (index % 97) / 96.0,
            "response_time": float(1000 + index % 5000),
        }

    report = benchmark(CampaignReport.from_records, GRID_SPEC, records)
    assert report.complete
    assert report.n_cells_aggregated == GRID_SPEC.n_cells
    assert len(report.leaderboard("psi")) == len(GRID_SPEC.methods)
