"""Ablation benchmarks for the design choices called out in DESIGN.md.

Two knobs of the reproduction are exercised here:

* **LCC-D placement policy** — the paper places sacrificed jobs purely for
  schedulability (earliest fit); the `prefer_ideal_placement` variant snaps
  them as close to their ideal start as the chosen slot allows.  The ablation
  quantifies how much of the GA's Upsilon advantage that single change recovers.
* **GA seeding** — the GA is seeded with the heuristic solution (which is why
  its schedulability and Psi are never worse than the static method); the
  unseeded variant shows the cost of pure random initialisation at the same
  search budget.
"""

import pytest

from repro.experiments.stats import format_table, mean
from repro.scheduling import GAConfig, GAScheduler, HeuristicScheduler
from repro.taskgen import SystemGenerator


def _schedulable_systems(count: int, utilisation: float):
    systems = []
    seed = 0
    while len(systems) < count:
        task_set = SystemGenerator(rng=1000 + seed).generate(utilisation)
        seed += 1
        if HeuristicScheduler().schedule_taskset(task_set).schedulable:
            systems.append(task_set)
    return systems


@pytest.mark.benchmark(group="ablation")
def test_ablation_lccd_placement_policy(benchmark):
    systems = _schedulable_systems(5, utilisation=0.5)

    def run():
        rows = []
        for variant, scheduler in (
            ("earliest-fit (paper)", HeuristicScheduler()),
            ("prefer-ideal", HeuristicScheduler(prefer_ideal_placement=True)),
        ):
            results = [scheduler.schedule_taskset(ts) for ts in systems]
            rows.append(
                {
                    "variant": variant,
                    "psi": mean([r.psi for r in results]),
                    "upsilon": mean([r.upsilon for r in results]),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Ablation — LCC-D placement policy (5 schedulable systems, U = 0.5)")
    print(format_table(rows))

    earliest, prefer = rows
    # Snapping sacrificed jobs towards their ideal start can only help quality
    # and never changes which jobs are exactly accurate by construction.
    assert prefer["upsilon"] >= earliest["upsilon"] - 1e-9
    assert prefer["psi"] >= earliest["psi"] - 1e-9


@pytest.mark.benchmark(group="ablation")
def test_ablation_ga_seeding(benchmark):
    systems = _schedulable_systems(3, utilisation=0.5)

    def run():
        rows = []
        for variant, config in (
            ("seeded (default)", GAConfig(population_size=24, generations=12, seed=4)),
            (
                "unseeded",
                GAConfig(
                    population_size=24, generations=12, seed=4, seed_with_heuristic=False
                ),
            ),
        ):
            results = [GAScheduler(config).schedule_taskset(ts) for ts in systems]
            rows.append(
                {
                    "variant": variant,
                    "schedulable": mean([float(r.schedulable) for r in results]),
                    "psi": mean([r.psi for r in results]),
                    "upsilon": mean([r.upsilon for r in results]),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Ablation — GA initial-population seeding (3 schedulable systems, U = 0.5)")
    print(format_table(rows))

    seeded, unseeded = rows
    # Seeding with the heuristic solution never hurts feasibility or exactness.
    assert seeded["schedulable"] >= unseeded["schedulable"] - 1e-9
    assert seeded["psi"] >= unseeded["psi"] - 0.05
