"""Benchmark regenerating Figure 6 — Psi (exactly timing-accurate jobs) vs utilisation."""

import pytest

from repro.experiments import ExperimentRunner
from repro.experiments.stats import mean


@pytest.mark.benchmark(group="fig6")
def test_fig6_psi_sweep(benchmark, quick_config):
    runner = ExperimentRunner(quick_config)
    sweep = benchmark.pedantic(runner.accuracy_sweep, rounds=1, iterations=1)
    result = sweep.psi

    print()
    print("Figure 6 — Psi of the offline scheduling methods (reduced-scale reproduction)")
    print(result.to_table())

    series = result.series
    # FPS never executes a job exactly at its ideal start time (Psi = 0 in the paper).
    assert all(value == 0.0 for value in series["fps"])
    # The static heuristic explicitly maximises Psi: it is the best method on average,
    # and the GA (whose front contains the heuristic seed) is at least as good as GPIOCP.
    assert mean(series["static"]) >= mean(series["gpiocp"]) - 1e-9
    assert mean(series["static"]) >= mean(series["fps"]) - 1e-9
    assert mean(series["ga"]) >= mean(series["gpiocp"]) - 1e-9
    # GPIOCP's accuracy falls as utilisation (queueing pressure) grows.
    assert series["gpiocp"][-1] <= series["gpiocp"][0] + 1e-9
