"""Benchmarks of the scheduling service: batch throughput and cache hits.

Two properties are demonstrated on a synthetic request batch:

* **batch scheduling throughput** — a mixed batch of methods through
  :class:`~repro.service.SchedulingService` costs what the underlying
  schedulers cost (the facade adds only hashing and envelope building);
* **near-free cache hits** — resubmitting the same batch against the
  populated content-addressed cache recomputes nothing and completes orders
  of magnitude faster.
"""

import time

import pytest

from repro.service import ScheduleRequest, SchedulerSpec, SchedulingService
from repro.taskgen import GeneratorConfig, SystemGenerator

#: Methods exercised per task set (the GA dominates, as in the sweeps).
SPECS = ("fps-offline", "gpiocp", "static", "ga:population_size=16,generations=8")
N_SYSTEMS = 6


@pytest.fixture(scope="module")
def request_batch():
    return [
        ScheduleRequest(
            task_set=SystemGenerator(GeneratorConfig(), rng=index).generate(0.5),
            spec=SchedulerSpec.parse(spec),
            request_id=f"{index}/{spec}",
        )
        for index in range(N_SYSTEMS)
        for spec in SPECS
    ]


@pytest.mark.benchmark(group="service")
def test_service_batch_throughput(benchmark, request_batch):
    def run_batch():
        with SchedulingService(cache=None) as service:
            return service.submit_batch(request_batch)

    responses = benchmark.pedantic(run_batch, rounds=1, iterations=1)
    assert len(responses) == len(request_batch)
    assert all(response.cache == "disabled" for response in responses)


@pytest.mark.benchmark(group="service")
def test_service_cache_hits_are_near_free(benchmark, request_batch, tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("service-cache"))

    start = time.perf_counter()
    with SchedulingService(cache_dir=cache_dir) as service:
        cold = service.submit_batch(request_batch)
        assert service.computed == len(request_batch)
    cold_seconds = time.perf_counter() - start

    def warm_run():
        with SchedulingService(cache_dir=cache_dir) as service:
            responses = service.submit_batch(request_batch)
            assert service.computed == 0
            return responses

    start = time.perf_counter()
    warm = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    warm_seconds = time.perf_counter() - start

    assert all(response.cache == "hit" for response in warm)
    assert [r.result_dict() for r in warm] == [r.result_dict() for r in cold]
    # "Near-free": the warm batch must beat the cold one by a wide margin.
    assert warm_seconds < cold_seconds / 5, (
        f"warm batch took {warm_seconds:.3f}s vs cold {cold_seconds:.3f}s"
    )
