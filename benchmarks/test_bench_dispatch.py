"""Benchmarks of the warm-worker dispatch fast path.

Three properties of the PR-10 fast path are demonstrated:

* **warm vs cold cell latency** — re-running a scenario cell against warm
  per-process memo caches (materialisation, heuristic schedules, GA problems)
  skips every re-derivation and must beat the cold run;
* **batched vs per-key SQLite lookup** — one ``get_many`` query answers a
  whole batch of keys far faster than a ``get`` per key;
* the batched path stays byte-identical to the per-key path.
"""

import time

import pytest

from repro.core.memo import reset_memos
from repro.scenario import create_scenario
from repro.service import ScheduleRequest, SchedulingService
from repro.store import SqliteBackend

#: One scenario cell: every method over a few systems of one scenario.
SPECS = ("static", "gpiocp", "ga:population_size=16,generations=8")
N_SYSTEMS = 3


def cell_batch():
    scenario = create_scenario("short-hyperperiod")
    return [
        ScheduleRequest(
            scenario=scenario,
            spec=spec,
            system_index=index,
            request_id=f"{index}/{spec}",
        )
        for index in range(N_SYSTEMS)
        for spec in SPECS
    ]


def run_cell():
    with SchedulingService(cache=None) as service:
        return service.submit_batch(cell_batch())


@pytest.mark.benchmark(group="dispatch")
def test_cold_cell_latency(benchmark):
    """A scenario cell with every memo cache empty (the pre-PR-10 cost)."""

    def cold_setup():
        reset_memos()
        return (), {}

    responses = benchmark.pedantic(run_cell, setup=cold_setup, rounds=3, iterations=1)
    assert len(responses) == len(SPECS) * N_SYSTEMS
    reset_memos()


@pytest.mark.benchmark(group="dispatch")
def test_warm_cell_latency(benchmark):
    """The same cell against warm memos — and byte-identical to the cold run."""
    reset_memos()
    start = time.perf_counter()
    cold = run_cell()
    cold_seconds = time.perf_counter() - start

    responses = benchmark.pedantic(run_cell, rounds=3, iterations=1)
    assert [r.result_dict() for r in responses] == [r.result_dict() for r in cold]
    assert benchmark.stats.stats.median < cold_seconds, (
        f"warm cell no faster than cold ({benchmark.stats.stats.median:.3f}s "
        f"vs {cold_seconds:.3f}s)"
    )
    reset_memos()


N_KEYS = 300


@pytest.fixture(scope="module")
def populated_sqlite(tmp_path_factory):
    path = tmp_path_factory.mktemp("dispatch-bench") / "cache.db"
    with SqliteBackend(path) as backend:
        backend.put_many(
            [
                (
                    f"{index:016x}",
                    {"kind": "repro/test-entry", "version": 1, "data": {"i": index}},
                )
                for index in range(N_KEYS)
            ]
        )
        yield backend


@pytest.mark.benchmark(group="dispatch")
def test_sqlite_lookup_per_key(benchmark, populated_sqlite):
    """The pre-PR-10 lookup loop: one SQLite query per key."""
    keys = [f"{index:016x}" for index in range(N_KEYS)]

    def per_key():
        return {key: populated_sqlite.get(key) for key in keys}

    found = benchmark(per_key)
    assert len(found) == N_KEYS


@pytest.mark.benchmark(group="dispatch")
def test_sqlite_lookup_batched(benchmark, populated_sqlite):
    """One batched ``get_many`` query — same answers, far fewer round trips."""
    keys = [f"{index:016x}" for index in range(N_KEYS)]

    start = time.perf_counter()
    per_key = {key: populated_sqlite.get(key) for key in keys}
    per_key_seconds = time.perf_counter() - start

    found = benchmark(lambda: populated_sqlite.get_many(keys))
    assert found == per_key
    assert benchmark.stats.stats.median < per_key_seconds, (
        "batched lookup no faster than per-key"
    )
