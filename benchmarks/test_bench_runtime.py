"""Benchmarks of the run-time simulation subsystem (``repro.runtime``).

Two numbers track the subsystem's performance trajectory in
``BENCH_results.json``:

* **simulated events per second** — the cold path: materialise the scenario,
  obtain the schedule, execute it on the dedicated-controller model through
  the discrete-event simulator;
* **cache-hit latency** — the warm path: answering the same simulation
  request from the content-addressed response cache, which is what makes
  long-horizon runtime sweeps near-free on reruns.
"""

import pytest

from repro.runtime import SimulationRequest, SimulationService, execute_simulation
from repro.scenario import create_scenario

SCENARIO = create_scenario("short-hyperperiod")


@pytest.mark.benchmark(group="runtime")
def test_execute_simulation_events_per_second(benchmark):
    request = SimulationRequest(
        scenario=SCENARIO, execution_model="dedicated-controller"
    )
    response = benchmark(execute_simulation, request)
    assert response.schedulable
    assert response.matches_offline
    events_per_second = response.events_processed / benchmark.stats.stats.median
    print(
        f"\n{response.events_processed} events/run, "
        f"{events_per_second:,.0f} simulated events/s"
    )


@pytest.mark.benchmark(group="runtime")
def test_simulation_cache_hit_latency(benchmark):
    request = SimulationRequest(
        scenario=SCENARIO, execution_model="dedicated-controller"
    )
    with SimulationService() as service:
        service.submit(request)  # warm the cache

        responses = benchmark(service.submit_batch, [request] * 10)
    assert all(response.cache == "hit" for response in responses)
    per_hit = benchmark.stats.stats.median / len(responses)
    print(f"\ncache-hit latency: {per_hit * 1e6:.1f} us/request")
