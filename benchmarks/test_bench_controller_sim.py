"""Benchmark of the run-time execution experiment (Sections I and IV).

Not a numbered figure of the paper, but the architectural claim behind it:
executing the offline schedule on the dedicated controller preserves every
start time exactly, while CPU-instigated I/O over the NoC loses exactness to
communication latency and arbitration jitter.
"""

import pytest

from repro.experiments import run_controller_sim
from repro.experiments.stats import format_table


@pytest.mark.benchmark(group="controller-sim")
def test_controller_runtime_vs_remote_cpu(benchmark, quick_config):
    result = benchmark.pedantic(
        lambda: run_controller_sim(utilisation=0.5, config=quick_config, seed=11),
        rounds=1,
        iterations=1,
    )

    print()
    print("Run-time execution of the same offline schedule")
    print(format_table(result.rows()))
    print(f"NoC request latency: mean {result.mean_noc_latency:.1f} us, "
          f"max {result.max_noc_latency} us")

    # The dedicated controller reproduces the offline schedule exactly.
    assert result.controller_matches_offline
    assert result.controller_psi == pytest.approx(result.offline_psi)
    # CPU-instigated I/O pays NoC latency on every request: exactness collapses.
    assert result.remote_cpu_psi < result.controller_psi
    assert result.mean_noc_latency > 0
