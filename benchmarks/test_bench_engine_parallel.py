"""Benchmarks of the parallel experiment engine and its artifact cache.

Two properties are demonstrated on ``ExperimentConfig.quick()``:

* **parallel speedup** — the schedulability sweep on 4 workers is at least
  2x faster than the serial run (asserted only when the machine actually has
  >= 4 CPUs; the determinism assertion — bit-identical series at any worker
  count — holds everywhere);
* **near-free cache hits** — re-running a sweep against a populated artifact
  store recomputes nothing and completes orders of magnitude faster.
"""

import os
import time

import pytest

from repro.experiments import ExperimentConfig, ExperimentEngine

PARALLEL_WORKERS = 4


@pytest.mark.benchmark(group="engine")
def test_engine_parallel_speedup(benchmark, quick_config, tmp_path_factory):
    config = quick_config.with_overrides(n_workers=1, artifact_dir=None)

    start = time.perf_counter()
    with ExperimentEngine(config, n_workers=1) as engine:
        serial = engine.schedulability_sweep()
    serial_seconds = time.perf_counter() - start

    def parallel_run():
        with ExperimentEngine(config, n_workers=PARALLEL_WORKERS) as engine:
            return engine.schedulability_sweep()

    start = time.perf_counter()
    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    parallel_seconds = time.perf_counter() - start

    # Bit-identical results at any worker count, on any machine.
    assert parallel.series == serial.series
    assert parallel.utilisations == serial.utilisations

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    print()
    print(
        f"engine speedup: serial {serial_seconds:.2f}s, "
        f"{PARALLEL_WORKERS} workers {parallel_seconds:.2f}s "
        f"-> {speedup:.2f}x on {os.cpu_count()} CPUs"
    )
    # Wall-clock assertions need dedicated cores: skip on machines with too
    # few CPUs and on shared CI runners (neighbour load makes timing flaky).
    if (os.cpu_count() or 1) >= PARALLEL_WORKERS and not os.environ.get("CI"):
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {PARALLEL_WORKERS} workers on "
            f"{os.cpu_count()} CPUs, measured {speedup:.2f}x"
        )


@pytest.mark.benchmark(group="engine")
def test_engine_artifact_cache_makes_reruns_near_free(benchmark, quick_config, tmp_path_factory):
    artifact_dir = str(tmp_path_factory.mktemp("engine-cache"))
    config = quick_config.with_overrides(n_workers=1, artifact_dir=artifact_dir)

    start = time.perf_counter()
    with ExperimentEngine(config) as engine:
        cold = engine.schedulability_sweep()
        cold_cells = engine.cells_computed
    cold_seconds = time.perf_counter() - start

    def warm_run():
        with ExperimentEngine(config) as engine:
            result = engine.schedulability_sweep()
            assert engine.cells_computed == 0, "cache hit must not recompute cells"
            return result

    start = time.perf_counter()
    warm = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    warm_seconds = time.perf_counter() - start

    assert cold_cells > 0
    assert warm.series == cold.series
    print()
    print(
        f"artifact cache: cold {cold_seconds:.2f}s ({cold_cells} cells), "
        f"warm {warm_seconds:.3f}s"
    )
    assert warm_seconds < cold_seconds / 5, (
        f"cached rerun ({warm_seconds:.3f}s) should be far faster than the "
        f"cold run ({cold_seconds:.2f}s)"
    )
