"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (fewer random systems, smaller GA budget) so the whole suite completes
in minutes; the ``ExperimentConfig.paper_scale()`` configuration reproduces
the full-size evaluation when more compute is available.

The figure benchmarks run through the parallel experiment engine; set
``REPRO_BENCH_WORKERS`` to a worker count to benchmark the multi-process
path (the default of 1 keeps timings comparable across machines).
"""

import os

import pytest

from repro.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    """The reduced-scale experiment configuration shared by the benchmarks."""
    n_workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    return ExperimentConfig.quick().with_overrides(n_workers=n_workers)
