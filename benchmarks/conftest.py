"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (fewer random systems, smaller GA budget) so the whole suite completes
in minutes; the ``ExperimentConfig.paper_scale()`` configuration reproduces
the full-size evaluation when more compute is available.

The figure benchmarks run through the parallel experiment engine; set
``REPRO_BENCH_WORKERS`` to a worker count to benchmark the multi-process
path (the default of 1 keeps timings comparable across machines).

Whenever benchmarks actually run, the session additionally emits a
machine-readable ``BENCH_results.json`` — a flat ``{benchmark name: median
seconds}`` mapping — so the performance trajectory can be tracked across
commits without parsing pytest's console tables.  Set ``REPRO_BENCH_RESULTS``
to override the output path (relative to the pytest rootdir).

Setting ``REPRO_BENCH_BASELINE`` additionally compares the session's medians
against a committed baseline file (e.g. the repo's ``BENCH_results.json``):
any benchmark slower than baseline by more than ``REPRO_BENCH_TOLERANCE``
(default 20%) fails the session — or only warns when
``REPRO_BENCH_BASELINE_MODE=warn`` (the CI-friendly setting: machine noise
should not break unrelated PRs).
"""

import json
import os
import warnings

import pytest

from repro.core.serialization import atomic_write_json
from repro.experiments import ExperimentConfig

#: Default output file of the machine-readable benchmark summary.
BENCH_RESULTS_FILENAME = "BENCH_results.json"

#: Default allowed slowdown versus the baseline medians (0.20 == +20%).
DEFAULT_BASELINE_TOLERANCE = 0.20


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    """The reduced-scale experiment configuration shared by the benchmarks."""
    n_workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    return ExperimentConfig.quick().with_overrides(n_workers=n_workers)


def _benchmark_medians(session) -> dict:
    """Collect ``{fullname: median seconds}`` from the benchmark session.

    Defensive against pytest-benchmark internals: benchmarks that errored (or
    never produced stats, e.g. ``--benchmark-disable`` runs) are skipped, and
    any attribute mismatch across plugin versions degrades to an empty dict
    rather than failing the whole test session in its finish hook.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return {}
    medians = {}
    for bench in getattr(bench_session, "benchmarks", ()) or ():
        if getattr(bench, "has_error", False):
            continue
        stats = getattr(bench, "stats", None)
        median = getattr(stats, "median", None)
        name = getattr(bench, "fullname", None) or getattr(bench, "name", None)
        if name is not None and isinstance(median, (int, float)):
            medians[str(name)] = float(median)
    return medians


def _baseline_regressions(medians: dict, baseline: dict, tolerance: float) -> list:
    """Benchmarks slower than baseline by more than ``tolerance`` (fractional)."""
    regressions = []
    for name, median in medians.items():
        reference = baseline.get(name)
        if not isinstance(reference, (int, float)) or reference <= 0:
            continue
        if median > reference * (1.0 + tolerance):
            regressions.append(
                f"{name}: {median:.4f}s vs baseline {reference:.4f}s "
                f"(+{(median / reference - 1.0) * 100.0:.0f}%, "
                f"tolerance +{tolerance * 100.0:.0f}%)"
            )
    return regressions


def _load_baseline(session) -> dict:
    """Baseline medians named by ``REPRO_BENCH_BASELINE``, or ``{}`` when unset.

    Loaded *before* the session's own results are written, so pointing the
    baseline at the results file compares against the previous run, not
    against itself.
    """
    baseline_path = os.environ.get("REPRO_BENCH_BASELINE")
    if not baseline_path:
        return {}
    resolved = os.path.join(str(session.config.rootpath), baseline_path)
    with open(resolved, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _check_baseline(session, medians: dict, baseline: dict) -> None:
    """Optional ``REPRO_BENCH_BASELINE`` regression gate over the medians."""
    if not baseline or not medians:
        return
    tolerance = float(
        os.environ.get("REPRO_BENCH_TOLERANCE", str(DEFAULT_BASELINE_TOLERANCE))
    )
    regressions = _baseline_regressions(medians, baseline, tolerance)
    if not regressions:
        return
    message = "benchmark regression vs {}: {}".format(
        os.environ.get("REPRO_BENCH_BASELINE"), "; ".join(regressions)
    )
    if os.environ.get("REPRO_BENCH_BASELINE_MODE", "fail").lower() == "warn":
        warnings.warn(message, stacklevel=1)
        return
    # pytest.exit inside sessionfinish is the supported way to force the exit
    # code from a finish hook (wrap_session adopts the returncode).
    pytest.exit(message, returncode=int(pytest.ExitCode.TESTS_FAILED))


def pytest_sessionfinish(session, exitstatus):
    """Emit ``BENCH_results.json`` when at least one benchmark produced stats."""
    # The baseline load/gate sits outside the try: a configured-but-broken
    # baseline (missing file, bad JSON) should be loud, not silently skipped.
    baseline = _load_baseline(session)
    try:  # never fail the run over reporting
        medians = _benchmark_medians(session)
        if not medians:
            return
        target = os.environ.get("REPRO_BENCH_RESULTS", BENCH_RESULTS_FILENAME)
        path = os.path.join(str(session.config.rootpath), target)
        atomic_write_json(path, medians)
    except Exception:
        return
    _check_baseline(session, medians, baseline)
