"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (fewer random systems, smaller GA budget) so the whole suite completes
in minutes; the ``ExperimentConfig.paper_scale()`` configuration reproduces
the full-size evaluation when more compute is available.
"""

import pytest

from repro.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    """The reduced-scale experiment configuration shared by the benchmarks."""
    return ExperimentConfig.quick()
