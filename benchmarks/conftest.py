"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (fewer random systems, smaller GA budget) so the whole suite completes
in minutes; the ``ExperimentConfig.paper_scale()`` configuration reproduces
the full-size evaluation when more compute is available.

The figure benchmarks run through the parallel experiment engine; set
``REPRO_BENCH_WORKERS`` to a worker count to benchmark the multi-process
path (the default of 1 keeps timings comparable across machines).

Whenever benchmarks actually run, the session additionally emits a
machine-readable ``BENCH_results.json`` — a flat ``{benchmark name: median
seconds}`` mapping — so the performance trajectory can be tracked across
commits without parsing pytest's console tables.  Set ``REPRO_BENCH_RESULTS``
to override the output path (relative to the pytest rootdir).
"""

import os

import pytest

from repro.core.serialization import atomic_write_json
from repro.experiments import ExperimentConfig

#: Default output file of the machine-readable benchmark summary.
BENCH_RESULTS_FILENAME = "BENCH_results.json"


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    """The reduced-scale experiment configuration shared by the benchmarks."""
    n_workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    return ExperimentConfig.quick().with_overrides(n_workers=n_workers)


def _benchmark_medians(session) -> dict:
    """Collect ``{fullname: median seconds}`` from the benchmark session.

    Defensive against pytest-benchmark internals: benchmarks that errored (or
    never produced stats, e.g. ``--benchmark-disable`` runs) are skipped, and
    any attribute mismatch across plugin versions degrades to an empty dict
    rather than failing the whole test session in its finish hook.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return {}
    medians = {}
    for bench in getattr(bench_session, "benchmarks", ()) or ():
        if getattr(bench, "has_error", False):
            continue
        stats = getattr(bench, "stats", None)
        median = getattr(stats, "median", None)
        name = getattr(bench, "fullname", None) or getattr(bench, "name", None)
        if name is not None and isinstance(median, (int, float)):
            medians[str(name)] = float(median)
    return medians


def pytest_sessionfinish(session, exitstatus):
    """Emit ``BENCH_results.json`` when at least one benchmark produced stats."""
    try:  # never fail the run over reporting
        medians = _benchmark_medians(session)
        if not medians:
            return
        target = os.environ.get("REPRO_BENCH_RESULTS", BENCH_RESULTS_FILENAME)
        path = os.path.join(str(session.config.rootpath), target)
        atomic_write_json(path, medians)
    except Exception:
        return
