"""Benchmarks of the scenario API: materialisation throughput and overhead.

Materialisation sits on every hot path of a scenario-backed run — each sweep
cell regenerates its system from the declarative description — so it must
stay cheap: a content-hash seed derivation plus one synthetic-system draw and
two small object graphs (controller, mesh).  The benchmark reports systems
materialised per second over the registered presets, and a second case checks
that the scenario layer costs little on top of the bare generator it wraps.
"""

import time

import pytest

from repro.scenario import available_scenarios, create_scenario, materialize
from repro.taskgen import SystemGenerator

#: Materialisations per benchmark round (spread over the presets).
N_SYSTEMS = 25


@pytest.mark.benchmark(group="scenario")
def test_scenario_materialization_throughput(benchmark):
    scenarios = [create_scenario(name) for name in available_scenarios()]

    def materialize_all():
        produced = []
        for scenario in scenarios:
            for index in range(N_SYSTEMS):
                produced.append(materialize(scenario, index).task_set)
        return produced

    task_sets = benchmark(materialize_all)
    assert len(task_sets) == len(scenarios) * N_SYSTEMS
    assert all(len(task_set) > 0 for task_set in task_sets)


@pytest.mark.benchmark(group="scenario")
def test_materialization_overhead_vs_bare_generator(benchmark):
    """The declarative layer adds hashing + platform building, not much more."""
    scenario = create_scenario("paper-default")
    workload = scenario.workload

    def bare_generation():
        return [
            SystemGenerator(workload.generator, rng=index).generate(workload.utilisation)
            for index in range(N_SYSTEMS)
        ]

    def declarative_generation():
        return [materialize(scenario, index).task_set for index in range(N_SYSTEMS)]

    start = time.perf_counter()
    for _ in range(3):
        bare = bare_generation()
    bare_seconds = (time.perf_counter() - start) / 3

    start = time.perf_counter()
    declarative = benchmark.pedantic(declarative_generation, rounds=3, iterations=1)
    declarative_seconds = (time.perf_counter() - start) / 3

    assert len(bare) == len(declarative) == N_SYSTEMS
    # Hashing + two small object graphs must not dwarf the generation itself;
    # the generous factor keeps the check robust to CI timing noise.
    assert declarative_seconds < bare_seconds * 5 + 0.05, (
        f"materialisation took {declarative_seconds:.4f}s/round vs bare "
        f"generation {bare_seconds:.4f}s/round"
    )
