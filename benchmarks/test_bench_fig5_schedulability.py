"""Benchmark regenerating Figure 5 — schedulability vs system utilisation.

Prints the regenerated series and checks the qualitative shape reported in the
paper: FPS-offline dominates, the proposed methods (GA >= static) sit above
the FPS-online worst case at high load, and GPIOCP collapses fastest.
"""

import pytest

from repro.experiments import ExperimentConfig, run_fig5
from repro.experiments.stats import mean


@pytest.mark.benchmark(group="fig5")
def test_fig5_schedulability_sweep(benchmark, quick_config):
    result = benchmark.pedantic(
        lambda: run_fig5(quick_config), rounds=1, iterations=1
    )

    print()
    print("Figure 5 — fraction of schedulable systems (reduced-scale reproduction)")
    print(result.to_table())

    series = result.series
    # FPS-offline is the clairvoyant upper baseline: best average schedulability.
    for method in ("fps-online", "gpiocp"):
        assert mean(series["fps-offline"]) >= mean(series[method]) - 1e-9
    # The GA is seeded with the heuristic solution, so it never does worse.
    for ga_value, static_value in zip(series["ga"], series["static"]):
        assert ga_value >= static_value - 1e-9
    # GPIOCP relies on FIFO ordering only and has the worst schedulability overall.
    for method in ("fps-offline", "static", "ga"):
        assert mean(series[method]) >= mean(series["gpiocp"]) - 1e-9
    # GPIOCP collapses as utilisation grows (most pronounced fall in the paper).
    assert series["gpiocp"][-1] <= series["gpiocp"][0]
