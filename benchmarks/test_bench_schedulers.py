"""Micro-benchmarks of the individual schedulers (ablation support).

These are not paper figures; they quantify the cost of each scheduling method
on a fixed medium-load system, which backs the design discussion in DESIGN.md
(the heuristic is polynomial, the GA dominates the experiment run time).
"""

import pytest

from repro.scheduling import (
    FPSOfflineScheduler,
    GAConfig,
    GAScheduler,
    GPIOCPScheduler,
    HeuristicScheduler,
)
from repro.taskgen import SystemGenerator


@pytest.fixture(scope="module")
def medium_system():
    return SystemGenerator(rng=99).generate(0.5)


@pytest.mark.benchmark(group="schedulers")
def test_bench_fps_offline(benchmark, medium_system):
    result = benchmark(lambda: FPSOfflineScheduler().schedule_taskset(medium_system))
    assert result.per_device


@pytest.mark.benchmark(group="schedulers")
def test_bench_gpiocp(benchmark, medium_system):
    result = benchmark(lambda: GPIOCPScheduler().schedule_taskset(medium_system))
    assert result.per_device


@pytest.mark.benchmark(group="schedulers")
def test_bench_heuristic(benchmark, medium_system):
    result = benchmark(lambda: HeuristicScheduler().schedule_taskset(medium_system))
    assert result.schedulable


@pytest.mark.benchmark(group="schedulers")
def test_bench_ga(benchmark, medium_system):
    scheduler = GAScheduler(GAConfig(population_size=20, generations=10, seed=5))
    result = benchmark.pedantic(
        lambda: scheduler.schedule_taskset(medium_system), rounds=1, iterations=1
    )
    assert result.schedulable
