"""Benchmarks of the cache storage backends (``repro.store``).

The backend choice trades single-entry latency against scan behaviour at
scale: the directory backend pays a file create per put and a directory walk
per scan; SQLite pays statement overhead per put but answers scans and
counts from one query.  Three numbers per backend track the trade in
``BENCH_results.json``:

* **put latency** — persisting one versioned payload envelope;
* **get latency** — reading one entry back (warm OS caches);
* **10k-entry scan** — ``keys()`` + ``stats()`` over a populated store, the
  access pattern of ``python -m repro.store stats`` and of prune scans.
"""

import pytest

from repro.store import DirectoryBackend, SqliteBackend

SCAN_ENTRIES = 10_000


def payload_for(index: int) -> dict:
    return {
        "kind": "repro/schedule-cache-entry",
        "version": 1,
        "data": {"key": f"{index:016x}", "result": {"psi": 0.5, "jobs": list(range(40))}},
    }


def make_backend(kind, root):
    if kind == "directory":
        return DirectoryBackend(root / "store")
    return SqliteBackend(root / "store.db")


@pytest.mark.benchmark(group="store-put")
@pytest.mark.parametrize("kind", ["directory", "sqlite"])
def test_put_latency(benchmark, kind, tmp_path):
    backend = make_backend(kind, tmp_path)
    counter = iter(range(10_000_000))

    def put_one():
        index = next(counter)
        backend.put(f"{index:016x}", payload_for(index))

    benchmark(put_one)
    backend.close()
    print(f"\n{kind} put: {benchmark.stats.stats.median * 1e6:.0f} us")


@pytest.mark.benchmark(group="store-get")
@pytest.mark.parametrize("kind", ["directory", "sqlite"])
def test_get_latency(benchmark, kind, tmp_path):
    backend = make_backend(kind, tmp_path)
    backend.put("aa" * 8, payload_for(0))

    entry = benchmark(backend.get, "aa" * 8)
    assert entry is not None
    backend.close()
    print(f"\n{kind} get: {benchmark.stats.stats.median * 1e6:.0f} us")


@pytest.mark.benchmark(group="store-scan")
@pytest.mark.parametrize("kind", ["directory", "sqlite"])
def test_scan_10k_entries(benchmark, kind, tmp_path):
    backend = make_backend(kind, tmp_path)
    for index in range(SCAN_ENTRIES):
        backend.put(f"{index:016x}", payload_for(index))

    def scan():
        keys = backend.keys()
        stats = backend.stats()
        return len(keys), stats["entries"]

    n_keys, n_entries = benchmark.pedantic(scan, rounds=3, iterations=1)
    assert n_keys == n_entries == SCAN_ENTRIES
    backend.close()
    print(f"\n{kind} scan of {SCAN_ENTRIES}: {benchmark.stats.stats.median * 1e3:.1f} ms")
