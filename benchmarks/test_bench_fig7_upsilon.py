"""Benchmark regenerating Figure 7 — Upsilon (normalised total quality) vs utilisation."""

import pytest

from repro.experiments import ExperimentRunner
from repro.experiments.stats import mean


@pytest.mark.benchmark(group="fig7")
def test_fig7_upsilon_sweep(benchmark, quick_config):
    runner = ExperimentRunner(quick_config)
    sweep = benchmark.pedantic(runner.accuracy_sweep, rounds=1, iterations=1)
    result = sweep.upsilon

    print()
    print("Figure 7 — Upsilon of the offline scheduling methods (reduced-scale reproduction)")
    print(result.to_table())

    series = result.series
    # FPS ignores ideal start times: worst overall quality in every configuration.
    for method in ("gpiocp", "static", "ga"):
        for fps_value, other_value in zip(series["fps"], series[method]):
            assert other_value >= fps_value - 1e-9
    # The GA improves on the heuristic's quality (its sacrificed jobs are placed
    # for schedulability only), which is the paper's reason for the second method.
    assert mean(series["ga"]) >= mean(series["static"]) - 1e-9
    # GPIOCP's quality degrades as utilisation grows.
    assert series["gpiocp"][-1] <= series["gpiocp"][0] + 1e-9
