"""Automotive fuel-injection scenario (the motivating example of the paper).

An engine controller needs a periodic injection pulse to occur at an exact
crank-referenced instant in every cycle; several other I/O activities (knock
sensor sampling, lambda probe heating, diagnostic UART frames) compete for
the same I/O subsystem.  The example shows that

* plain fixed-priority scheduling meets every deadline but never hits the
  injection instant exactly (its quality collapses to the minimum), while
* the paper's heuristic and GA keep the injection exactly timing-accurate and
  degrade only the less critical activities, and
* the offline schedule is reproduced exactly at run time by the dedicated
  I/O-controller model.

Run with ``python examples/fuel_injection.py``.
"""

from repro import (
    FPSOfflineScheduler,
    GAConfig,
    GAScheduler,
    HeuristicScheduler,
    TaskSet,
    make_task_ms,
)
from repro.hardware import IOController
from repro.sim import Simulator


def build_engine_io() -> TaskSet:
    """I/O workload of a 4-cylinder engine controller at a fixed operating point."""
    tasks = [
        # Injection pulse: 1.5 ms pulse that must start 12 ms after each 40 ms cycle.
        make_task_ms("injector_pulse", wcet_ms=1.5, period_ms=40, ideal_offset_ms=12,
                     theta_ms=10, device="engine_bank0", v_max=10.0),
        # Ignition coil charge: 3 ms, ideally 30 ms into each cycle.
        make_task_ms("coil_charge", wcet_ms=3, period_ms=40, ideal_offset_ms=30,
                     theta_ms=10, device="engine_bank0", v_max=8.0),
        # Knock-sensor sampling window: 4 ms every 80 ms.
        make_task_ms("knock_window", wcet_ms=4, period_ms=80, ideal_offset_ms=25,
                     theta_ms=20, device="engine_bank0", v_max=4.0),
        # Lambda-probe heater PWM update: 5 ms every 160 ms.
        make_task_ms("lambda_heater", wcet_ms=5, period_ms=160, ideal_offset_ms=60,
                     theta_ms=40, device="engine_bank0", v_max=2.0),
        # Diagnostic UART frame: 6 ms every 320 ms, loose accuracy requirement.
        make_task_ms("diag_uart", wcet_ms=6, period_ms=320, ideal_offset_ms=150,
                     theta_ms=80, device="engine_bank0", v_max=2.0),
    ]
    return TaskSet(tasks).assign_dmpo_priorities()


def injection_accuracy(result) -> float:
    """Fraction of injector pulses that start exactly on time."""
    schedule = result.per_device["engine_bank0"].schedule
    pulses = [e for e in schedule.entries if e.job.task.name == "injector_pulse"]
    exact = sum(1 for e in pulses if e.is_exact)
    return exact / len(pulses) if pulses else 0.0


def main() -> None:
    task_set = build_engine_io()
    print(f"Engine I/O workload: {len(task_set)} tasks, utilisation {task_set.utilisation:.2f}, "
          f"hyper-period {task_set.hyperperiod() / 1000:.0f} ms\n")

    schedulers = [
        FPSOfflineScheduler(),
        HeuristicScheduler(),
        GAScheduler(GAConfig(population_size=60, generations=40, seed=3)),
    ]
    best = None
    print(f"{'method':<12} {'schedulable':<12} {'Psi':>6} {'Upsilon':>8} {'exact injections':>18}")
    for scheduler in schedulers:
        result = scheduler.schedule_taskset(task_set)
        print(f"{scheduler.name:<12} {str(result.schedulable):<12} {result.psi:>6.3f} "
              f"{result.upsilon:>8.3f} {injection_accuracy(result):>18.2%}")
        if scheduler.name == "static":
            best = result

    # Execute the heuristic schedule on the dedicated I/O controller model.
    assert best is not None and best.schedulable
    controller = IOController()
    controller.preload_taskset(task_set)
    controller.load_system_schedule({d: r.schedule for d, r in best.per_device.items()})
    run = controller.run(Simulator())
    print(f"\nRun-time execution on the dedicated controller: "
          f"Psi {run.psi:.3f}, matches offline schedule: {run.matches_offline}")
    device = controller.processors["engine_bank0"].device
    print(f"GPIO operations performed on 'engine_bank0': {len(device.operations)}")


if __name__ == "__main__":
    main()
