"""Quickstart: schedule a handful of timed I/O tasks and inspect the result.

Run with ``python examples/quickstart.py``.

The example builds a small task set by hand (times in milliseconds), schedules
it with the paper's two methods plus the FPS and GPIOCP baselines — looked up
by name through the scheduler registry — and prints the per-method
timing-accuracy metrics and the explicit schedule produced by the heuristic.
"""

from repro import GAConfig, TaskSet, create_scheduler, make_task_ms


def build_taskset() -> TaskSet:
    """Four periodic timed I/O tasks sharing one GPIO device.

    Each task wants to toggle the pin at a precise instant (``ideal_offset_ms``)
    inside every period, with a tolerance window of ``theta_ms`` around it.
    """
    tasks = [
        make_task_ms("ignition", wcet_ms=2, period_ms=60, ideal_offset_ms=20, theta_ms=15),
        make_task_ms("sensor_trigger", wcet_ms=3, period_ms=120, ideal_offset_ms=35, theta_ms=30),
        make_task_ms("actuator_pulse", wcet_ms=4, period_ms=120, ideal_offset_ms=36, theta_ms=30),
        make_task_ms("heartbeat_led", wcet_ms=5, period_ms=240, ideal_offset_ms=70, theta_ms=60),
    ]
    return TaskSet(tasks).assign_dmpo_priorities()


def main() -> None:
    task_set = build_taskset()
    print(f"Task set: {len(task_set)} tasks, utilisation {task_set.utilisation:.3f}, "
          f"hyper-period {task_set.hyperperiod() / 1000:.0f} ms")
    print()

    # Methods are resolved by name through the scheduler registry; only the GA
    # takes a configuration object (its search budget and RNG seed).
    schedulers = [
        create_scheduler("fps-offline"),
        create_scheduler("gpiocp"),
        create_scheduler("static"),
        create_scheduler("ga", GAConfig(population_size=40, generations=30, seed=1)),
    ]

    print(f"{'method':<14} {'schedulable':<12} {'Psi':>6} {'Upsilon':>8}")
    results = {}
    for scheduler in schedulers:
        result = scheduler.schedule_taskset(task_set)
        results[scheduler.name] = result
        print(f"{scheduler.name:<14} {str(result.schedulable):<12} "
              f"{result.psi:>6.3f} {result.upsilon:>8.3f}")

    print()
    print("Explicit schedule produced by the heuristic (static) method:")
    static = results["static"]
    for device, device_result in static.per_device.items():
        print(f"  device {device}:")
        for entry in device_result.schedule.sorted_entries():
            marker = "exact" if entry.is_exact else f"{entry.lateness / 1000:+.1f} ms"
            print(f"    {entry.job.name:<20} start {entry.start / 1000:8.1f} ms "
                  f"(ideal {entry.job.ideal_start / 1000:8.1f} ms, {marker})")


if __name__ == "__main__":
    main()
