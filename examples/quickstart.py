"""Quickstart: schedule a handful of timed I/O tasks and inspect the result.

Run with ``python examples/quickstart.py``.

The example builds a small task set by hand (times in milliseconds) and
schedules it with the paper's two methods plus the FPS and GPIOCP baselines —
all through the scheduling service: each method is a spec string
(``"name:key=value,..."``), each evaluation a typed ``ScheduleRequest``, and
the batch comes back as serialisable ``ScheduleResponse`` objects carrying
the per-method timing-accuracy metrics and the explicit schedules.

The second half builds a *custom scenario* — a declarative workload +
platform + fault description — and schedules two of its deterministic
synthetic systems through the same service, without constructing a single
task by hand.
"""

from repro import TaskSet, make_task_ms
from repro.scenario import FaultSpec, Scenario, WorkloadSpec, materialize
from repro.service import ScheduleRequest, SchedulerSpec, SchedulingService


def build_taskset() -> TaskSet:
    """Four periodic timed I/O tasks sharing one GPIO device.

    Each task wants to toggle the pin at a precise instant (``ideal_offset_ms``)
    inside every period, with a tolerance window of ``theta_ms`` around it.
    """
    tasks = [
        make_task_ms("ignition", wcet_ms=2, period_ms=60, ideal_offset_ms=20, theta_ms=15),
        make_task_ms("sensor_trigger", wcet_ms=3, period_ms=120, ideal_offset_ms=35, theta_ms=30),
        make_task_ms("actuator_pulse", wcet_ms=4, period_ms=120, ideal_offset_ms=36, theta_ms=30),
        make_task_ms("heartbeat_led", wcet_ms=5, period_ms=240, ideal_offset_ms=70, theta_ms=60),
    ]
    return TaskSet(tasks).assign_dmpo_priorities()


#: The methods to compare, as scheduler spec strings.  Only the GA takes
#: options (its search budget and RNG seed).
METHOD_SPECS = (
    "fps-offline",
    "gpiocp",
    "static",
    "ga:population_size=40,generations=30,seed=1",
)


def build_scenario() -> Scenario:
    """A custom declarative scenario: bursty workload on a wider mesh.

    Everything here is data — the same description could arrive as JSON from
    a file or a request payload (``Scenario.from_json``) and materialises to
    the identical systems anywhere.
    """
    return Scenario(
        name="quickstart-bursty",
        description="48-96 ms periods on a 6x6 mesh with one late request",
        workload=WorkloadSpec(
            utilisation=0.4,
            generator={"min_period_ms": 48, "max_period_ms": 96},
        ),
        platform={"mesh_width": 6, "mesh_height": 6},
        faults=[FaultSpec(kind="late-request", task_name="tau0", delay=2)],
    )


def run_scenario(scenario: Scenario) -> None:
    print(f"Custom scenario {scenario.name!r} ({scenario.description}):")
    requests = [
        ScheduleRequest(
            scenario=scenario,
            system_index=system_index,
            spec=SchedulerSpec.parse("static"),
            request_id=f"{scenario.name}/{system_index}",
        )
        for system_index in range(2)
    ]
    with SchedulingService() as service:
        responses = service.submit_batch(requests)
    for request, response in zip(requests, responses):
        task_set = materialize(scenario, request.system_index).task_set
        print(f"  system {request.system_index}: {len(task_set)} tasks, "
              f"schedulable={response.schedulable}, Psi={response.psi:.3f}")


def main() -> None:
    task_set = build_taskset()
    print(f"Task set: {len(task_set)} tasks, utilisation {task_set.utilisation:.3f}, "
          f"hyper-period {task_set.hyperperiod() / 1000:.0f} ms")
    print()

    requests = [
        ScheduleRequest(task_set=task_set, spec=SchedulerSpec.parse(spec), request_id=spec)
        for spec in METHOD_SPECS
    ]
    with SchedulingService() as service:
        responses = service.submit_batch(requests)

    print(f"{'method':<14} {'schedulable':<12} {'Psi':>6} {'Upsilon':>8}")
    by_method = {}
    for request, response in zip(requests, responses):
        name = request.spec.name
        by_method[name] = response
        print(f"{name:<14} {str(response.schedulable):<12} "
              f"{response.psi:>6.3f} {response.upsilon:>8.3f}")

    print()
    print("Explicit schedule produced by the heuristic (static) method:")
    static = by_method["static"]
    for device, schedule in sorted(static.device_schedules(task_set).items()):
        print(f"  device {device}:")
        for entry in schedule.sorted_entries():
            marker = "exact" if entry.is_exact else f"{entry.lateness / 1000:+.1f} ms"
            print(f"    {entry.job.name:<20} start {entry.start / 1000:8.1f} ms "
                  f"(ideal {entry.job.ideal_start / 1000:8.1f} ms, {marker})")

    print()
    run_scenario(build_scenario())


if __name__ == "__main__":
    main()
