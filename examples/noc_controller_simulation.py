"""Many-core run-time simulation: dedicated controller vs CPU-instigated I/O.

The example generates a synthetic multi-device timed-I/O workload with the
paper's workload generator, schedules it with the heuristic, and then executes
the schedule in two ways:

1. on the dedicated I/O-controller model (global timer + scheduling table),
   which reproduces the offline start times exactly;
2. with every I/O request instigated by a remote CPU and carried over a 4x4
   mesh NoC with background traffic, where per-hop latency and arbitration
   jitter destroy the exact timing accuracy.

It also demonstrates the controller's fault-recovery unit by injecting a
missing I/O request for one task.

Run with ``python examples/noc_controller_simulation.py``.
"""

from repro import HeuristicScheduler
from repro.experiments.controller_sim import run_controller_sim
from repro.experiments.stats import format_table
from repro.hardware import FaultInjector, FaultSpec, IOController
from repro.sim import Simulator
from repro.taskgen import GeneratorConfig, SystemGenerator


def fault_recovery_demo() -> None:
    """Inject a missing request and show that only that task's jobs are skipped."""
    generator = SystemGenerator(GeneratorConfig(n_devices=2), rng=5)
    task_set = generator.generate(0.4)
    offline = HeuristicScheduler().schedule_taskset(task_set)
    if not offline.schedulable:
        print("generated system not schedulable; skipping fault demo")
        return

    victim = task_set.tasks[0].name
    injector = FaultInjector([FaultSpec(kind="missing-request", task_name=victim)])
    controller = IOController(fault_injector=injector)
    controller.preload_taskset(task_set)
    controller.load_system_schedule({d: r.schedule for d, r in offline.per_device.items()})

    # Request every task except the victim: the fault-recovery unit skips the
    # victim's jobs and the rest of the schedule executes untouched.
    requested = [
        entry.job
        for _, result in offline.per_device.items()
        for entry in result.schedule.entries
        if entry.job.task.name != victim
    ]
    run = controller.run(Simulator(), request_jobs=requested)
    print(f"\nFault-recovery demo: task {victim!r} never requested")
    print(f"  executed jobs: {run.executed_jobs}, skipped jobs: {run.skipped_jobs}, "
          f"faults detected: {run.faults_detected}")
    print(f"  remaining jobs still match the offline schedule: {run.matches_offline}")


def main() -> None:
    result = run_controller_sim(utilisation=0.5, seed=11)
    print("Run-time execution of the same offline schedule (U = 0.5):")
    print(format_table(result.rows()))
    print(f"\nNoC I/O-request latency: mean {result.mean_noc_latency:.1f} us, "
          f"max {result.max_noc_latency} us")
    print("The dedicated controller preserves every offline start time; the "
          "CPU-instigated path loses exactness (Psi ~ 0) because each request "
          "pays mesh latency and arbitration jitter.")

    fault_recovery_demo()


if __name__ == "__main__":
    main()
