"""GA trade-off study: the Psi/Upsilon Pareto front of one intensive system.

Under intensive I/O it is impossible to start every job exactly on time, so
the two objectives — the number of exactly-accurate jobs (Psi) and the overall
quality (Upsilon) — start to trade off against each other.  This example runs
the multi-objective GA on one heavily loaded single-device system, prints the
whole Pareto front, and compares its extreme points against the heuristic
(which maximises Psi only) and FPS (which ignores accuracy entirely).

Run with ``python examples/ga_tradeoff_study.py``.
"""

from repro import FPSOfflineScheduler, GAConfig, GAScheduler, HeuristicScheduler
from repro.taskgen import GeneratorConfig, SystemGenerator


def main() -> None:
    generator = SystemGenerator(GeneratorConfig(), rng=21)
    task_set = generator.generate(0.7)
    print(f"Intensive system: {len(task_set)} tasks, utilisation {task_set.utilisation:.2f}, "
          f"{len(task_set.jobs())} jobs per hyper-period\n")

    static = HeuristicScheduler().schedule_taskset(task_set)
    fps = FPSOfflineScheduler().schedule_taskset(task_set)

    ga = GAScheduler(GAConfig(population_size=80, generations=60, seed=7))
    ga_result = ga.schedule_taskset(task_set)

    print(f"{'method':<22} {'Psi':>6} {'Upsilon':>8}")
    print(f"{'FPS-offline':<22} {fps.psi:>6.3f} {fps.upsilon:>8.3f}")
    print(f"{'heuristic (static)':<22} {static.psi:>6.3f} {static.upsilon:>8.3f}")
    print(f"{'GA (preferred point)':<22} {ga_result.psi:>6.3f} {ga_result.upsilon:>8.3f}")

    print("\nPer-device Pareto fronts found by the GA (Psi, Upsilon):")
    for device, device_result in ga_result.per_device.items():
        front = sorted(device_result.info.get("pareto_front", []))
        points = ", ".join(f"({p:.3f}, {u:.3f})" for p, u in front)
        print(f"  {device}: {points}")
        print(f"    best-Psi point:     Psi {device_result.info.get('best_psi', 0):.3f} "
              f"(Upsilon {device_result.info.get('best_psi_upsilon', 0):.3f})")
        print(f"    best-Upsilon point: Upsilon {device_result.info.get('best_upsilon', 0):.3f} "
              f"(Psi {device_result.info.get('best_upsilon_psi', 0):.3f})")

    print("\nReading: the GA matches the heuristic's Psi at one end of the front and "
          "trades a few exactly-accurate jobs for higher overall quality at the other.")


if __name__ == "__main__":
    main()
