"""Structured stderr logging: levels, formatting, argparse wiring."""

import argparse

import pytest

from repro.core import logging as relog


@pytest.fixture(autouse=True)
def silent_after_each():
    yield
    relog.configure("off")


def last_line(capsys):
    err = capsys.readouterr().err.strip().splitlines()
    return err[-1] if err else ""


class TestThreshold:
    def test_silent_by_default(self, capsys):
        relog.info("event")
        assert capsys.readouterr().err == ""

    def test_levels_below_threshold_are_dropped(self, capsys):
        relog.configure("warning")
        relog.info("quiet")
        relog.warning("loud")
        lines = capsys.readouterr().err.strip().splitlines()
        assert lines == ["level=warning event=loud"]

    def test_off_silences_even_errors(self, capsys):
        relog.configure("off")
        relog.error("nope")
        assert capsys.readouterr().err == ""

    def test_enabled_reflects_threshold(self):
        relog.configure("info")
        assert relog.enabled("error")
        assert relog.enabled("info")
        assert not relog.enabled("debug")
        assert not relog.enabled("off")

    def test_unknown_level_is_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            relog.configure("loud")


class TestFormatting:
    def test_bare_words_stay_bare(self, capsys):
        relog.configure("info")
        relog.info("server-started", host="127.0.0.1", port=7341)
        assert last_line(capsys) == (
            "level=info event=server-started host=127.0.0.1 port=7341"
        )

    def test_non_bare_values_are_json_quoted(self, capsys):
        relog.configure("info")
        relog.info("note", message="hello world")
        assert last_line(capsys) == 'level=info event=note message="hello world"'

    def test_booleans_render_lowercase(self, capsys):
        relog.configure("info")
        relog.info("flag", on=True, off=False)
        assert last_line(capsys) == "level=info event=flag on=true off=false"

    def test_never_writes_stdout(self, capsys):
        relog.configure("debug")
        relog.debug("event", value=1)
        assert capsys.readouterr().out == ""


class TestArgparseWiring:
    def test_flag_defaults_off_and_configures(self, capsys):
        parser = argparse.ArgumentParser()
        relog.add_log_level_argument(parser)
        args = parser.parse_args([])
        assert args.log_level == "off"
        relog.configure_from_args(args)
        relog.error("hidden")
        assert capsys.readouterr().err == ""

    def test_flag_value_applies(self, capsys):
        parser = argparse.ArgumentParser()
        relog.add_log_level_argument(parser)
        relog.configure_from_args(parser.parse_args(["--log-level", "debug"]))
        relog.debug("visible")
        assert last_line(capsys) == "level=debug event=visible"

    def test_missing_flag_is_a_no_op(self):
        relog.configure("warning")
        relog.configure_from_args(argparse.Namespace())
        assert relog.enabled("warning")
        assert not relog.enabled("info")
