"""Unit tests for the timed I/O task/job model."""

import pytest

from repro.core import MS, IOTask, TaskSet, make_task_ms


def task(**overrides) -> IOTask:
    params = dict(
        name="tau0", wcet=2 * MS, period=20 * MS, ideal_offset=5 * MS, theta=5 * MS
    )
    params.update(overrides)
    return IOTask(**params)


class TestIOTaskValidation:
    def test_implicit_deadline_defaults_to_period(self):
        assert task().deadline == 20 * MS

    def test_explicit_deadline_respected(self):
        assert task(deadline=15 * MS).deadline == 15 * MS

    def test_rejects_non_positive_wcet(self):
        with pytest.raises(ValueError):
            task(wcet=0)

    def test_rejects_non_positive_period(self):
        with pytest.raises(ValueError):
            task(period=0)

    def test_rejects_deadline_beyond_period(self):
        with pytest.raises(ValueError):
            task(deadline=25 * MS)

    def test_rejects_wcet_beyond_deadline(self):
        with pytest.raises(ValueError):
            task(wcet=21 * MS)

    def test_rejects_ideal_offset_outside_deadline(self):
        with pytest.raises(ValueError):
            task(ideal_offset=21 * MS)

    def test_rejects_negative_theta(self):
        with pytest.raises(ValueError):
            task(theta=-1)

    def test_rejects_vmax_below_vmin(self):
        with pytest.raises(ValueError):
            task(v_max=0.5, v_min=1.0)

    def test_utilisation(self):
        assert task().utilisation == pytest.approx(0.1)


class TestJobs:
    def test_job_release_and_deadline(self):
        job = task().job(3)
        assert job.release == 3 * 20 * MS
        assert job.deadline == 4 * 20 * MS

    def test_job_ideal_start_is_release_plus_delta(self):
        job = task().job(2)
        assert job.ideal_start == 2 * 20 * MS + 5 * MS

    def test_job_latest_start_meets_deadline(self):
        job = task().job(0)
        assert job.latest_start + job.wcet == job.deadline

    def test_job_window_clamped_to_release(self):
        # theta exceeds delta, so the lower edge of the window is the release.
        job = task(ideal_offset=2 * MS, theta=5 * MS).job(0)
        lo, hi = job.window
        assert lo == job.release
        assert hi == job.ideal_start + 5 * MS

    def test_jobs_in_horizon(self):
        jobs = task().jobs(60 * MS)
        assert [j.index for j in jobs] == [0, 1, 2]

    def test_job_with_offset(self):
        jobs = task(offset=7 * MS).jobs(60 * MS)
        assert jobs[0].release == 7 * MS
        assert len(jobs) == 3

    def test_negative_job_index_rejected(self):
        with pytest.raises(ValueError):
            task().job(-1)

    def test_overlaps_ideally_with(self):
        a = task(name="a", ideal_offset=5 * MS).job(0)
        b = task(name="b", ideal_offset=6 * MS).job(0)
        c = task(name="c", ideal_offset=8 * MS).job(0)
        assert a.overlaps_ideally_with(b)
        assert b.overlaps_ideally_with(a)
        assert not a.overlaps_ideally_with(c)  # a ends exactly when c starts

    def test_job_quality_at_ideal_is_vmax(self):
        job = task(v_max=7.0).job(1)
        assert job.quality(job.ideal_start) == pytest.approx(7.0)
        assert job.max_quality() == pytest.approx(7.0)

    def test_job_ordering_by_ideal_start(self):
        early = task(name="early", ideal_offset=1 * MS).job(0)
        late = task(name="late", ideal_offset=9 * MS).job(0)
        assert early < late


class TestTaskSet:
    def make_set(self) -> TaskSet:
        return TaskSet(
            [
                task(name="a", period=20 * MS),
                task(name="b", period=40 * MS),
                task(name="c", period=10 * MS, ideal_offset=3 * MS, theta=2 * MS),
            ]
        )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            TaskSet([task(name="x"), task(name="x")])

    def test_utilisation_is_sum(self):
        ts = self.make_set()
        assert ts.utilisation == pytest.approx(0.1 + 0.05 + 0.2)

    def test_hyperperiod(self):
        assert self.make_set().hyperperiod() == 40 * MS

    def test_jobs_cover_hyperperiod(self):
        jobs = self.make_set().jobs()
        assert len(jobs) == 2 + 1 + 4

    def test_dmpo_assigns_highest_priority_to_shortest_deadline(self):
        ts = self.make_set().assign_dmpo_priorities()
        priorities = {t.name: t.priority for t in ts}
        assert priorities["c"] > priorities["a"] > priorities["b"]

    def test_by_name(self):
        ts = self.make_set()
        assert ts.by_name("b").period == 40 * MS
        with pytest.raises(KeyError):
            ts.by_name("missing")

    def test_partition_by_device(self):
        ts = TaskSet([task(name="a", device="d0"), task(name="b", device="d1")])
        partitions = ts.partition()
        assert set(partitions) == {"d0", "d1"}
        assert [t.name for t in partitions["d0"]] == ["a"]

    def test_scaled_changes_utilisation(self):
        ts = self.make_set()
        scaled = ts.scaled(0.5)
        assert scaled.utilisation == pytest.approx(ts.utilisation * 0.5, rel=0.05)

    def test_scaled_rejects_non_positive_factor(self):
        with pytest.raises(ValueError):
            self.make_set().scaled(0)

    def test_empty_taskset_hyperperiod_rejected(self):
        with pytest.raises(ValueError):
            TaskSet([]).hyperperiod()


class TestMakeTaskMs:
    def test_millisecond_conversion(self):
        t = make_task_ms("x", wcet_ms=1.5, period_ms=10, ideal_offset_ms=2, theta_ms=2.5)
        assert t.wcet == 1500
        assert t.period == 10_000
        assert t.ideal_offset == 2000
        assert t.theta == 2500
