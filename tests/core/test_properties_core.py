"""Property-based tests (hypothesis) for the core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LinearQualityCurve, Schedule, ScheduleEntry, psi, upsilon
from repro.core.task import IOTask


@st.composite
def tasks(draw, device="dev0"):
    period = draw(st.integers(min_value=10, max_value=2000)) * 10
    wcet = draw(st.integers(min_value=1, max_value=max(1, period // 4)))
    theta = draw(st.integers(min_value=0, max_value=period // 2))
    delta = draw(st.integers(min_value=0, max_value=period - wcet))
    v_max = draw(st.floats(min_value=1.0, max_value=50.0, allow_nan=False))
    name = f"tau{draw(st.integers(min_value=0, max_value=10_000))}"
    return IOTask(
        name=name,
        wcet=wcet,
        period=period,
        ideal_offset=delta,
        theta=theta,
        device=device,
        v_max=v_max,
        v_min=1.0,
    )


class TestQualityCurveProperties:
    @given(
        v_max=st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
        theta=st.integers(min_value=0, max_value=10_000),
        distance=st.integers(min_value=-20_000, max_value=20_000),
    )
    def test_quality_bounded_between_vmin_and_vmax(self, v_max, theta, distance):
        curve = LinearQualityCurve(v_max=v_max, v_min=1.0)
        value = curve.value(1_000_000 + distance, 1_000_000, theta)
        assert 1.0 <= value <= v_max + 1e-9

    @given(
        theta=st.integers(min_value=1, max_value=10_000),
        d1=st.integers(min_value=0, max_value=10_000),
        d2=st.integers(min_value=0, max_value=10_000),
    )
    def test_quality_monotonically_non_increasing_in_distance(self, theta, d1, d2):
        curve = LinearQualityCurve(v_max=10.0, v_min=1.0)
        near, far = sorted((d1, d2))
        assert curve.value(1000 + near, 1000, theta) >= curve.value(1000 + far, 1000, theta)


class TestJobProperties:
    @given(task=tasks(), index=st.integers(min_value=0, max_value=50))
    def test_job_window_lies_inside_release_window(self, task, index):
        job = task.job(index)
        lo, hi = job.window
        assert lo >= job.release
        if hi >= lo:
            assert hi + job.wcet <= job.deadline or hi <= job.latest_start

    @given(task=tasks(), index=st.integers(min_value=0, max_value=50))
    def test_ideal_start_in_release_window(self, task, index):
        job = task.job(index)
        assert job.release <= job.ideal_start <= job.deadline


class TestScheduleMetricProperties:
    @given(
        task_list=st.lists(tasks(), min_size=1, max_size=6, unique_by=lambda t: t.name),
        data=st.data(),
    )
    @settings(max_examples=50)
    def test_psi_and_upsilon_bounded(self, task_list, data):
        # Build an arbitrary (possibly invalid) schedule and check metric bounds.
        schedule = Schedule()
        for task in task_list:
            job = task.job(0)
            start = data.draw(
                st.integers(min_value=job.release, max_value=max(job.release, job.latest_start))
            )
            schedule.add(ScheduleEntry(job=job, start=start))
        assert 0.0 <= psi(schedule) <= 1.0
        assert 0.0 < upsilon(schedule) <= 1.0
