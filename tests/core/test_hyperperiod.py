"""Unit tests for hyper-period arithmetic."""

import pytest

from repro.core import hyperperiod, jobs_in_hyperperiod, lcm, lcm_many


class TestLCM:
    def test_basic(self):
        assert lcm(4, 6) == 12
        assert lcm(7, 13) == 91

    def test_identity(self):
        assert lcm(5, 5) == 5
        assert lcm(1, 9) == 9

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            lcm(0, 3)
        with pytest.raises(ValueError):
            lcm(3, -1)

    def test_lcm_many(self):
        assert lcm_many([4, 6, 10]) == 60
        assert lcm_many([1440]) == 1440

    def test_lcm_many_empty_rejected(self):
        with pytest.raises(ValueError):
            lcm_many([])


class TestHyperperiod:
    def test_paper_divisors_give_1440(self):
        # Divisors of 1440 always yield a hyper-period that divides 1440.
        assert hyperperiod([48, 60, 480]) == 480
        assert hyperperiod([96, 90]) == 1440
        assert 1440 % hyperperiod([48, 72, 160]) == 0

    def test_jobs_in_hyperperiod(self):
        assert jobs_in_hyperperiod(20, 1440) == 72

    def test_jobs_in_hyperperiod_rejects_non_divisor(self):
        with pytest.raises(ValueError):
            jobs_in_hyperperiod(7, 1440)
