"""Unit tests for per-device partitioning."""

import pytest

from repro.core import MS, IOTask
from repro.core.partition import (
    partition_by_device,
    partition_jobs_by_device,
    partition_utilisations,
)


def make_task(name, device, period=20 * MS):
    return IOTask(
        name=name, wcet=2 * MS, period=period, ideal_offset=5 * MS, theta=4 * MS, device=device
    )


def test_partition_by_device_groups_tasks():
    tasks = [make_task("a", "d0"), make_task("b", "d1"), make_task("c", "d0")]
    partitions = partition_by_device(tasks)
    assert set(partitions) == {"d0", "d1"}
    assert sorted(t.name for t in partitions["d0"]) == ["a", "c"]
    assert [t.name for t in partitions["d1"]] == ["b"]


def test_partition_jobs_by_device_sorted_by_ideal_start():
    tasks = [make_task("a", "d0"), make_task("b", "d0", period=40 * MS)]
    jobs = [t.job(i) for t in tasks for i in range(2)]
    partitions = partition_jobs_by_device(jobs)
    starts = [job.ideal_start for job in partitions["d0"]]
    assert starts == sorted(starts)


def test_partition_utilisations():
    tasks = [make_task("a", "d0"), make_task("b", "d1"), make_task("c", "d0")]
    utilisations = partition_utilisations(tasks)
    assert utilisations["d0"] == pytest.approx(0.2)
    assert utilisations["d1"] == pytest.approx(0.1)
