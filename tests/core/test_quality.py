"""Unit tests for the quality (value) curves."""

import pytest

from repro.core import LinearQualityCurve, StepQualityCurve


class TestLinearQualityCurve:
    def test_maximum_at_ideal_start(self):
        curve = LinearQualityCurve(v_max=10.0, v_min=1.0)
        assert curve.value(100, 100, theta=50) == pytest.approx(10.0)

    def test_minimum_outside_boundary(self):
        curve = LinearQualityCurve(v_max=10.0, v_min=1.0)
        assert curve.value(200, 100, theta=50) == pytest.approx(1.0)
        assert curve.value(0, 100, theta=50) == pytest.approx(1.0)

    def test_minimum_exactly_at_boundary_edge(self):
        curve = LinearQualityCurve(v_max=10.0, v_min=1.0)
        assert curve.value(150, 100, theta=50) == pytest.approx(1.0)

    def test_linear_decay_inside_boundary(self):
        curve = LinearQualityCurve(v_max=10.0, v_min=0.0)
        assert curve.value(125, 100, theta=50) == pytest.approx(5.0)
        assert curve.value(75, 100, theta=50) == pytest.approx(5.0)

    def test_symmetry(self):
        curve = LinearQualityCurve(v_max=6.0, v_min=1.0)
        for distance in (1, 10, 25, 49):
            assert curve.value(100 + distance, 100, 50) == pytest.approx(
                curve.value(100 - distance, 100, 50)
            )

    def test_zero_theta_gives_vmin_off_ideal(self):
        curve = LinearQualityCurve(v_max=5.0, v_min=1.0)
        assert curve.value(101, 100, theta=0) == pytest.approx(1.0)
        assert curve.value(100, 100, theta=0) == pytest.approx(5.0)

    def test_negative_penalty_vmin_supported(self):
        # Safety-critical systems may use a large penalty value (footnote 1).
        curve = LinearQualityCurve(v_max=10.0, v_min=-1000.0)
        assert curve.value(0, 100, theta=10) == pytest.approx(-1000.0)

    def test_rejects_vmax_below_vmin(self):
        with pytest.raises(ValueError):
            LinearQualityCurve(v_max=0.5, v_min=1.0)

    def test_normalised(self):
        curve = LinearQualityCurve(v_max=8.0, v_min=0.0)
        assert curve.normalised(100, 100, 10) == pytest.approx(1.0)
        assert curve.normalised(105, 100, 10) == pytest.approx(0.5)


class TestStepQualityCurve:
    def test_vmax_anywhere_inside_boundary(self):
        curve = StepQualityCurve(v_max=4.0, v_min=1.0)
        assert curve.value(100, 100, 10) == pytest.approx(4.0)
        assert curve.value(110, 100, 10) == pytest.approx(4.0)

    def test_vmin_outside_boundary(self):
        curve = StepQualityCurve(v_max=4.0, v_min=1.0)
        assert curve.value(111, 100, 10) == pytest.approx(1.0)

    def test_rejects_vmax_below_vmin(self):
        with pytest.raises(ValueError):
            StepQualityCurve(v_max=0.0, v_min=1.0)
