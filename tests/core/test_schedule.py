"""Unit tests for schedules and schedule validation."""

import pytest

from repro.core import (
    MS,
    IOTask,
    Schedule,
    ScheduleEntry,
    ScheduleValidationError,
    SystemSchedule,
    validate_schedule,
)


def make_task(name="t", wcet=2 * MS, period=20 * MS, delta=5 * MS, device="dev0"):
    return IOTask(
        name=name, wcet=wcet, period=period, ideal_offset=delta, theta=4 * MS, device=device
    )


class TestScheduleEntry:
    def test_finish_and_exactness(self):
        job = make_task().job(0)
        entry = ScheduleEntry(job=job, start=job.ideal_start)
        assert entry.finish == job.ideal_start + job.wcet
        assert entry.is_exact
        assert entry.lateness == 0

    def test_lateness_sign(self):
        job = make_task().job(0)
        late = ScheduleEntry(job=job, start=job.ideal_start + 3)
        early = ScheduleEntry(job=job, start=job.ideal_start - 3)
        assert late.lateness == 3
        assert early.lateness == -3

    def test_quality_uses_task_curve(self):
        job = make_task().job(0)
        exact = ScheduleEntry(job=job, start=job.ideal_start)
        off = ScheduleEntry(job=job, start=job.ideal_start + 10 * MS)
        assert exact.quality > off.quality


class TestSchedule:
    def test_add_and_lookup(self):
        job = make_task().job(0)
        schedule = Schedule()
        schedule.set_start(job, 1000)
        assert job in schedule
        assert schedule.start_of(job) == 1000
        assert len(schedule) == 1

    def test_replacing_entry_keeps_single_entry_per_job(self):
        job = make_task().job(0)
        schedule = Schedule()
        schedule.set_start(job, 1000)
        schedule.set_start(job, 2000)
        assert len(schedule) == 1
        assert schedule.start_of(job) == 2000

    def test_missing_job_lookup_raises(self):
        schedule = Schedule()
        with pytest.raises(KeyError):
            schedule.start_of(make_task().job(0))

    def test_rejects_mixed_devices(self):
        schedule = Schedule()
        schedule.set_start(make_task(name="a", device="d0").job(0), 0)
        with pytest.raises(ScheduleValidationError):
            schedule.set_start(make_task(name="b", device="d1").job(0), 5000)

    def test_sorted_entries_and_makespan(self):
        t1, t2 = make_task(name="a"), make_task(name="b", delta=9 * MS)
        schedule = Schedule()
        schedule.set_start(t2.job(0), 9 * MS)
        schedule.set_start(t1.job(0), 5 * MS)
        ordered = schedule.sorted_entries()
        assert [e.job.task.name for e in ordered] == ["a", "b"]
        assert schedule.makespan == 9 * MS + 2 * MS

    def test_idle_intervals(self):
        t1, t2 = make_task(name="a"), make_task(name="b", delta=9 * MS)
        schedule = Schedule()
        schedule.set_start(t1.job(0), 5 * MS)
        schedule.set_start(t2.job(0), 9 * MS)
        idle = schedule.idle_intervals(20 * MS)
        assert idle == [(0, 5 * MS), (7 * MS, 9 * MS), (11 * MS, 20 * MS)]

    def test_idle_intervals_empty_schedule(self):
        assert Schedule().idle_intervals(100) == [(0, 100)]

    def test_from_mapping_and_copy(self):
        job = make_task().job(0)
        schedule = Schedule.from_mapping({job: 4000})
        duplicate = schedule.copy()
        duplicate.set_start(job, 5000)
        assert schedule.start_of(job) == 4000
        assert duplicate.start_of(job) == 5000


class TestValidation:
    def test_valid_schedule_passes(self):
        t1, t2 = make_task(name="a"), make_task(name="b", delta=9 * MS)
        jobs = [t1.job(0), t2.job(0)]
        schedule = Schedule()
        schedule.set_start(jobs[0], jobs[0].ideal_start)
        schedule.set_start(jobs[1], jobs[1].ideal_start)
        assert validate_schedule(schedule, jobs) == []

    def test_detects_missing_job(self):
        t1, t2 = make_task(name="a"), make_task(name="b")
        schedule = Schedule()
        schedule.set_start(t1.job(0), t1.job(0).ideal_start)
        violations = validate_schedule(schedule, [t1.job(0), t2.job(0)], raise_on_error=False)
        assert any("missing" in v for v in violations)

    def test_detects_start_before_release(self):
        job = make_task().job(1)
        schedule = Schedule()
        schedule.set_start(job, job.release - 1)
        violations = validate_schedule(schedule, [job], raise_on_error=False)
        assert any("before its release" in v for v in violations)

    def test_detects_deadline_miss(self):
        job = make_task().job(0)
        schedule = Schedule()
        schedule.set_start(job, job.deadline - 1)
        violations = validate_schedule(schedule, [job], raise_on_error=False)
        assert any("deadline" in v for v in violations)

    def test_detects_overlap(self):
        t1, t2 = make_task(name="a"), make_task(name="b")
        schedule = Schedule()
        schedule.set_start(t1.job(0), 5 * MS)
        schedule.set_start(t2.job(0), 5 * MS + 1)
        violations = validate_schedule(schedule, raise_on_error=False)
        assert any("overlap" in v for v in violations)

    def test_raises_by_default(self):
        job = make_task().job(0)
        schedule = Schedule()
        schedule.set_start(job, job.deadline)
        with pytest.raises(ScheduleValidationError):
            validate_schedule(schedule, [job])


class TestSystemSchedule:
    def test_devices_and_entries(self):
        sched_a = Schedule()
        sched_a.set_start(make_task(name="a", device="d0").job(0), 1000)
        sched_b = Schedule()
        sched_b.set_start(make_task(name="b", device="d1").job(0), 2000)
        system = SystemSchedule({"d0": sched_a})
        system["d1"] = sched_b
        assert system.devices == ["d0", "d1"]
        assert len(system.all_entries()) == 2
        assert len(system) == 2
