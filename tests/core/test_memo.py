"""Tests of the process-local LRU memo primitive and its registry."""

import pytest

from repro.core.memo import (
    DEFAULT_MEMO_CAPACITY,
    LRUMemo,
    drain_memo_metrics,
    get_memo,
    memo_stats,
    reset_memos,
)
from repro.obs.metrics import MEMO_OPS_TOTAL, MetricsRegistry


@pytest.fixture(autouse=True)
def isolated_registry():
    reset_memos()
    yield
    reset_memos()


class TestLRUMemo:
    def test_get_or_create_computes_once(self):
        memo = LRUMemo("t", 4)
        calls = []
        value = memo.get_or_create("k", lambda: calls.append(1) or "v")
        again = memo.get_or_create("k", lambda: calls.append(1) or "other")
        assert value == again == "v"
        assert calls == [1]
        assert memo.hits == 1 and memo.misses == 1

    def test_put_first_write_wins(self):
        memo = LRUMemo("t", 4)
        assert memo.put("k", "first") == "first"
        assert memo.put("k", "second") == "first"
        assert memo.get("k") == "first"

    def test_capacity_bounds_entries_and_counts_evictions(self):
        memo = LRUMemo("t", 2)
        for key in ("a", "b", "c"):
            memo.put(key, key.upper())
        assert len(memo) == 2
        assert memo.evictions == 1
        assert "a" not in memo  # oldest entry went first
        assert memo.get("b") == "B" and memo.get("c") == "C"

    def test_lookups_refresh_recency(self):
        memo = LRUMemo("t", 2)
        memo.put("a", 1)
        memo.put("b", 2)
        memo.get("a")  # refresh: b is now least recently used
        memo.put("c", 3)
        assert "a" in memo and "b" not in memo

    def test_zero_capacity_disables_storage(self):
        memo = LRUMemo("t", 0)
        memo.put("k", "v")
        assert len(memo) == 0
        assert memo.get("k") is None
        assert memo.misses == 1 and memo.evictions == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            LRUMemo("t", -1)

    def test_clear_drops_entries_but_keeps_counters(self):
        memo = LRUMemo("t", 4)
        memo.put("k", "v")
        memo.get("k")
        memo.clear()
        assert len(memo) == 0
        assert memo.hits == 1

    def test_stats_shape(self):
        memo = LRUMemo("t", 3)
        memo.get("missing")
        memo.put("k", "v")
        memo.get("k")
        assert memo.stats() == {
            "entries": 1,
            "capacity": 3,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
        }

    def test_drain_deltas_moves_the_watermark(self):
        memo = LRUMemo("t", 4)
        memo.get("missing")
        memo.put("k", "v")
        memo.get("k")
        assert memo.drain_deltas() == {"hit": 1, "miss": 1, "evict": 0}
        # Nothing happened since: deltas are all zero, totals unchanged.
        assert memo.drain_deltas() == {"hit": 0, "miss": 0, "evict": 0}
        memo.get("k")
        assert memo.drain_deltas() == {"hit": 1, "miss": 0, "evict": 0}
        assert memo.hits == 2


class TestRegistry:
    def test_get_memo_returns_one_instance_per_name(self):
        assert get_memo("alpha") is get_memo("alpha")
        assert get_memo("alpha") is not get_memo("beta")

    def test_later_capacity_defaults_do_not_resize(self):
        memo = get_memo("alpha", 7)
        assert get_memo("alpha", 99).capacity == 7
        assert memo.capacity == 7

    def test_default_capacity(self):
        assert get_memo("alpha").capacity == DEFAULT_MEMO_CAPACITY

    def test_memo_stats_covers_every_memo_sorted(self):
        get_memo("beta").put("k", "v")
        get_memo("alpha").get("missing")
        stats = memo_stats()
        assert list(stats) == ["alpha", "beta"]
        assert stats["alpha"]["misses"] == 1
        assert stats["beta"]["entries"] == 1

    def test_reset_memos_forgets_everything(self):
        get_memo("alpha", 7).put("k", "v")
        reset_memos()
        assert memo_stats() == {}
        assert get_memo("alpha").capacity == DEFAULT_MEMO_CAPACITY

    def test_env_variable_overrides_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMO_CAP_MY_MEMO", "3")
        assert get_memo("my-memo", 128).capacity == 3

    def test_env_variable_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMO_CAP_OFF", "0")
        memo = get_memo("off", 128)
        memo.put("k", "v")
        assert memo.get("k") is None

    def test_invalid_env_variable_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMO_CAP_BAD", "lots")
        with pytest.raises(ValueError, match="REPRO_MEMO_CAP_BAD"):
            get_memo("bad")
        monkeypatch.setenv("REPRO_MEMO_CAP_BAD", "-1")
        with pytest.raises(ValueError, match=">= 0"):
            get_memo("bad")


class TestDrainMemoMetrics:
    def test_deltas_land_as_counters(self):
        memo = get_memo("alpha", 4)
        memo.get("missing")
        memo.put("k", "v")
        memo.get("k")
        registry = MetricsRegistry()
        drain_memo_metrics(registry)
        assert registry.counter_value(MEMO_OPS_TOTAL, memo="alpha", op="hit") == 1
        assert registry.counter_value(MEMO_OPS_TOTAL, memo="alpha", op="miss") == 1

    def test_second_drain_without_activity_emits_nothing(self):
        get_memo("alpha", 4).get("missing")
        first = MetricsRegistry()
        drain_memo_metrics(first)
        second = MetricsRegistry()
        drain_memo_metrics(second)
        assert second.counter_value(MEMO_OPS_TOTAL, memo="alpha", op="miss") == 0

    def test_merged_worker_snapshots_reconstruct_totals(self):
        # Two "workers": each drains its own deltas, the dispatcher merges.
        dispatcher = MetricsRegistry()
        for _ in range(2):
            get_memo("alpha", 4).get("missing")
            worker = MetricsRegistry()
            drain_memo_metrics(worker)
            dispatcher.merge(worker.snapshot())
        assert dispatcher.counter_value(MEMO_OPS_TOTAL, memo="alpha", op="miss") == 2
