"""Unit tests for JSON serialisation of task sets and schedules."""

import pytest

from repro.core import MS, IOTask, TaskSet
from repro.core.serialization import (
    schedule_from_json,
    schedule_to_json,
    task_from_dict,
    task_to_dict,
    taskset_from_json,
    taskset_to_json,
)
from repro.scheduling import HeuristicScheduler


def make_taskset() -> TaskSet:
    return TaskSet(
        [
            IOTask(name="a", wcet=2 * MS, period=40 * MS, ideal_offset=10 * MS,
                   theta=10 * MS, priority=2, v_max=3.0),
            IOTask(name="b", wcet=4 * MS, period=80 * MS, ideal_offset=30 * MS,
                   theta=20 * MS, priority=1, v_max=2.0, device="dev1"),
        ]
    )


class TestTaskRoundTrip:
    def test_task_dict_round_trip(self):
        task = make_taskset()[0]
        assert task_from_dict(task_to_dict(task)) == task

    def test_unknown_field_rejected(self):
        data = task_to_dict(make_taskset()[0])
        data["bogus"] = 1
        with pytest.raises(ValueError):
            task_from_dict(data)

    def test_taskset_json_round_trip(self):
        original = make_taskset()
        restored = taskset_from_json(taskset_to_json(original))
        assert len(restored) == len(original)
        for a, b in zip(original, restored):
            assert a == b
        assert restored.utilisation == pytest.approx(original.utilisation)


class TestScheduleRoundTrip:
    def test_schedule_json_round_trip(self):
        task_set = make_taskset()
        result = HeuristicScheduler().schedule_taskset(task_set)
        for device, partition in task_set.partition().items():
            schedule = result.per_device[device].schedule
            text = schedule_to_json(schedule, task_set)
            restored = schedule_from_json(text, task_set)
            assert len(restored) == len(schedule)
            for entry in schedule.entries:
                assert restored.start_of(entry.job) == entry.start

    def test_schedule_refers_to_tasks_by_name(self):
        task_set = make_taskset()
        result = HeuristicScheduler().schedule_taskset(task_set)
        text = schedule_to_json(result.per_device["dev0"].schedule, task_set)
        assert '"task": "a"' in text
