"""Unit tests for JSON serialisation of task sets and schedules."""

import json

import pytest

from repro.core import MS, IOTask, TaskSet
from repro.core.serialization import (
    atomic_write_json,
    schedule_from_json,
    schedule_to_json,
    task_from_dict,
    task_to_dict,
    taskset_from_json,
    taskset_to_json,
)
from repro.scheduling import HeuristicScheduler


def make_taskset() -> TaskSet:
    return TaskSet(
        [
            IOTask(name="a", wcet=2 * MS, period=40 * MS, ideal_offset=10 * MS,
                   theta=10 * MS, priority=2, v_max=3.0),
            IOTask(name="b", wcet=4 * MS, period=80 * MS, ideal_offset=30 * MS,
                   theta=20 * MS, priority=1, v_max=2.0, device="dev1"),
        ]
    )


class TestTaskRoundTrip:
    def test_task_dict_round_trip(self):
        task = make_taskset()[0]
        assert task_from_dict(task_to_dict(task)) == task

    def test_unknown_field_rejected(self):
        data = task_to_dict(make_taskset()[0])
        data["bogus"] = 1
        with pytest.raises(ValueError):
            task_from_dict(data)

    def test_taskset_json_round_trip(self):
        original = make_taskset()
        restored = taskset_from_json(taskset_to_json(original))
        assert len(restored) == len(original)
        for a, b in zip(original, restored):
            assert a == b
        assert restored.utilisation == pytest.approx(original.utilisation)


class TestScheduleRoundTrip:
    def test_schedule_json_round_trip(self):
        task_set = make_taskset()
        result = HeuristicScheduler().schedule_taskset(task_set)
        for device, partition in task_set.partition().items():
            schedule = result.per_device[device].schedule
            text = schedule_to_json(schedule, task_set)
            restored = schedule_from_json(text, task_set)
            assert len(restored) == len(schedule)
            for entry in schedule.entries:
                assert restored.start_of(entry.job) == entry.start

    def test_schedule_refers_to_tasks_by_name(self):
        task_set = make_taskset()
        result = HeuristicScheduler().schedule_taskset(task_set)
        text = schedule_to_json(result.per_device["dev0"].schedule, task_set)
        assert '"task": "a"' in text


class TestAtomicWriteJson:
    """The shared write-to-temp + os.replace helper every store uses."""

    def test_writes_payload_and_returns_path(self, tmp_path):
        path = atomic_write_json(tmp_path / "out.json", {"b": 2, "a": 1})
        assert path == tmp_path / "out.json"
        assert json.loads(path.read_text()) == {"a": 1, "b": 2}
        # Sorted keys by default (content-hash friendly).
        assert path.read_text().index('"a"') < path.read_text().index('"b"')

    def test_overwrite_replaces_content_completely(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"old": "x" * 1000})
        atomic_write_json(target, {"new": 1})
        assert json.loads(target.read_text()) == {"new": 1}

    def test_no_temp_files_left_behind(self, tmp_path):
        atomic_write_json(tmp_path / "a.json", [1, 2, 3])
        atomic_write_json(tmp_path / "b.json", [4])
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.json", "b.json"]

    def test_failed_write_cleans_up_and_preserves_target(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"intact": True})
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})  # not JSON-serialisable
        # The original file is untouched and no temp litter remains.
        assert json.loads(target.read_text()) == {"intact": True}
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]
