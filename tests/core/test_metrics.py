"""Unit tests for the Psi / Upsilon metrics."""

import pytest

from repro.core import (
    MS,
    IOTask,
    Schedule,
    aggregate_psi,
    aggregate_upsilon,
    exact_accurate_jobs,
    mean_absolute_lateness,
    psi,
    schedule_metrics,
    upsilon,
)


def make_task(name="t", v_max=5.0, device="dev0", delta=5 * MS):
    return IOTask(
        name=name,
        wcet=2 * MS,
        period=20 * MS,
        ideal_offset=delta,
        theta=4 * MS,
        device=device,
        v_max=v_max,
        v_min=1.0,
    )


def two_job_schedule(second_exact: bool) -> Schedule:
    # Task a's ideal execution is [5, 7) ms, task b's ideal start is 9 ms, so
    # both can be exact simultaneously; the inexact variant delays b by 2 ms.
    a, b = make_task("a"), make_task("b", delta=9 * MS)
    schedule = Schedule()
    schedule.set_start(a.job(0), a.job(0).ideal_start)
    offset = 0 if second_exact else 2 * MS
    schedule.set_start(b.job(0), b.job(0).ideal_start + offset)
    return schedule


class TestPsi:
    def test_all_exact(self):
        a = make_task("a")
        schedule = Schedule()
        schedule.set_start(a.job(0), a.job(0).ideal_start)
        assert psi(schedule) == pytest.approx(1.0)

    def test_half_exact(self):
        schedule = two_job_schedule(second_exact=False)
        assert psi(schedule) == pytest.approx(0.5)
        assert len(exact_accurate_jobs(schedule)) == 1

    def test_empty_schedule_is_vacuously_perfect(self):
        assert psi(Schedule()) == pytest.approx(1.0)


class TestUpsilon:
    def test_all_at_ideal_gives_one(self):
        a = make_task("a")
        schedule = Schedule()
        schedule.set_start(a.job(0), a.job(0).ideal_start)
        assert upsilon(schedule) == pytest.approx(1.0)

    def test_degrades_with_lateness(self):
        exact = two_job_schedule(second_exact=True)
        late = two_job_schedule(second_exact=False)
        assert upsilon(late) < upsilon(exact) <= 1.0

    def test_outside_window_contributes_vmin(self):
        a = make_task("a", v_max=10.0)
        job = a.job(0)
        schedule = Schedule()
        schedule.set_start(job, job.ideal_start + 10 * MS)  # far outside theta
        assert upsilon(schedule) == pytest.approx(1.0 / 10.0)


class TestScheduleMetrics:
    def test_valid_schedule_metrics(self):
        schedule = two_job_schedule(second_exact=False)
        metrics = schedule_metrics(schedule, [e.job for e in schedule.entries])
        assert metrics.schedulable
        assert metrics.n_jobs == 2
        assert metrics.n_exact == 1
        assert metrics.psi == pytest.approx(0.5)
        assert metrics.mean_abs_lateness_us > 0

    def test_strict_mode_zeroes_invalid_schedule(self):
        a = make_task("a")
        job = a.job(0)
        schedule = Schedule()
        schedule.set_start(job, job.deadline)  # misses its deadline
        metrics = schedule_metrics(schedule, [job], strict=True)
        assert not metrics.schedulable
        assert metrics.psi == 0.0

    def test_non_strict_mode_keeps_quality_of_invalid_schedule(self):
        a = make_task("a")
        job = a.job(0)
        schedule = Schedule()
        schedule.set_start(job, job.deadline)
        metrics = schedule_metrics(schedule, [job], strict=False)
        assert not metrics.schedulable
        assert metrics.upsilon > 0.0

    def test_mean_absolute_lateness_empty(self):
        assert mean_absolute_lateness(Schedule()) == 0.0


class TestAggregation:
    def test_aggregate_psi_job_weighted(self):
        exact = two_job_schedule(second_exact=True)
        half = two_job_schedule(second_exact=False)
        assert aggregate_psi([exact, half]) == pytest.approx(0.75)

    def test_aggregate_upsilon_between_parts(self):
        exact = two_job_schedule(second_exact=True)
        half = two_job_schedule(second_exact=False)
        combined = aggregate_upsilon([exact, half])
        assert upsilon(half) <= combined <= upsilon(exact)

    def test_aggregate_of_nothing_is_one(self):
        assert aggregate_psi([]) == pytest.approx(1.0)
        assert aggregate_upsilon([]) == pytest.approx(1.0)
