"""Unit tests for the FPS-online schedulability test."""

import pytest

from repro.analysis import FPSOnlineTest, is_schedulable_fps_online, necessary_utilisation_test
from repro.core import MS, IOTask, TaskSet
from repro.taskgen import SystemGenerator


def make_task(name, wcet, period, priority, device="d0"):
    return IOTask(
        name=name, wcet=wcet, period=period, priority=priority, ideal_offset=0,
        theta=period // 4, device=device,
    )


class TestNecessaryUtilisationTest:
    def test_accepts_low_utilisation(self):
        ts = TaskSet([make_task("a", 2 * MS, 10 * MS, 1)])
        assert necessary_utilisation_test(ts)

    def test_rejects_overloaded_partition(self):
        ts = TaskSet(
            [
                make_task("a", 6 * MS, 10 * MS, 2),
                make_task("b", 9 * MS, 18 * MS, 1),
            ]
        )
        assert not necessary_utilisation_test(ts)

    def test_per_device_overload_detected(self):
        ts = TaskSet(
            [
                make_task("a", 6 * MS, 10 * MS, 2, device="d0"),
                make_task("b", 9 * MS, 18 * MS, 1, device="d0"),
                make_task("c", 1 * MS, 100 * MS, 3, device="d1"),
            ]
        )
        assert not necessary_utilisation_test(ts)


class TestFPSOnlineTest:
    def test_empty_taskset_schedulable(self):
        assert FPSOnlineTest().is_schedulable(TaskSet([]))

    def test_simple_system_schedulable(self):
        ts = TaskSet(
            [
                make_task("a", 1 * MS, 10 * MS, 3),
                make_task("b", 2 * MS, 20 * MS, 2),
                make_task("c", 4 * MS, 40 * MS, 1),
            ]
        )
        analysis = FPSOnlineTest().analyse(ts)
        assert analysis.schedulable
        assert analysis.failing_tasks == []

    def test_reports_failing_task(self):
        ts = TaskSet(
            [
                make_task("a", 2 * MS, 10 * MS, 2),
                make_task("b", 9 * MS, 40 * MS, 1),
            ]
        )
        analysis = FPSOnlineTest().analyse(ts)
        assert not analysis.schedulable
        assert "a" in analysis.failing_tasks

    def test_wrapper_function(self):
        ts = TaskSet([make_task("a", 1 * MS, 10 * MS, 1)])
        assert is_schedulable_fps_online(ts)

    def test_analysis_never_accepts_what_offline_fps_misses_on_synchronous_release(self):
        # The analytical worst case is at least as pessimistic as the offline
        # simulation of the synchronous release pattern.
        from repro.scheduling import FPSOfflineScheduler

        for seed in range(5):
            task_set = SystemGenerator(rng=seed).generate(0.6)
            if FPSOnlineTest().is_schedulable(task_set):
                assert FPSOfflineScheduler().schedule_taskset(task_set).schedulable
