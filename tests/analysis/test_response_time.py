"""Unit tests for the non-preemptive response-time analysis."""

import pytest

from repro.analysis import blocking_time, response_time, response_time_analysis
from repro.core import MS, IOTask, TaskSet


def make_task(name, wcet, period, priority, device="d0"):
    return IOTask(
        name=name,
        wcet=wcet,
        period=period,
        priority=priority,
        ideal_offset=0,
        theta=period // 4,
        device=device,
    )


class TestBlocking:
    def test_highest_priority_blocked_by_longest_lower(self):
        tasks = [
            make_task("hi", 1 * MS, 10 * MS, priority=3),
            make_task("mid", 2 * MS, 20 * MS, priority=2),
            make_task("lo", 5 * MS, 40 * MS, priority=1),
        ]
        assert blocking_time(tasks[0], tasks) == 5 * MS - 1

    def test_lowest_priority_has_no_blocking(self):
        tasks = [
            make_task("hi", 1 * MS, 10 * MS, priority=2),
            make_task("lo", 5 * MS, 40 * MS, priority=1),
        ]
        assert blocking_time(tasks[1], tasks) == 0


class TestResponseTime:
    def test_single_task_response_is_wcet(self):
        task = make_task("only", 3 * MS, 30 * MS, priority=1)
        result = response_time(task, [task])
        assert result.response_time == 3 * MS
        assert result.schedulable

    def test_interference_from_higher_priority(self):
        hi = make_task("hi", 2 * MS, 10 * MS, priority=2)
        lo = make_task("lo", 3 * MS, 30 * MS, priority=1)
        result = response_time(lo, [hi, lo])
        # One release of hi delays lo's start by 2 ms: R = 2 + 3 = 5 ms.
        assert result.response_time == 5 * MS
        assert result.schedulable

    def test_unschedulable_when_blocking_exceeds_deadline(self):
        hi = make_task("hi", 2 * MS, 10 * MS, priority=2)
        # A lower-priority task whose WCET alone exceeds hi's slack.
        lo = make_task("lo", 9 * MS, 40 * MS, priority=1)
        result = response_time(hi, [hi, lo])
        assert not result.schedulable

    def test_analysis_is_per_device(self):
        # A huge task on another device must not interfere.
        a = make_task("a", 2 * MS, 10 * MS, priority=2, device="d0")
        other = make_task("other", 9 * MS, 20 * MS, priority=1, device="d1")
        results = response_time_analysis(TaskSet([a, other]))
        assert results["a"].blocking == 0
        assert results["a"].schedulable

    def test_all_tasks_reported(self):
        tasks = TaskSet(
            [
                make_task("a", 1 * MS, 10 * MS, priority=3),
                make_task("b", 2 * MS, 20 * MS, priority=2),
                make_task("c", 3 * MS, 40 * MS, priority=1),
            ]
        )
        results = response_time_analysis(tasks)
        assert set(results) == {"a", "b", "c"}
        assert all(r.converged for r in results.values())
