"""Warm-worker fast path for the simulation service: identical at any state.

Mirrors the scheduling-side warm-worker tests: responses must be
byte-identical cold vs warm, at any worker count and chunk size, with the
per-chunk schedule-cache reuse and slim scenario payloads invisible except in
speed.
"""

import pytest

from repro.core.memo import reset_memos
from repro.runtime import SimulationRequest, SimulationService
from repro.runtime.service import (
    execute_simulation_chunk,
    inflate_simulation_entry,
    slim_simulation_entry,
)
from repro.scenario import Scenario, WorkloadSpec
from repro.taskgen import GeneratorConfig


@pytest.fixture(autouse=True)
def cold_memos():
    reset_memos()
    yield
    reset_memos()


@pytest.fixture(scope="module")
def tiny_scenario():
    return Scenario(
        name="tiny",
        workload=WorkloadSpec(
            utilisation=0.4,
            generator=GeneratorConfig(
                hyperperiod_ms=360, min_period_ms=60, max_period_ms=120
            ),
        ),
    )


def request_batch(scenario):
    return [
        SimulationRequest(
            scenario=scenario,
            system_index=index,
            execution_model=model,
            request_id=f"{index}/{model}",
        )
        for index in range(2)
        for model in ("dedicated-controller", "cpu-instigated")
    ]


def run_batch(scenario, **service_kwargs):
    with SimulationService(cache=None, **service_kwargs) as service:
        return [
            response.result_dict()
            for response in service.submit_batch(request_batch(scenario))
        ]


class TestByteIdentity:
    def test_cold_vs_warm_serial(self, tiny_scenario):
        cold = run_batch(tiny_scenario)
        warm = run_batch(tiny_scenario)  # memos stayed warm in-process
        assert warm == cold

    @pytest.mark.parametrize("n_workers", [2])
    @pytest.mark.parametrize("chunksize", [1, 4])
    def test_any_worker_count_and_chunk_size(
        self, tiny_scenario, n_workers, chunksize
    ):
        reference = run_batch(tiny_scenario)
        reset_memos()
        pooled = run_batch(tiny_scenario, n_workers=n_workers, chunksize=chunksize)
        assert pooled == reference

    def test_warm_pool_rerun_is_identical(self, tiny_scenario):
        with SimulationService(cache=None, n_workers=2, chunksize=2) as service:
            first = [
                r.result_dict() for r in service.submit_batch(request_batch(tiny_scenario))
            ]
            second = [
                r.result_dict() for r in service.submit_batch(request_batch(tiny_scenario))
            ]
        assert second == first


class TestSlimPayloads:
    def test_entries_round_trip(self, tiny_scenario):
        scenarios = {}
        for request in request_batch(tiny_scenario):
            entry = slim_simulation_entry(request, None, "t-1", scenarios)
            rebuilt, cached_schedule, trace_id = inflate_simulation_entry(
                entry, scenarios
            )
            assert (cached_schedule, trace_id) == (None, "t-1")
            assert rebuilt == request
            assert rebuilt.content_key() == request.content_key()
        assert list(scenarios) == [tiny_scenario.content_key()]

    def test_chunk_worker_matches_serial_execution(self, tiny_scenario):
        requests = request_batch(tiny_scenario)
        reference = run_batch(tiny_scenario)
        scenarios = {}
        entries = [
            slim_simulation_entry(request, None, f"t-{index}", scenarios)
            for index, request in enumerate(requests)
        ]
        outcomes, snapshot = execute_simulation_chunk(
            (scenarios, None, entries, None)
        )
        assert [response.result_dict() for response, _ in outcomes] == reference
        assert [trace["trace_id"] for _, trace in outcomes] == [
            f"t-{index}" for index in range(len(requests))
        ]
        assert "families" in snapshot
