"""Tests for the ``python -m repro.runtime`` JSONL CLI."""

import json

import pytest

from repro.runtime.__main__ import main
from repro.runtime.messages import SimulationRequest, SimulationResponse


def read_responses(path):
    return [
        SimulationResponse.from_json(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


class TestListings:
    def test_list_execution_models(self, capsys):
        assert main(["--list-execution-models"]) == 0
        out = capsys.readouterr().out
        assert "dedicated-controller" in out
        assert "cpu-instigated" in out

    def test_list_methods_and_scenarios(self, capsys):
        assert main(["--list-methods", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "static" in out
        assert "paper-default" in out


class TestDeclarativeMode:
    def test_scenario_grid(self, tmp_path, capsys):
        out_file = tmp_path / "responses.jsonl"
        assert (
            main(
                [
                    "--scenario",
                    "short-hyperperiod",
                    "--systems",
                    "2",
                    "--methods",
                    "static",
                    "--execution-models",
                    "dedicated-controller",
                    "cpu-instigated",
                    "-o",
                    str(out_file),
                ]
            )
            == 0
        )
        responses = read_responses(out_file)
        assert len(responses) == 4
        assert {r.execution_model for r in responses} == {
            "dedicated-controller",
            "cpu-instigated",
        }
        assert "4 response(s): 4 simulated" in capsys.readouterr().err

    def test_cache_dir_rerun_is_all_hits(self, tmp_path, capsys):
        args = [
            "--scenario",
            "short-hyperperiod",
            "--execution-models",
            "dedicated-controller",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(args + ["-o", str(tmp_path / "cold.jsonl")]) == 0
        assert main(args + ["-o", str(tmp_path / "warm.jsonl")]) == 0
        warm = read_responses(tmp_path / "warm.jsonl")
        assert all(r.cache == "hit" for r in warm)
        cold = read_responses(tmp_path / "cold.jsonl")
        assert [r.result_dict() for r in warm] == [r.result_dict() for r in cold]
        assert "0 simulated" in capsys.readouterr().err

    def test_max_events_flag_reaches_the_responses(self, tmp_path):
        out_file = tmp_path / "responses.jsonl"
        assert (
            main(
                [
                    "--scenario",
                    "short-hyperperiod",
                    "--max-events",
                    "3",
                    "-o",
                    str(out_file),
                ]
            )
            == 0
        )
        (response,) = read_responses(out_file)
        assert response.exhausted


class TestFileMode:
    def test_request_file_round_trip(self, tmp_path):
        requests_file = tmp_path / "requests.jsonl"
        request = SimulationRequest(scenario="short-hyperperiod", request_id="r1")
        requests_file.write_text(request.to_json() + "\n\n")  # blank lines skipped
        out_file = tmp_path / "responses.jsonl"
        assert main([str(requests_file), "-o", str(out_file)]) == 0
        (response,) = read_responses(out_file)
        assert response.request_id == "r1"
        assert response.schedulable

    def test_invalid_request_line_names_the_location(self, tmp_path):
        requests_file = tmp_path / "requests.jsonl"
        requests_file.write_text(json.dumps({"kind": "wrong"}) + "\n")
        with pytest.raises(SystemExit, match="requests.jsonl:1"):
            main([str(requests_file)])


class TestArgumentValidation:
    def test_input_and_scenario_are_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["requests.jsonl", "--scenario", "paper-default"])
        assert "exactly one" in capsys.readouterr().err

    def test_neither_input_nor_scenario_is_an_error(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_worker_count(self):
        with pytest.raises(SystemExit):
            main(["--scenario", "paper-default", "--workers", "0"])

    def test_unknown_scenario_is_reported(self, capsys):
        with pytest.raises(SystemExit):
            main(["--scenario", "nope"])
        assert "nope" in capsys.readouterr().err
