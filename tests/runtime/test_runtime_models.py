"""Unit tests for the execution-model registry and the built-in models."""

import pytest

from repro.core.schedule import Schedule
from repro.runtime import (
    BUILTIN_EXECUTION_MODELS,
    ExecutionModelSpec,
    available_execution_models,
    create_execution_model,
    execution_model_registered,
    format_execution_model_listing,
    list_execution_models,
    register_execution_model,
    unregister_execution_model,
)
from repro.scenario import create_scenario, materialize
from repro.service import ScheduleRequest, SchedulerSpec
from repro.service.service import execute_request


@pytest.fixture(scope="module")
def materialized():
    return materialize(create_scenario("short-hyperperiod"), 0)


@pytest.fixture(scope="module")
def schedules(materialized):
    response = execute_request(
        ScheduleRequest(
            scenario=materialized.scenario,
            system_index=0,
            spec=SchedulerSpec.parse("static"),
        )
    )
    assert response.schedulable
    return response.device_schedules(materialized.task_set)


def fresh_platform():
    return materialize(create_scenario("short-hyperperiod"), 0).platform


class TestRegistry:
    def test_builtins_are_registered(self):
        for name in BUILTIN_EXECUTION_MODELS:
            assert execution_model_registered(name)
        assert set(BUILTIN_EXECUTION_MODELS) <= set(available_execution_models())

    def test_aliases_resolve_to_the_same_factory(self):
        assert type(create_execution_model("controller")) is type(
            create_execution_model("dedicated-controller")
        )
        assert type(create_execution_model("remote-cpu")) is type(
            create_execution_model("cpu-instigated")
        )

    def test_unknown_model_names_the_registered_set(self):
        with pytest.raises(KeyError, match="dedicated-controller"):
            create_execution_model("quantum-io")

    def test_duplicate_registration_is_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_execution_model("cpu-instigated", lambda: None)

    def test_register_and_unregister(self):
        sentinel = object()
        register_execution_model("test-model", lambda: sentinel)
        try:
            assert create_execution_model("test-model") is sentinel
            assert "test-model" in list_execution_models()
        finally:
            unregister_execution_model("test-model")
        assert not execution_model_registered("test-model")
        with pytest.raises(KeyError):
            unregister_execution_model("test-model")

    def test_rejected_override_names_the_factory(self):
        with pytest.raises(TypeError, match="cpu-instigated"):
            create_execution_model("cpu-instigated", not_an_option=3)

    def test_listing_mentions_every_name(self):
        text = format_execution_model_listing()
        for name in BUILTIN_EXECUTION_MODELS:
            assert name in text


class TestExecutionModelSpec:
    def test_parse_format_round_trip(self):
        spec = ExecutionModelSpec.parse("cpu-instigated:jitter_window=3")
        assert str(spec) == "cpu-instigated:jitter_window=3"
        assert spec.options_dict() == {"jitter_window": 3}

    def test_resolve_forwards_options(self):
        model = ExecutionModelSpec.parse("cpu-instigated:jitter_window=9").resolve()
        assert model.jitter_window == 9

    def test_coerce_accepts_scheduler_spec_shape(self):
        base = SchedulerSpec.parse("cpu-instigated:jitter_window=3")
        spec = ExecutionModelSpec.coerce(base)
        assert isinstance(spec, ExecutionModelSpec)
        assert str(spec) == str(base)

    def test_dict_round_trip(self):
        spec = ExecutionModelSpec.parse("dedicated-controller")
        assert ExecutionModelSpec.from_dict(spec.to_dict()) == spec


class TestDedicatedController:
    def test_reproduces_offline_exactly(self, materialized, schedules):
        model = create_execution_model("dedicated-controller")
        outcome = model.execute(materialized.task_set, schedules, fresh_platform(), seed=0)
        assert outcome.matches_offline
        assert outcome.accuracy == 1.0
        assert outcome.skipped_jobs == 0
        assert outcome.mean_noc_latency == 0.0
        assert outcome.start_time_deviations() == [0] * outcome.executed_jobs

    def test_max_events_exhaustion_is_reported(self, materialized, schedules):
        model = create_execution_model("dedicated-controller")
        outcome = model.execute(
            materialized.task_set, schedules, fresh_platform(), seed=0, max_events=3
        )
        assert outcome.exhausted
        assert outcome.events_processed == 3


class TestCPUInstigated:
    def test_loses_exactness_to_noc_latency(self, materialized, schedules):
        model = create_execution_model("cpu-instigated")
        outcome = model.execute(materialized.task_set, schedules, fresh_platform(), seed=7)
        assert not outcome.matches_offline
        assert outcome.accuracy < 1.0
        assert outcome.mean_noc_latency > 0
        assert outcome.executed_jobs == outcome.offline_jobs
        # Every job still executes — late, not dropped.
        assert outcome.skipped_jobs == 0

    def test_same_seed_is_deterministic(self, materialized, schedules):
        model = create_execution_model("cpu-instigated")
        a = model.execute(materialized.task_set, schedules, fresh_platform(), seed=7)
        b = model.execute(materialized.task_set, schedules, fresh_platform(), seed=7)
        assert a.start_time_deviations() == b.start_time_deviations()
        assert a.mean_noc_latency == b.mean_noc_latency

    def test_prioritized_requests_cut_latency(self, materialized, schedules):
        plain = create_execution_model("cpu-instigated").execute(
            materialized.task_set, schedules, fresh_platform(), seed=7
        )
        prioritized = create_execution_model("cpu-instigated-prioritized").execute(
            materialized.task_set, schedules, fresh_platform(), seed=7
        )
        # Requests that win arbitration still pay the per-hop path latency,
        # but never queue behind their own background burst.
        assert prioritized.mean_noc_latency < plain.mean_noc_latency
        assert prioritized.mean_noc_latency > 0

    def test_invalid_options_are_rejected(self):
        with pytest.raises(ValueError):
            create_execution_model("cpu-instigated", jitter_window=0)
        with pytest.raises(ValueError):
            create_execution_model("cpu-instigated", request_size_flits=0)

    def test_max_events_bounds_the_noc_work(self, materialized, schedules):
        model = create_execution_model("cpu-instigated")
        total_jobs = sum(len(s.entries) for s in schedules.values())
        events_per_job = 1 + materialized.platform.spec.background_packets_per_job
        budget = events_per_job * 2  # enough for exactly two jobs
        outcome = model.execute(
            materialized.task_set, schedules, fresh_platform(), seed=7, max_events=budget
        )
        assert outcome.exhausted
        assert outcome.executed_jobs == 2
        assert outcome.skipped_jobs == total_jobs - 2
        assert outcome.events_processed <= budget
        assert outcome.accuracy < 1.0  # cut-off jobs count against accuracy


class TestOutcomeMetrics:
    def test_accuracy_counts_skipped_jobs_against_the_model(self, materialized, schedules):
        model = create_execution_model("dedicated-controller")
        outcome = model.execute(materialized.task_set, schedules, fresh_platform(), seed=0)
        # Forge a skip: drop one runtime entry and count it as skipped.
        device = next(iter(outcome.runtime_schedules))
        entries = outcome.runtime_schedules[device].sorted_entries()
        trimmed = Schedule(device=device)
        for entry in entries[1:]:
            trimmed.add(entry)
        outcome.runtime_schedules[device] = trimmed
        outcome.skipped_jobs += 1
        outcome.executed_jobs -= 1
        assert outcome.accuracy < 1.0
        assert outcome.matches_offline  # the remaining jobs are still exact
