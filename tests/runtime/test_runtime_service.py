"""Exactness, worker-invariance and caching tests for the simulation service."""

import json

import pytest

from repro.core.serialization import canonical_json
from repro.runtime import (
    SimulationCache,
    SimulationRequest,
    SimulationService,
    derive_execution_seed,
    execute_simulation,
)
from repro.scenario import Scenario, WorkloadSpec, create_scenario
from repro.service import SchedulingService
from repro.taskgen import GeneratorConfig


@pytest.fixture(scope="module")
def tiny_scenario():
    """A small, fast scenario every test in this module shares."""
    return Scenario(
        name="tiny",
        workload=WorkloadSpec(
            utilisation=0.4,
            generator=GeneratorConfig(hyperperiod_ms=360, min_period_ms=60, max_period_ms=120),
        ),
    )


def request_batch(scenario):
    """A batch spanning systems × models, with one duplicate at the end."""
    requests = [
        SimulationRequest(
            scenario=scenario,
            system_index=index,
            execution_model=model,
            request_id=f"{index}/{model}",
        )
        for index in range(2)
        for model in ("dedicated-controller", "cpu-instigated")
    ]
    requests.append(
        SimulationRequest(
            scenario=scenario,
            system_index=0,
            execution_model="dedicated-controller",
            request_id="duplicate",
        )
    )
    return requests


class TestExecuteSimulation:
    def test_pure_in_the_request(self, tiny_scenario):
        request = SimulationRequest(scenario=tiny_scenario, execution_model="cpu-instigated")
        a = execute_simulation(request)
        b = execute_simulation(request)
        assert a.result_dict() == b.result_dict()

    def test_scheduling_service_path_is_bit_identical(self, tiny_scenario):
        request = SimulationRequest(scenario=tiny_scenario, execution_model="cpu-instigated")
        direct = execute_simulation(request)
        with SchedulingService() as scheduling:
            via_service = execute_simulation(request, scheduling=scheduling)
        assert direct.result_dict() == via_service.result_dict()

    def test_unschedulable_scenario_reports_not_schedulable(self):
        overloaded = Scenario(
            name="overloaded",
            workload=WorkloadSpec(
                utilisation=0.95,
                generator=GeneratorConfig(
                    hyperperiod_ms=360, min_period_ms=60, max_period_ms=120, n_devices=1
                ),
            ),
        )
        response = execute_simulation(
            SimulationRequest(scenario=overloaded, method="fps-offline")
        )
        assert not response.schedulable
        assert response.executed_jobs == 0
        assert response.accuracy == 0.0
        assert not response.matches_offline

    def test_derived_seed_is_stable_and_request_specific(self, tiny_scenario):
        a = SimulationRequest(scenario=tiny_scenario)
        b = SimulationRequest(scenario=tiny_scenario, system_index=1)
        assert derive_execution_seed(a) == derive_execution_seed(a)
        assert derive_execution_seed(a) != derive_execution_seed(b)

    def test_max_events_exhaustion_lands_on_the_response(self, tiny_scenario):
        response = execute_simulation(
            SimulationRequest(scenario=tiny_scenario, max_events=3)
        )
        assert response.exhausted
        assert response.events_processed == 3

    def test_max_events_exhaustion_on_the_cpu_instigated_path(self, tiny_scenario):
        response = execute_simulation(
            SimulationRequest(
                scenario=tiny_scenario,
                execution_model="cpu-instigated",
                max_events=3,
            )
        )
        assert response.exhausted
        assert response.events_processed <= 3
        assert response.skipped_jobs > 0

    def test_precomputed_schedule_response_is_bit_identical(self, tiny_scenario):
        from repro.service.service import execute_request

        request = SimulationRequest(scenario=tiny_scenario, execution_model="cpu-instigated")
        direct = execute_simulation(request)
        shipped = execute_simulation(
            request, schedule_response=execute_request(request.schedule_request())
        )
        assert shipped.result_dict() == direct.result_dict()

    def test_trace_summary_is_structured(self, tiny_scenario):
        response = execute_simulation(SimulationRequest(scenario=tiny_scenario))
        assert set(response.trace) == {"event_counts", "max_deviation", "mean_deviation"}
        assert response.trace["max_deviation"] == 0  # dedicated controller is exact


class TestSimulationService:
    def test_batch_dedups_and_stamps_provenance(self, tiny_scenario):
        with SimulationService() as service:
            responses = service.submit_batch(request_batch(tiny_scenario))
            assert [r.cache for r in responses] == ["miss"] * 4 + ["hit"]
            assert service.computed == 4
            # The duplicate's answer is the first occurrence's, re-labelled.
            assert responses[-1].result_dict() == responses[0].result_dict()
            assert responses[-1].request_id == "duplicate"

    def test_cache_hits_across_batches(self, tiny_scenario):
        with SimulationService() as service:
            service.submit_batch(request_batch(tiny_scenario))
            again = service.submit_batch(request_batch(tiny_scenario))
            assert all(r.cache == "hit" for r in again)
            assert service.computed == 4

    def test_disabled_cache_still_dedups_within_a_batch(self, tiny_scenario):
        with SimulationService(cache=None) as service:
            responses = service.submit_batch(request_batch(tiny_scenario))
            assert all(r.cache == "disabled" for r in responses)
            assert service.computed == 4

    def test_persistent_cache_resumes_with_zero_recompute(self, tiny_scenario, tmp_path):
        requests = request_batch(tiny_scenario)
        with SimulationService(cache_dir=str(tmp_path / "sim")) as service:
            cold = service.submit_batch(requests)
            assert service.computed == 4
        # A fresh service over the same directory: nothing is recomputed.
        with SimulationService(cache_dir=str(tmp_path / "sim")) as service:
            warm = service.submit_batch(requests)
            assert service.computed == 0
            assert all(r.cache == "hit" for r in warm)
        assert [r.result_dict() for r in warm] == [r.result_dict() for r in cold]

    def test_reports_are_byte_identical_at_1_and_4_workers(self, tiny_scenario):
        requests = request_batch(tiny_scenario)
        with SimulationService(n_workers=1) as serial:
            serial_report = canonical_json(
                [r.result_dict() for r in serial.submit_batch(requests)]
            )
        with SimulationService(n_workers=4) as pooled:
            pooled_report = canonical_json(
                [r.result_dict() for r in pooled.submit_batch(requests)]
            )
        assert serial_report == pooled_report

    def test_pooled_workers_share_a_disk_schedule_cache(self, tiny_scenario, tmp_path):
        schedule_dir = tmp_path / "schedules"
        requests = request_batch(tiny_scenario)
        with SimulationService(
            n_workers=2, schedule_cache_dir=str(schedule_dir)
        ) as service:
            responses = service.submit_batch(requests)
        assert len(responses) == 5
        # The workers persisted the schedules they computed.
        assert list(schedule_dir.glob("*.json"))

    def test_shared_scheduling_service_reuses_cached_schedules(self, tiny_scenario):
        request = SimulationRequest(scenario=tiny_scenario)
        with SchedulingService() as scheduling:
            # Prime the schedule cache with the exact question the simulation asks.
            scheduling.submit(request.schedule_request())
            computed_before = scheduling.computed
            with SimulationService(scheduling=scheduling) as service:
                service.submit(request)
            assert scheduling.computed == computed_before  # schedule cache hit

    def test_pooled_workers_receive_memory_cached_schedules(self, tiny_scenario):
        # Even with a memory-only schedule cache, schedules the dispatching
        # service already holds ship with the pooled jobs instead of being
        # recomputed — and the results stay identical to the serial path.
        requests = request_batch(tiny_scenario)
        with SchedulingService() as scheduling:
            scheduling.submit_batch([r.schedule_request() for r in requests])
            computed_before = scheduling.computed
            with SimulationService(n_workers=2, scheduling=scheduling) as pooled:
                pooled_responses = pooled.submit_batch(requests)
            assert scheduling.computed == computed_before
        with SimulationService() as serial:
            serial_responses = serial.submit_batch(requests)
        assert [r.result_dict() for r in pooled_responses] == [
            r.result_dict() for r in serial_responses
        ]

    def test_explicit_cache_object_is_shared(self, tiny_scenario):
        cache = SimulationCache()
        request = SimulationRequest(scenario=tiny_scenario)
        with SimulationService(cache=cache) as first:
            first.submit(request)
        with SimulationService(cache=cache) as second:
            response = second.submit(request)
        assert response.cache == "hit"
        assert second.computed == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="n_workers"):
            SimulationService(n_workers=0)
        with pytest.raises(ValueError, match="not both"):
            SimulationService(cache_dir="x", cache=None)
        with pytest.raises(ValueError, match="not both"):
            SimulationService(
                scheduling=SchedulingService(), schedule_cache_dir="y"
            )


class TestCacheEnvelope:
    def test_sim_cache_entries_have_their_own_kind(self, tiny_scenario, tmp_path):
        request = SimulationRequest(scenario=tiny_scenario)
        with SimulationService(cache_dir=str(tmp_path)) as service:
            service.submit(request)
        (entry_path,) = tmp_path.glob("*.json")
        payload = json.loads(entry_path.read_text())
        assert payload["kind"] == "repro/sim-cache-entry"

    def test_schedule_cache_entry_is_not_misread(self, tiny_scenario, tmp_path):
        # A schedule-cache entry dropped into the sim-cache directory under
        # the sim request's key must be rejected (kind mismatch -> miss).
        request = SimulationRequest(scenario=tiny_scenario)
        key = request.content_key()
        (tmp_path / f"{key}.json").write_text(
            json.dumps({"kind": "repro/schedule-cache-entry", "version": 1, "data": {}})
        )
        with SimulationService(cache_dir=str(tmp_path)) as service:
            response = service.submit(request)
        assert response.cache == "miss"
        assert response.schedulable
