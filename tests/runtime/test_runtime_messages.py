"""Round-trip, content-key and versioning tests for the v1 sim envelopes."""

import json
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.serialization import PayloadVersionError
from repro.runtime import (
    SIM_REQUEST_KIND,
    SIM_RESPONSE_KIND,
    SimulationRequest,
    SimulationResponse,
    execute_simulation,
)
from repro.scenario import Scenario, WorkloadSpec, create_scenario
from repro.service import SchedulerSpec
from repro.taskgen import GeneratorConfig, SystemGenerator

# -- hypothesis strategies over the request's content axes ----------------------

scenario_names = st.sampled_from(
    ["paper-default", "short-hyperperiod", "bursty-periods", "faulty-controller"]
)
methods = st.sampled_from(["static", "gpiocp", "fps-offline", "ga:generations=5,seed=3"])
models = st.sampled_from(
    [
        "dedicated-controller",
        "cpu-instigated",
        "cpu-instigated-prioritized",
        "cpu-instigated:jitter_window=2",
    ]
)


@st.composite
def simulation_requests(draw):
    return SimulationRequest(
        scenario=create_scenario(draw(scenario_names)),
        method=draw(methods),
        execution_model=draw(models),
        system_index=draw(st.integers(min_value=0, max_value=3)),
        horizon=draw(st.one_of(st.none(), st.integers(min_value=1, max_value=10**7))),
        max_events=draw(st.one_of(st.none(), st.integers(min_value=1, max_value=10**6))),
        seed=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=2**32))),
        request_id=draw(st.one_of(st.none(), st.text(max_size=12))),
    )


class TestSimulationRequestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(request=simulation_requests())
    def test_json_round_trip_is_lossless(self, request):
        recovered = SimulationRequest.from_json(request.to_json())
        assert recovered == request
        assert recovered.content_key() == request.content_key()

    @settings(max_examples=40, deadline=None)
    @given(request=simulation_requests())
    def test_payload_is_versioned_and_json_stable(self, request):
        payload = request.to_dict()
        assert payload["kind"] == SIM_REQUEST_KIND
        assert payload["version"] == 1
        assert json.loads(json.dumps(payload)) == payload

    @settings(max_examples=20, deadline=None)
    @given(request=simulation_requests())
    def test_request_is_picklable(self, request):
        clone = pickle.loads(pickle.dumps(request))
        assert clone == request
        assert clone.content_key() == request.content_key()


class TestSimulationRequestValidation:
    def test_scenario_is_required(self):
        with pytest.raises(ValueError, match="scenario"):
            SimulationRequest(scenario=None)

    def test_strings_are_coerced(self):
        request = SimulationRequest(
            scenario="paper-default",
            method="gpiocp",
            execution_model="cpu-instigated:jitter_window=2",
        )
        assert request.method == SchedulerSpec.parse("gpiocp")
        assert str(request.execution_model) == "cpu-instigated:jitter_window=2"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"system_index": -1},
            {"horizon": 0},
            {"max_events": 0},
            {"seed": -2},
        ],
    )
    def test_invalid_values_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SimulationRequest(scenario="paper-default", **kwargs)

    def test_explicit_task_set_pins_system_index(self):
        task_set = SystemGenerator(GeneratorConfig(), rng=1).generate(0.4)
        with pytest.raises(ValueError, match="system_index"):
            SimulationRequest(
                scenario="paper-default", task_set=task_set, system_index=1
            )

    def test_newer_version_is_refused(self):
        payload = SimulationRequest(scenario="paper-default").to_dict()
        payload["version"] = 99
        with pytest.raises(PayloadVersionError):
            SimulationRequest.from_dict(payload)


class TestContentKey:
    def test_ignores_request_id(self):
        a = SimulationRequest(scenario="paper-default", request_id="a")
        b = SimulationRequest(scenario="paper-default", request_id="b")
        assert a.content_key() == b.content_key()

    def test_every_axis_changes_the_key(self):
        base = SimulationRequest(scenario="paper-default")
        variants = [
            SimulationRequest(scenario="short-hyperperiod"),
            SimulationRequest(scenario="paper-default", method="gpiocp"),
            SimulationRequest(scenario="paper-default", execution_model="cpu-instigated"),
            SimulationRequest(scenario="paper-default", system_index=1),
            SimulationRequest(scenario="paper-default", horizon=10_000),
            SimulationRequest(scenario="paper-default", max_events=100),
            SimulationRequest(scenario="paper-default", seed=5),
        ]
        keys = {base.content_key()} | {v.content_key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_fault_plan_changes_the_key_via_the_scenario(self):
        # The fault plan is part of the scenario's content key, so a request
        # over the faulty variant can never hit the fault-free cache entry.
        plain = SimulationRequest(scenario="paper-default")
        faulty = SimulationRequest(
            scenario=create_scenario("paper-default").with_faults(
                create_scenario("faulty-controller").faults.faults
            )
        )
        assert plain.content_key() != faulty.content_key()

    def test_explicit_workload_changes_the_key(self):
        task_set = SystemGenerator(GeneratorConfig(), rng=1).generate(0.4)
        implicit = SimulationRequest(scenario="paper-default")
        explicit = SimulationRequest(scenario="paper-default", task_set=task_set)
        assert implicit.content_key() != explicit.content_key()


class TestScheduleRequestBridge:
    def test_scenario_request_is_content_identical_to_a_service_request(self):
        from repro.service import ScheduleRequest

        sim = SimulationRequest(scenario="paper-default", method="gpiocp", system_index=2)
        direct = ScheduleRequest(
            scenario=create_scenario("paper-default"),
            system_index=2,
            spec=SchedulerSpec.parse("gpiocp"),
        )
        assert sim.schedule_request().content_key() == direct.content_key()

    def test_explicit_workload_request_matches_a_task_set_request(self):
        from repro.service import ScheduleRequest

        task_set = SystemGenerator(GeneratorConfig(), rng=1).generate(0.4)
        sim = SimulationRequest(scenario="paper-default", task_set=task_set)
        direct = ScheduleRequest(task_set=task_set, spec=SchedulerSpec.parse("static"))
        assert sim.schedule_request().content_key() == direct.content_key()


@pytest.fixture(scope="module")
def small_response():
    scenario = Scenario(
        name="tiny",
        workload=WorkloadSpec(
            utilisation=0.4,
            generator=GeneratorConfig(hyperperiod_ms=360, min_period_ms=60, max_period_ms=120),
        ),
    )
    return execute_simulation(SimulationRequest(scenario=scenario, request_id="resp-1"))


class TestSimulationResponse:
    def test_json_round_trip_preserves_everything(self, small_response):
        recovered = SimulationResponse.from_json(small_response.to_json())
        assert recovered == small_response

    def test_payload_is_versioned(self, small_response):
        payload = small_response.to_dict()
        assert payload["kind"] == SIM_RESPONSE_KIND
        assert payload["version"] == 1
        assert json.loads(json.dumps(payload)) == payload

    def test_newer_version_is_refused(self, small_response):
        payload = small_response.to_dict()
        payload["version"] = 99
        with pytest.raises(PayloadVersionError):
            SimulationResponse.from_dict(payload)

    def test_result_dict_excludes_provenance(self, small_response):
        result = small_response.result_dict()
        assert "cache" not in result
        assert "elapsed_s" not in result
        rebuilt = SimulationResponse.from_result_dict(
            result, request_id="other", cache="hit", cache_key="k"
        )
        assert rebuilt.result_dict() == result
        assert rebuilt.cache == "hit"

    def test_response_is_picklable(self, small_response):
        assert pickle.loads(pickle.dumps(small_response)) == small_response
