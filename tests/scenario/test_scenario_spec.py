"""Unit and property tests for the declarative Scenario model."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import FAULT_KINDS, FaultSpec
from repro.scenario import (
    DEVICE_TYPES,
    MISSING_REQUEST_POLICIES,
    SCENARIO_KIND,
    FaultPlanSpec,
    PlatformSpec,
    Scenario,
    WorkloadSpec,
)
from repro.taskgen import GeneratorConfig


class TestWorkloadSpec:
    def test_defaults_match_the_paper(self):
        workload = WorkloadSpec()
        assert workload.generator == GeneratorConfig()
        assert workload.n_tasks is None
        assert workload.utilisation == 0.5

    def test_generator_accepts_plain_dicts(self):
        workload = WorkloadSpec(generator={"hyperperiod_ms": 720})
        assert workload.generator == GeneratorConfig(hyperperiod_ms=720)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"utilisation": 0.0},
            {"utilisation": -0.3},
            {"utilisation": "high"},
            {"n_tasks": 0},
            {"seed": -1},
            {"generator": {"not_a_field": 1}},
        ],
    )
    def test_invalid_values_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadSpec(**kwargs)


class TestPlatformSpec:
    def test_io_tile_is_the_far_corner(self):
        assert PlatformSpec(mesh_width=5, mesh_height=3).io_tile == (4, 2)

    def test_unknown_device_type_names_the_valid_set(self):
        with pytest.raises(ValueError, match="gpio"):
            PlatformSpec(device_type="fpga")
        assert set(DEVICE_TYPES) == {"gpio", "uart", "spi", "can"}

    def test_unknown_policy_names_the_valid_set(self):
        with pytest.raises(ValueError, match="skip"):
            PlatformSpec(missing_request_policy="retry")
        assert set(MISSING_REQUEST_POLICIES) == {"skip", "execute"}

    @pytest.mark.parametrize(
        "kwargs", [{"mesh_width": 0}, {"memory_kb": -1}, {"flit_delay": -2}]
    )
    def test_invalid_dimensions_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PlatformSpec(**kwargs)

    def test_single_node_meshes_are_rejected(self):
        """A mesh needs a CPU tile besides the I/O tile; 1x1 cannot work."""
        with pytest.raises(ValueError, match="at least 2 nodes"):
            PlatformSpec(mesh_width=1, mesh_height=1)
        PlatformSpec(mesh_width=2, mesh_height=1)  # smallest valid mesh


class TestFaultPlan:
    def test_kind_is_validated_naming_the_valid_set(self):
        """The three known kinds are enforced at FaultSpec construction."""
        with pytest.raises(ValueError, match="missing-request"):
            FaultSpec(kind="nonsense", task_name="tau0")
        assert FAULT_KINDS == ("missing-request", "late-request", "corrupted-command")
        for kind in FAULT_KINDS:
            FaultSpec(kind=kind, task_name="tau0")  # does not raise

    def test_plan_coerces_dict_entries(self):
        plan = FaultPlanSpec(faults=({"kind": "late-request", "task_name": "a", "delay": 2},))
        assert plan.faults == (FaultSpec(kind="late-request", task_name="a", delay=2),)
        assert len(plan) == 1

    def test_plan_rejects_non_fault_entries(self):
        with pytest.raises(ValueError):
            FaultPlanSpec(faults=("missing-request",))


class TestScenario:
    def test_payload_is_versioned(self):
        payload = Scenario(name="x").to_dict()
        assert payload["kind"] == SCENARIO_KIND
        assert payload["version"] == 1

    def test_sub_specs_coerce_from_dicts_and_tuples(self):
        scenario = Scenario(
            name="inline",
            workload={"utilisation": 0.3},
            platform={"mesh_width": 2},
            faults=[FaultSpec(kind="missing-request", task_name="tau0")],
        )
        assert scenario.workload == WorkloadSpec(utilisation=0.3)
        assert scenario.platform == PlatformSpec(mesh_width=2)
        assert len(scenario.faults) == 1

    def test_bad_name_is_rejected(self):
        for name in ("", "  padded  ", 42):
            with pytest.raises(ValueError):
                Scenario(name=name)

    def test_with_helpers_derive_frozen_copies(self):
        base = Scenario(name="base")
        derived = base.with_utilisation(0.8).with_platform(mesh_width=6)
        assert derived.workload.utilisation == 0.8
        assert derived.platform.mesh_width == 6
        assert base.workload.utilisation == 0.5  # original untouched

    def test_content_key_covers_every_field(self):
        base = Scenario(name="base")
        variants = [
            Scenario(name="other"),
            Scenario(name="base", description="d"),
            base.with_utilisation(0.51),
            base.with_workload(seed=1),
            base.with_workload(generator=GeneratorConfig(hyperperiod_ms=720)),
            base.with_platform(flit_delay=2),
            base.with_faults([FaultSpec(kind="missing-request", task_name="tau0")]),
        ]
        keys = {base.content_key()} | {v.content_key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_newer_version_is_refused(self):
        payload = Scenario(name="x").to_dict()
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            Scenario.from_dict(payload)

    def test_unknown_fields_are_rejected(self):
        payload = Scenario(name="x").to_dict()
        payload["data"]["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            Scenario.from_dict(payload)


# -- property-based round-trip -------------------------------------------------

_generators = st.builds(
    GeneratorConfig,
    hyperperiod_ms=st.sampled_from([360, 720, 1440]),
    min_period_ms=st.sampled_from([10, 48]),
    max_period_ms=st.sampled_from([None, 480, 1440]),
    utilisation_per_task=st.sampled_from([0.05, 0.1]),
    theta_divisor=st.sampled_from([3, 4]),
    max_task_utilisation=st.sampled_from([0.25, 1 / 3]),
    v_min=st.sampled_from([1.0, 2.0]),
    n_devices=st.integers(min_value=1, max_value=4),
    device_prefix=st.sampled_from(["dev", "io"]),
    task_prefix=st.sampled_from(["tau", "t"]),
)

_workloads = st.builds(
    WorkloadSpec,
    utilisation=st.floats(min_value=0.05, max_value=0.95),
    n_tasks=st.one_of(st.none(), st.integers(min_value=1, max_value=40)),
    generator=_generators,
    seed=st.integers(min_value=0, max_value=2**32),
)

_platforms = st.builds(
    PlatformSpec,
    memory_kb=st.integers(min_value=1, max_value=128),
    request_latency=st.integers(min_value=0, max_value=5),
    response_latency=st.integers(min_value=0, max_value=5),
    missing_request_policy=st.sampled_from(MISSING_REQUEST_POLICIES),
    timer_resolution=st.integers(min_value=1, max_value=4),
    device_type=st.sampled_from(DEVICE_TYPES),
    mesh_width=st.integers(min_value=2, max_value=8),
    mesh_height=st.integers(min_value=1, max_value=8),
    routing_delay=st.integers(min_value=0, max_value=4),
    flit_delay=st.integers(min_value=0, max_value=4),
    injection_delay=st.integers(min_value=0, max_value=4),
    ejection_delay=st.integers(min_value=0, max_value=4),
    background_packets_per_job=st.integers(min_value=0, max_value=8),
)

_faults = st.lists(
    st.builds(
        FaultSpec,
        kind=st.sampled_from(FAULT_KINDS),
        task_name=st.sampled_from(["tau0", "tau1", "tau2"]),
        job_index=st.one_of(st.none(), st.integers(min_value=0, max_value=9)),
        delay=st.integers(min_value=0, max_value=20),
    ),
    max_size=4,
).map(lambda faults: FaultPlanSpec(faults=tuple(faults)))

_scenarios = st.builds(
    Scenario,
    name=st.from_regex(r"[A-Za-z][A-Za-z0-9_.-]{0,15}", fullmatch=True),
    description=st.text(max_size=40),
    workload=_workloads,
    platform=_platforms,
    faults=_faults,
)


@settings(max_examples=60, deadline=None)
@given(scenario=_scenarios)
def test_json_round_trip_is_lossless(scenario):
    """parse(format(s)) == s over randomised Scenario trees."""
    recovered = Scenario.from_json(scenario.to_json())
    assert recovered == scenario
    assert recovered.content_key() == scenario.content_key()
    # The round-trip survives an actual JSON re-serialisation as well.
    assert Scenario.from_dict(json.loads(scenario.to_json(indent=2))) == scenario


@settings(max_examples=60, deadline=None)
@given(scenario=_scenarios)
def test_scenarios_are_hashable_and_key_stable(scenario):
    assert hash(scenario) == hash(Scenario.from_json(scenario.to_json()))
    assert scenario.content_key() == scenario.content_key()
