"""Tests for the scenario registry and its built-in presets."""

import pytest

from repro.scenario import (
    PRESET_SCENARIOS,
    Scenario,
    available_scenarios,
    create_scenario,
    list_scenarios,
    register_scenario,
    scenario_registered,
    unregister_scenario,
)


class TestPresets:
    def test_all_documented_presets_are_registered(self):
        assert set(PRESET_SCENARIOS) == set(available_scenarios())
        assert set(PRESET_SCENARIOS) == {
            "paper-default",
            "paper-scale",
            "short-hyperperiod",
            "bursty-periods",
            "faulty-controller",
            "wide-noc",
        }

    def test_presets_resolve_named_and_described(self):
        for name in available_scenarios():
            scenario = create_scenario(name)
            assert isinstance(scenario, Scenario)
            assert scenario.name == name
            assert scenario.description

    def test_list_scenarios_maps_names_to_descriptions(self):
        listing = list_scenarios()
        assert set(listing) == set(available_scenarios())
        assert all(isinstance(text, str) for text in listing.values())

    def test_presets_have_distinct_content_keys(self):
        keys = [create_scenario(name).content_key() for name in available_scenarios()]
        assert len(set(keys)) == len(keys)

    def test_faulty_controller_carries_all_three_kinds(self):
        scenario = create_scenario("faulty-controller")
        kinds = {fault.kind for fault in scenario.faults.faults}
        assert kinds == {"missing-request", "late-request", "corrupted-command"}


class TestCreateScenario:
    def test_accepts_a_ready_scenario(self):
        scenario = Scenario(name="mine")
        assert create_scenario(scenario) is scenario

    def test_accepts_inline_json_and_payload_dicts(self):
        scenario = create_scenario("short-hyperperiod")
        assert create_scenario(scenario.to_json()) == scenario
        assert create_scenario(scenario.to_dict()) == scenario

    def test_unknown_name_lists_the_presets(self):
        with pytest.raises(KeyError, match="paper-default"):
            create_scenario("no-such-scenario")

    def test_invalid_json_is_a_value_error(self):
        with pytest.raises(ValueError, match="JSON"):
            create_scenario("{not json")

    def test_non_string_refs_are_rejected(self):
        with pytest.raises(TypeError):
            create_scenario(42)


class TestRegistration:
    def test_register_and_unregister(self):
        scenario = Scenario(name="ephemeral")
        register_scenario("ephemeral", scenario)
        try:
            assert scenario_registered("ephemeral")
            assert create_scenario("ephemeral") == scenario
        finally:
            unregister_scenario("ephemeral")
        assert not scenario_registered("ephemeral")

    def test_duplicate_names_are_refused(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("paper-default", Scenario(name="usurper"))

    def test_decorator_form_registers_factories(self):
        @register_scenario("ephemeral-factory")
        def _build() -> Scenario:
            return Scenario(name="ephemeral-factory")

        try:
            assert create_scenario("ephemeral-factory").name == "ephemeral-factory"
        finally:
            unregister_scenario("ephemeral-factory")

    def test_unregister_unknown_raises(self):
        with pytest.raises(KeyError):
            unregister_scenario("never-registered")
