"""Determinism and worker-invariance tests for scenario materialisation."""

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.serialization import taskset_to_dict
from repro.hardware.devices import CANDevice, GPIOPin, SPIDevice, UARTDevice
from repro.scenario import (
    FaultPlanSpec,
    FaultSpec,
    Scenario,
    WorkloadSpec,
    available_scenarios,
    build_platform,
    create_scenario,
    materialize,
    system_seed,
)


def _materialized_taskset_dict(args):
    """Worker helper: materialise in a separate process (top-level, picklable)."""
    scenario_json, system_index = args
    scenario = Scenario.from_json(scenario_json)
    return taskset_to_dict(materialize(scenario, system_index).task_set)


class TestDeterminism:
    def test_every_preset_materializes_deterministically(self):
        for name in available_scenarios():
            scenario = create_scenario(name)
            first = materialize(scenario, 0)
            second = materialize(scenario, 0)
            assert taskset_to_dict(first.task_set) == taskset_to_dict(second.task_set)
            assert first.seed == second.seed == system_seed(scenario, 0)

    def test_system_indices_draw_distinct_systems(self):
        scenario = create_scenario("paper-default")
        sets = [taskset_to_dict(materialize(scenario, i).task_set) for i in range(3)]
        assert sets[0] != sets[1] and sets[1] != sets[2]

    def test_any_field_change_decorrelates_the_draw(self):
        base = Scenario(name="base")
        renamed = Scenario(name="renamed")
        assert system_seed(base, 0) != system_seed(renamed, 0)
        assert taskset_to_dict(materialize(base, 0).task_set) != taskset_to_dict(
            materialize(renamed, 0).task_set
        )

    def test_utilisation_override_equals_pinned_field(self):
        scenario = create_scenario("paper-default")
        overridden = materialize(scenario, 1, utilisation=0.7)
        pinned = materialize(scenario.with_utilisation(0.7), 1)
        assert taskset_to_dict(overridden.task_set) == taskset_to_dict(pinned.task_set)
        assert overridden.seed == pinned.seed

    def test_negative_system_index_is_rejected(self):
        with pytest.raises(ValueError, match="system_index"):
            materialize(Scenario(name="x"), -1)


class TestWorkerInvariance:
    def test_materialize_is_bit_identical_across_process_pools(self):
        """The acceptance property: same draw in-process and on any worker."""
        scenarios = [create_scenario("paper-default"), create_scenario("faulty-controller")]
        jobs = [(scenario.to_json(), index) for scenario in scenarios for index in range(3)]
        local = [_materialized_taskset_dict(job) for job in jobs]
        with ProcessPoolExecutor(max_workers=2) as pool:
            remote = list(pool.map(_materialized_taskset_dict, jobs))
        assert local == remote


class TestPlatformBuilding:
    def test_materialize_unpacks_as_the_documented_triple(self):
        scenario = create_scenario("faulty-controller")
        task_set, platform, faults = materialize(scenario, 0)
        assert len(task_set) > 0
        assert platform.spec == scenario.platform
        assert len(faults) == len(scenario.faults)
        # The controller shares the run's fault injector.
        assert platform.controller.fault_injector is faults

    def test_mesh_and_tiles_follow_the_spec(self):
        platform = build_platform(create_scenario("wide-noc").platform)
        assert platform.topology.width == 8 and platform.topology.height == 8
        assert platform.io_tile == (7, 7)
        assert len(platform.cpu_tiles()) == 63
        assert platform.io_tile not in platform.cpu_tiles()

    @pytest.mark.parametrize(
        "device_type,device_cls",
        [("gpio", GPIOPin), ("uart", UARTDevice), ("spi", SPIDevice), ("can", CANDevice)],
    )
    def test_device_type_selects_the_device_model(self, device_type, device_cls):
        scenario = Scenario(name="dev").with_platform(device_type=device_type)
        platform = build_platform(scenario.platform)
        assert isinstance(platform.controller.device_factory("d0"), device_cls)

    def test_timer_resolution_reaches_the_controller_processors(self):
        scenario = Scenario(name="coarse").with_platform(timer_resolution=4)
        _, platform, _ = materialize(scenario, 0)
        assert platform.controller.timer_resolution == 4
        processor = platform.controller._ensure_processor("dev0")
        assert processor.timer.resolution == 4

    def test_platforms_are_fresh_per_materialization(self):
        scenario = Scenario(name="fresh")
        first = materialize(scenario, 0)
        second = materialize(scenario, 0)
        assert first.platform.controller is not second.platform.controller
        assert first.platform.network is not second.platform.network
        assert first.faults is not second.faults


class TestFaultPlanMaterialisation:
    def test_fault_injector_carries_the_declared_faults(self):
        scenario = Scenario(name="f").with_faults(
            [FaultSpec(kind="late-request", task_name="tau0", delay=5)]
        )
        _, _, faults = materialize(scenario, 0)
        assert faults.has("late-request", "tau0")
        assert not faults.has("missing-request", "tau0")

    def test_empty_plan_materialises_an_empty_injector(self):
        scenario = Scenario(name="clean", faults=FaultPlanSpec())
        _, _, faults = materialize(scenario, 0)
        assert len(faults) == 0

    def test_workload_spec_controls_task_count(self):
        scenario = Scenario(name="n", workload=WorkloadSpec(utilisation=0.4, n_tasks=7))
        task_set, _, _ = materialize(scenario, 0)
        assert len(task_set) == 7
