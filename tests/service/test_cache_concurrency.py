"""Concurrency regression tests for the content-addressed caches.

Satellite of the serving-daemon PR: one cache instance is now touched from
the event-loop thread and executor callback threads at once, and two daemon
or batch processes may share one cache directory.  These tests hammer both
boundaries.
"""

import json
import subprocess
import sys
import threading
from pathlib import Path

from repro.runtime.service import SimulationCache
from repro.service import ScheduleCache

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

KEY = "deadbeefdeadbeef"


def result_for(value: int) -> dict:
    return {"answer": value, "payload": list(range(50))}


class TestThreadSafety:
    def test_many_threads_one_key(self, tmp_path):
        """Writers and readers hammering one key: no tears, no double stores."""
        cache = ScheduleCache(tmp_path / "cache")
        results = []
        errors = []
        barrier = threading.Barrier(16)

        def worker(thread_index: int):
            try:
                barrier.wait(timeout=30)
                for _ in range(50):
                    cache.put(KEY, result_for(thread_index))
                    entry = cache.get(KEY)
                    assert entry is not None
                    results.append(entry["answer"])
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(index,)) for index in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        # First put wins, every read afterwards sees that same entry.
        assert len(set(results)) == 1
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["stores"] == 1
        assert stats["hits"] == 16 * 50

    def test_distinct_keys_from_threads_all_land(self, tmp_path):
        cache = ScheduleCache(tmp_path / "cache")
        barrier = threading.Barrier(8)

        def worker(thread_index: int):
            barrier.wait(timeout=30)
            for item in range(20):
                cache.put(f"key-{thread_index}-{item}", result_for(item))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(cache) == 8 * 20
        assert cache.stats()["stores"] == 8 * 20
        # Every entry is readable back from disk by a fresh instance.
        reloaded = ScheduleCache(tmp_path / "cache")
        assert reloaded.get("key-3-7") == result_for(7)

    def test_vanished_directory_is_recreated_on_persist(self, tmp_path):
        import shutil

        directory = tmp_path / "cache"
        cache = ScheduleCache(directory)
        shutil.rmtree(directory)
        cache.put(KEY, result_for(1))  # must not raise
        assert (directory / f"{KEY}.json").exists()


HAMMER_SNIPPET = """
import json, sys
from repro.service.cache import ScheduleCache

directory, key, value, rounds = sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4])
result = {"answer": value, "payload": list(range(50))}
for _ in range(rounds):
    cache = ScheduleCache(directory)  # fresh instance: always persists
    cache._persist(key, result)
    loaded = ScheduleCache(directory).get(key)
    assert loaded is not None, "entry unreadable mid-race"
    assert loaded["payload"] == list(range(50)), "torn entry: " + json.dumps(loaded)
print("ok")
"""


class TestProcessSafety:
    def test_two_processes_hammer_one_key(self, tmp_path):
        """Two processes rewriting one key never tear the on-disk entry."""
        directory = tmp_path / "cache"
        directory.mkdir()
        processes = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    HAMMER_SNIPPET,
                    str(directory),
                    KEY,
                    str(value),
                    "40",
                ],
                env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for value in (1, 2)
        ]
        for process in processes:
            stdout, stderr = process.communicate(timeout=120)
            assert process.returncode == 0, stderr
            assert stdout.strip() == "ok"
        # Whatever the interleaving, the surviving file is a complete entry
        # holding one of the two values.
        final = ScheduleCache(directory).get(KEY)
        assert final is not None
        assert final["answer"] in (1, 2)
        assert final["payload"] == list(range(50))


SQLITE_HAMMER_SNIPPET = """
import json, sys
from repro.service.cache import ScheduleCache
from repro.store import create_backend

spec, key, value, rounds = sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4])
result = {"answer": value, "payload": list(range(50))}
for _ in range(rounds):
    cache = ScheduleCache(backend=create_backend(spec))
    cache._persist(key, result)
    loaded = ScheduleCache(backend=create_backend(spec)).get(key)
    assert loaded is not None, "entry unreadable mid-race"
    assert loaded["payload"] == list(range(50)), "torn entry: " + json.dumps(loaded)
print("ok")
"""


class TestSqliteBackendConcurrency:
    """The same thread/process hammering, against one shared SQLite file."""

    def test_many_threads_one_key(self, tmp_path):
        from repro.store import SqliteBackend

        cache = ScheduleCache(backend=SqliteBackend(tmp_path / "cache.db"))
        results = []
        errors = []
        barrier = threading.Barrier(16)

        def worker(thread_index: int):
            try:
                barrier.wait(timeout=30)
                for _ in range(50):
                    cache.put(KEY, result_for(thread_index))
                    entry = cache.get(KEY)
                    assert entry is not None
                    results.append(entry["answer"])
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(index,)) for index in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(set(results)) == 1
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["stores"] == 1
        assert stats["hits"] == 16 * 50
        assert stats["backend"]["name"] == "sqlite"

    def test_distinct_keys_from_threads_all_land(self, tmp_path):
        from repro.store import SqliteBackend

        path = tmp_path / "cache.db"
        cache = ScheduleCache(backend=SqliteBackend(path))
        barrier = threading.Barrier(8)

        def worker(thread_index: int):
            barrier.wait(timeout=30)
            for item in range(20):
                cache.put(f"key-{thread_index}-{item}", result_for(item))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(cache) == 8 * 20
        assert cache.stats()["stores"] == 8 * 20
        # Every entry is readable back from the file by a fresh instance.
        reloaded = ScheduleCache(backend=SqliteBackend(path))
        assert reloaded.get("key-3-7") == result_for(7)

    def test_two_processes_hammer_one_key(self, tmp_path):
        """Two processes writing one key in one SQLite file never tear it."""
        from repro.store import SqliteBackend

        spec = f"sqlite:path={tmp_path / 'cache.db'}"
        processes = [
            subprocess.Popen(
                [sys.executable, "-c", SQLITE_HAMMER_SNIPPET, spec, KEY, str(value), "40"],
                env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for value in (1, 2)
        ]
        for process in processes:
            stdout, stderr = process.communicate(timeout=120)
            assert process.returncode == 0, stderr
            assert stdout.strip() == "ok"
        final = ScheduleCache(backend=SqliteBackend(tmp_path / "cache.db")).get(KEY)
        assert final is not None
        assert final["answer"] in (1, 2)
        assert final["payload"] == list(range(50))

    def test_kind_isolation_in_one_file(self, tmp_path):
        from repro.store import SqliteBackend

        path = tmp_path / "cache.db"
        sim_cache = SimulationCache(backend=SqliteBackend(path))
        sim_cache.put(KEY, result_for(9))
        # A schedule cache over the same file must not misread the sim entry.
        schedule_cache = ScheduleCache(backend=SqliteBackend(path))
        assert schedule_cache.get(KEY) is None
        with SqliteBackend(path) as backend:
            assert backend.kind_counts() == {"repro/sim-cache-entry": 1}


class TestSimulationCacheInheritsSafety:
    def test_sim_cache_counters_and_kind_isolation(self, tmp_path):
        directory = tmp_path / "cache"
        sim_cache = SimulationCache(directory)
        sim_cache.put(KEY, result_for(9))
        assert sim_cache.stats()["stores"] == 1
        # A schedule cache pointed at the same directory must not misread
        # the sim entry as its own (different payload kind => miss).
        schedule_cache = ScheduleCache(directory)
        assert schedule_cache.get(KEY) is None
        payload = json.loads((directory / f"{KEY}.json").read_text())
        assert payload["kind"] == "repro/sim-cache-entry"
