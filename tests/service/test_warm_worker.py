"""The warm-worker fast path never changes an answer.

Responses must be byte-identical whether the per-process memo caches are cold
or warm, at any worker count and any chunk size — memoisation and slim job
payloads are invisible except in speed.
"""

import pytest

from repro.core.memo import memo_stats, reset_memos
from repro.scenario import create_scenario
from repro.service import ScheduleRequest, SchedulingService
from repro.service.service import inflate_job_entry, slim_job_entry

METHODS = ("static", "gpiocp", "ga:population_size=8,generations=4")


@pytest.fixture(autouse=True)
def cold_memos():
    reset_memos()
    yield
    reset_memos()


def make_batch():
    return [
        ScheduleRequest(
            scenario=create_scenario(name),
            spec=spec,
            system_index=index,
            request_id=f"{name}/{index}/{spec}",
        )
        for name in ("short-hyperperiod", "paper-default")
        for index in range(2)
        for spec in METHODS
    ]


def run_batch(**service_kwargs):
    with SchedulingService(cache=None, **service_kwargs) as service:
        return [r.result_dict() for r in service.submit_batch(make_batch())]


class TestByteIdentity:
    def test_cold_vs_warm_serial(self):
        cold = run_batch()
        assert memo_stats()["materialize"]["entries"] > 0  # memos are warm now
        warm = run_batch()
        assert warm == cold

    @pytest.mark.parametrize("n_workers", [1, 4])
    @pytest.mark.parametrize("chunksize", [1, 4, 32])
    def test_any_worker_count_and_chunk_size(self, n_workers, chunksize):
        reference = run_batch()
        reset_memos()
        assert run_batch(n_workers=n_workers, chunksize=chunksize) == reference

    def test_warm_pool_rerun_is_identical(self):
        # One pool, two identical batches: the second run hits every
        # worker-side memo and must still answer byte-identically.
        with SchedulingService(cache=None, n_workers=2, chunksize=2) as service:
            first = [r.result_dict() for r in service.submit_batch(make_batch())]
            second = [r.result_dict() for r in service.submit_batch(make_batch())]
        assert second == first


class TestSlimPayloads:
    def test_entries_round_trip(self):
        scenarios = {}
        for request in make_batch():
            entry = slim_job_entry(request, request.content_key(), "t-1", scenarios)
            rebuilt, trace_id = inflate_job_entry(entry, scenarios)
            assert trace_id == "t-1"
            assert rebuilt == request
            assert rebuilt.content_key() == request.content_key()

    def test_each_scenario_ships_once(self):
        batch = make_batch()
        scenarios = {}
        for request in batch:
            slim_job_entry(request, request.content_key(), "t", scenarios)
        distinct = {request.scenario.content_key() for request in batch}
        assert set(scenarios) == distinct
        assert len(scenarios) == 2

    def test_explicit_task_sets_ship_whole(self):
        scenario = create_scenario("short-hyperperiod")
        probe = ScheduleRequest(scenario=scenario, spec="static")
        request = ScheduleRequest(
            task_set=probe.effective_task_set(), spec="static"
        )
        scenarios = {}
        entry = slim_job_entry(request, request.content_key(), "t", scenarios)
        assert entry[0] == "request"
        assert scenarios == {}
        rebuilt, _ = inflate_job_entry(entry, scenarios)
        assert rebuilt == request


class TestMemoHygiene:
    def test_memos_fill_but_responses_stay_pure(self):
        requests = make_batch()
        serialized_before = [request.to_json() for request in requests]
        with SchedulingService(cache=None) as service:
            responses = service.submit_batch(requests)
        # Execution warmed the memos ...
        stats = memo_stats()
        assert stats["materialize"]["misses"] > 0
        assert stats["heuristic"]["misses"] > 0
        # ... but neither requests nor responses carry a trace of it.
        assert [request.to_json() for request in requests] == serialized_before
        for response in responses:
            assert "memo" not in response.to_json()

    def test_eviction_keeps_the_memo_bounded(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMO_CAP_MATERIALIZE", "2")
        run_batch()
        stats = memo_stats()["materialize"]
        assert stats["entries"] <= 2
        assert stats["evictions"] > 0
