"""Tests of SchedulingService batches: exactness, worker invariance, caching."""

import pytest

from repro.scheduling import create_scheduler
from repro.service import (
    CACHE_DISABLED,
    CACHE_HIT,
    CACHE_MISS,
    ScheduleCache,
    ScheduleRequest,
    SchedulerSpec,
    SchedulingService,
    effective_spec,
    execute_request,
)
from repro.service.cache import CACHE_ENTRY_KIND
from repro.taskgen import GeneratorConfig, SystemGenerator

#: Reference methods: every paper scheduler plus the analysis-only adapter.
METHOD_SPECS = (
    "fps-offline",
    "gpiocp",
    "static",
    "fps-online",
    "ga:population_size=8,generations=4,seed=9",
)


def make_taskset(index: int, utilisation: float = 0.4):
    return SystemGenerator(GeneratorConfig(), rng=index).generate(utilisation)


@pytest.fixture(scope="module")
def batch():
    return [
        ScheduleRequest(
            task_set=make_taskset(index),
            spec=SchedulerSpec.parse(spec),
            request_id=f"{index}/{spec}",
        )
        for index in range(3)
        for spec in METHOD_SPECS
    ]


class TestExactness:
    """Acceptance: responses bit-identical to direct schedule_taskset calls."""

    def test_batch_matches_direct_scheduler_calls(self, batch):
        with SchedulingService() as service:
            responses = service.submit_batch(batch)
        for request, response in zip(batch, responses):
            scheduler = effective_spec(request).resolve()
            direct = scheduler.schedule_taskset(request.task_set)
            assert response.request_id == request.request_id
            assert response.schedulable == direct.schedulable
            if getattr(scheduler, "produces_schedule", True):
                assert response.psi == direct.psi
                assert response.upsilon == direct.upsilon
            else:
                assert response.psi == 0.0
                assert response.upsilon == 0.0
                assert response.per_device == {}

    def test_batch_is_bit_identical_at_any_worker_count(self, batch):
        results = {}
        for n_workers in (1, 2, 4):
            with SchedulingService(n_workers=n_workers, cache=None) as service:
                results[n_workers] = [
                    response.result_dict() for response in service.submit_batch(batch)
                ]
        assert results[1] == results[2] == results[4]

    def test_execute_request_is_pure(self, batch):
        for request in batch[:3]:
            assert (
                execute_request(request).result_dict()
                == execute_request(request).result_dict()
            )


class TestDerivedSeeds:
    def test_unseeded_ga_requests_are_deterministic(self):
        request = ScheduleRequest(
            task_set=make_taskset(1),
            spec=SchedulerSpec.parse("ga:population_size=8,generations=4"),
        )
        assert effective_spec(request).options_dict()["seed"] is not None
        assert (
            execute_request(request).result_dict()
            == execute_request(request).result_dict()
        )

    def test_pinned_seed_is_respected(self):
        request = ScheduleRequest(
            task_set=make_taskset(1),
            spec=SchedulerSpec.parse("ga:population_size=8,generations=4,seed=3"),
        )
        assert effective_spec(request) is request.spec

    def test_response_spec_records_the_derived_seed(self):
        request = ScheduleRequest(
            task_set=make_taskset(1),
            spec=SchedulerSpec.parse("ga:population_size=8,generations=4"),
        )
        response = execute_request(request)
        replay_spec = SchedulerSpec.parse(response.spec)
        assert isinstance(replay_spec.options_dict()["seed"], int)
        # Replaying the recorded spec reproduces the response exactly.
        replay = execute_request(
            ScheduleRequest(task_set=request.task_set, spec=replay_spec)
        )
        assert replay.result_dict()["per_device"] == response.result_dict()["per_device"]


class TestCacheProvenance:
    """Acceptance: resubmitting a batch recomputes nothing, flagged as hits."""

    def test_cold_then_warm_batch(self, batch, tmp_path):
        with SchedulingService(cache_dir=str(tmp_path)) as service:
            cold = service.submit_batch(batch)
            assert service.computed == len(batch)
            assert all(response.cache == CACHE_MISS for response in cold)

            warm = service.submit_batch(batch)
            assert service.computed == len(batch), "warm batch recomputed something"
            assert all(response.cache == CACHE_HIT for response in warm)
            assert [r.result_dict() for r in warm] == [r.result_dict() for r in cold]

    def test_cache_persists_across_service_instances(self, batch, tmp_path):
        with SchedulingService(cache_dir=str(tmp_path)) as service:
            cold = service.submit_batch(batch)
        with SchedulingService(cache_dir=str(tmp_path)) as service:
            warm = service.submit_batch(batch)
            assert service.computed == 0
        assert all(response.cache == CACHE_HIT for response in warm)
        assert [r.result_dict() for r in warm] == [r.result_dict() for r in cold]

    def test_duplicate_requests_within_a_batch_compute_once(self):
        request = ScheduleRequest(task_set=make_taskset(0), spec="static")
        twin = ScheduleRequest(task_set=make_taskset(0), spec="static", request_id="twin")
        with SchedulingService() as service:
            first, second = service.submit_batch([request, twin])
            assert service.computed == 1
        assert first.cache == CACHE_MISS
        assert second.cache == CACHE_HIT
        assert second.request_id == "twin"
        assert first.result_dict() == second.result_dict()
        assert first.cache_key == second.cache_key

    def test_disabled_cache_recomputes_and_says_so(self):
        request = ScheduleRequest(task_set=make_taskset(0), spec="static")
        with SchedulingService(cache=None) as service:
            first = service.submit(request)
            second = service.submit(request)
            assert service.computed == 2
        assert first.cache == CACHE_DISABLED
        assert second.cache == CACHE_DISABLED

    def test_cache_key_matches_request_content_key(self):
        request = ScheduleRequest(task_set=make_taskset(0), spec="static")
        with SchedulingService() as service:
            response = service.submit(request)
        assert response.cache_key == request.content_key()

    def test_explicit_cache_and_cache_dir_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            SchedulingService(cache_dir=str(tmp_path), cache=ScheduleCache())

    def test_invalid_worker_count_is_rejected(self):
        with pytest.raises(ValueError, match="n_workers"):
            SchedulingService(n_workers=0)


class TestScheduleCache:
    def test_on_disk_entries_are_versioned_and_lazily_loaded(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        cache.put("deadbeef", {"spec": "static", "schedulable": True})
        import json

        (path,) = tmp_path.glob("*.json")
        payload = json.loads(path.read_text())
        assert payload["kind"] == CACHE_ENTRY_KIND

        fresh = ScheduleCache(tmp_path)
        assert fresh.get("deadbeef") == {"spec": "static", "schedulable": True}
        assert fresh.hits == 1

    def test_corrupt_entries_are_misses_and_get_repaired(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        (tmp_path / "cafecafe.json").write_text("{not json")
        assert cache.get("cafecafe") is None
        assert cache.misses == 1
        # Recomputing the entry must overwrite the corrupt file, not skip it.
        cache.put("cafecafe", {"spec": "static"})
        assert ScheduleCache(tmp_path).get("cafecafe") == {"spec": "static"}
        assert not list(tmp_path.glob("*.tmp")), "temp files must not leak"

    def test_newer_entries_raise_instead_of_being_clobbered(self, tmp_path):
        import json

        cache = ScheduleCache(tmp_path)
        cache.put("feedface", {"spec": "static"})
        (path,) = tmp_path.glob("*.json")
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))

        from repro.core.serialization import PayloadVersionError

        with pytest.raises(PayloadVersionError):
            ScheduleCache(tmp_path).get("feedface")

    def test_parallel_service_matches_direct_calls(self):
        requests = [
            ScheduleRequest(task_set=make_taskset(index), spec="static")
            for index in range(4)
        ]
        with SchedulingService(n_workers=2, cache=None) as service:
            responses = service.submit_batch(requests)
        for request, response in zip(requests, responses):
            direct = create_scheduler("static").schedule_taskset(request.task_set)
            assert response.schedulable == direct.schedulable
            assert response.psi == direct.psi
            assert response.upsilon == direct.upsilon
