"""End-to-end tests of the ``python -m repro.service`` JSONL batch CLI."""

import json

import pytest

from repro.core.serialization import PayloadVersionError
from repro.service import (
    RESPONSE_KIND,
    ScheduleRequest,
    ScheduleResponse,
    SchedulerSpec,
    execute_request,
)
from repro.service.__main__ import build_parser, main
from repro.taskgen import GeneratorConfig, SystemGenerator

SPECS = ("static", "gpiocp", "ga:population_size=8,generations=4,seed=2")


@pytest.fixture()
def requests_file(tmp_path):
    requests = [
        ScheduleRequest(
            task_set=SystemGenerator(GeneratorConfig(), rng=index).generate(0.4),
            spec=SchedulerSpec.parse(spec),
            request_id=f"{index}/{spec}",
        )
        for index in range(2)
        for spec in SPECS
    ]
    path = tmp_path / "requests.jsonl"
    path.write_text("".join(request.to_json() + "\n" for request in requests))
    return path, requests


def read_responses(path):
    return [ScheduleResponse.from_json(line) for line in path.read_text().splitlines()]


class TestBatchCLI:
    """Acceptance: request JSONL round-trips to valid, versioned response JSONL."""

    def test_round_trip_produces_versioned_responses_in_order(
        self, requests_file, tmp_path
    ):
        requests_path, requests = requests_file
        out_path = tmp_path / "responses.jsonl"
        assert main([str(requests_path), "-o", str(out_path)]) == 0

        raw_lines = out_path.read_text().splitlines()
        assert len(raw_lines) == len(requests)
        for line in raw_lines:
            payload = json.loads(line)
            assert payload["kind"] == RESPONSE_KIND
            assert payload["version"] == 1

        responses = read_responses(out_path)
        assert [r.request_id for r in responses] == [r.request_id for r in requests]
        for request, response in zip(requests, responses):
            assert response.result_dict() == execute_request(request).result_dict()

    def test_warm_cache_run_recomputes_nothing(self, requests_file, tmp_path, capsys):
        requests_path, requests = requests_file
        cache_dir = tmp_path / "cache"
        out_cold = tmp_path / "cold.jsonl"
        out_warm = tmp_path / "warm.jsonl"

        main([str(requests_path), "--cache-dir", str(cache_dir), "-o", str(out_cold)])
        cold_stderr = capsys.readouterr().err
        assert f"{len(requests)} computed" in cold_stderr

        main([str(requests_path), "--cache-dir", str(cache_dir), "-o", str(out_warm)])
        warm_stderr = capsys.readouterr().err
        assert "0 computed" in warm_stderr
        assert f"{len(requests)} served from cache" in warm_stderr

        cold = read_responses(out_cold)
        warm = read_responses(out_warm)
        assert all(response.cache == "miss" for response in cold)
        assert all(response.cache == "hit" for response in warm)
        assert [r.result_dict() for r in warm] == [r.result_dict() for r in cold]

    def test_workers_flag_is_result_invariant(self, requests_file, tmp_path):
        requests_path, _ = requests_file
        out_serial = tmp_path / "serial.jsonl"
        out_parallel = tmp_path / "parallel.jsonl"
        main([str(requests_path), "-o", str(out_serial)])
        main([str(requests_path), "--workers", "3", "-o", str(out_parallel)])
        assert [r.result_dict() for r in read_responses(out_serial)] == [
            r.result_dict() for r in read_responses(out_parallel)
        ]

    def test_stdout_mode_and_blank_lines(self, requests_file, tmp_path, capsys):
        requests_path, requests = requests_file
        # Blank lines between payloads must be tolerated.
        padded = tmp_path / "padded.jsonl"
        padded.write_text(requests_path.read_text().replace("\n", "\n\n"))
        assert main([str(padded)]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) == len(requests)

    def test_invalid_request_line_fails_with_location(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "wrong"}\n')
        with pytest.raises(SystemExit, match="bad.jsonl:1"):
            main([str(bad)])

    def test_newer_request_version_fails_loudly(self, requests_file, tmp_path):
        requests_path, requests = requests_file
        payload = json.loads(requests_path.read_text().splitlines()[0])
        payload["version"] = 99
        newer = tmp_path / "newer.jsonl"
        newer.write_text(json.dumps(payload) + "\n")
        with pytest.raises((SystemExit, PayloadVersionError)):
            main([str(newer)])

    def test_parser_rejects_bad_worker_count(self, requests_file):
        requests_path, _ = requests_file
        with pytest.raises(SystemExit):
            main([str(requests_path), "--workers", "0"])

    def test_parser_metadata(self):
        parser = build_parser()
        assert "repro.service" in parser.prog
