"""Scenario-backed schedule requests: round-trip, caching and execution."""

import pytest

from repro.core.serialization import taskset_to_dict
from repro.scenario import FaultSpec, Scenario, create_scenario, materialize
from repro.service import (
    CACHE_HIT,
    CACHE_MISS,
    ScheduleRequest,
    SchedulerSpec,
    SchedulingService,
    execute_request,
)


@pytest.fixture(scope="module")
def scenario():
    return create_scenario("short-hyperperiod")


class TestConstruction:
    def test_scenario_refs_are_coerced(self):
        request = ScheduleRequest(scenario="paper-default", spec="static")
        assert isinstance(request.scenario, Scenario)
        assert request.scenario.name == "paper-default"

    def test_exactly_one_workload_source_is_required(self, scenario):
        task_set = materialize(scenario, 0).task_set
        with pytest.raises(ValueError, match="exactly one"):
            ScheduleRequest(spec="static")
        with pytest.raises(ValueError, match="exactly one"):
            ScheduleRequest(task_set=task_set, scenario=scenario, spec="static")

    def test_spec_is_required(self, scenario):
        with pytest.raises(ValueError, match="spec"):
            ScheduleRequest(scenario=scenario)

    def test_system_index_requires_a_scenario(self, scenario):
        task_set = materialize(scenario, 0).task_set
        with pytest.raises(ValueError, match="system_index"):
            ScheduleRequest(task_set=task_set, spec="static", system_index=1)
        with pytest.raises(ValueError, match="system_index"):
            ScheduleRequest(scenario=scenario, spec="static", system_index=-1)

    def test_effective_task_set_matches_materialize(self, scenario):
        request = ScheduleRequest(scenario=scenario, spec="static", system_index=2)
        expected = materialize(scenario, 2).task_set
        assert taskset_to_dict(request.effective_task_set()) == taskset_to_dict(expected)


class TestSerialisation:
    def test_scenario_requests_round_trip_as_version_2(self, scenario):
        request = ScheduleRequest(
            scenario=scenario, spec="static", system_index=3, request_id="r1"
        )
        payload = request.to_dict()
        assert payload["version"] == 2
        recovered = ScheduleRequest.from_json(request.to_json())
        assert recovered.scenario == scenario
        assert recovered.system_index == 3
        assert recovered.request_id == "r1"
        assert recovered.content_key() == request.content_key()

    def test_plain_requests_still_serialise_as_version_1(self, scenario):
        task_set = materialize(scenario, 0).task_set
        request = ScheduleRequest(task_set=task_set, spec="static")
        assert request.to_dict()["version"] == 1


class TestContentKey:
    def test_any_scenario_field_change_changes_the_key(self, scenario):
        base = ScheduleRequest(scenario=scenario, spec="static")
        variants = [
            ScheduleRequest(scenario=scenario, spec="static", system_index=1),
            ScheduleRequest(scenario=scenario, spec="gpiocp"),
            ScheduleRequest(scenario=scenario.with_utilisation(0.41), spec="static"),
            ScheduleRequest(scenario=scenario.with_platform(flit_delay=3), spec="static"),
            ScheduleRequest(
                scenario=scenario.with_faults(
                    [FaultSpec(kind="missing-request", task_name="tau0")]
                ),
                spec="static",
            ),
            ScheduleRequest(
                scenario=Scenario(name="renamed", workload=scenario.workload),
                spec="static",
            ),
        ]
        keys = {base.content_key()} | {v.content_key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_request_id_does_not_enter_the_key(self, scenario):
        a = ScheduleRequest(scenario=scenario, spec="static", request_id="a")
        b = ScheduleRequest(scenario=scenario, spec="static", request_id="b")
        assert a.content_key() == b.content_key()


class TestExecution:
    def test_execute_request_equals_the_explicit_task_set_path(self, scenario):
        declarative = execute_request(ScheduleRequest(scenario=scenario, spec="static"))
        explicit = execute_request(
            ScheduleRequest(task_set=materialize(scenario, 0).task_set, spec="static")
        )
        assert declarative.result_dict() == explicit.result_dict()

    def test_cache_hits_only_for_the_identical_scenario(self, scenario, tmp_path):
        """A cached scenario schedule is a miss after any scenario field change."""
        spec = SchedulerSpec.parse("static")
        with SchedulingService(cache_dir=str(tmp_path)) as service:
            first = service.submit(ScheduleRequest(scenario=scenario, spec=spec))
            again = service.submit(ScheduleRequest(scenario=scenario, spec=spec))
            changed = service.submit(
                ScheduleRequest(scenario=scenario.with_platform(flit_delay=9), spec=spec)
            )
        assert first.cache == CACHE_MISS
        assert again.cache == CACHE_HIT
        assert changed.cache == CACHE_MISS
        assert changed.cache_key != first.cache_key

    def test_ga_seed_derivation_covers_scenario_requests(self, scenario):
        """The service pins a deterministic GA seed from the request content."""
        request = ScheduleRequest(
            scenario=scenario, spec="ga:population_size=8,generations=3"
        )
        a = execute_request(request)
        b = execute_request(request)
        assert a.result_dict() == b.result_dict()
        assert "seed=" in a.spec
