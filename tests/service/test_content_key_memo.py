"""Content keys are memoised on frozen envelopes — computed once, never stale.

The memo must be invisible: repeat calls return the identical string without
re-canonicalising (counted by monkeypatching the canonical-JSON encoder), and
nothing about serialised envelopes changes whether or not the key was ever
computed.
"""

import pickle

import pytest

import repro.core.serialization as serialization
from repro.campaign import CampaignSpec
from repro.runtime import SimulationRequest
from repro.scenario import create_scenario
from repro.service import ScheduleRequest


@pytest.fixture()
def count_canonical_json(monkeypatch):
    """Count invocations of the canonical-JSON encoder behind content_hash."""
    calls = []
    original = serialization.canonical_json

    def counting(obj):
        calls.append(obj)
        return original(obj)

    monkeypatch.setattr(serialization, "canonical_json", counting)
    return calls


def envelopes():
    scenario = create_scenario("short-hyperperiod")
    return [
        scenario,
        ScheduleRequest(scenario=scenario, spec="static", system_index=1),
        SimulationRequest(scenario=scenario, method="static", system_index=1),
        CampaignSpec(
            name="memo",
            scenarios=("short-hyperperiod",),
            methods=("static",),
            n_systems=1,
            utilisations=(0.4,),
        ),
    ]


@pytest.mark.parametrize(
    "envelope", envelopes(), ids=lambda e: type(e).__name__
)
class TestContentKeyMemo:
    def test_repeat_calls_skip_rehashing(self, envelope, count_canonical_json):
        first = envelope.content_key()
        assert count_canonical_json  # the first call canonicalises
        count_canonical_json.clear()
        assert envelope.content_key() == first
        assert count_canonical_json == []  # the second call does not

    def test_memo_matches_a_fresh_instance(self, envelope):
        envelope.content_key()
        fresh = type(envelope).from_json(envelope.to_json())
        assert fresh.content_key() == envelope.content_key()

    def test_memo_never_enters_the_envelope(self, envelope):
        before = envelope.to_json()
        envelope.content_key()
        assert envelope.to_json() == before

    def test_pickle_round_trip_preserves_the_key(self, envelope):
        envelope.content_key()
        clone = pickle.loads(pickle.dumps(envelope))
        assert clone.content_key() == envelope.content_key()
        assert clone == envelope


class TestSlimPickles:
    def test_schedule_request_pickle_drops_materialized_task_set(self):
        request = ScheduleRequest(
            scenario=create_scenario("short-hyperperiod"), spec="static"
        )
        request.effective_task_set()  # populate the lazy materialisation
        assert "_materialized_task_set" in request.__dict__
        clone = pickle.loads(pickle.dumps(request))
        assert "_materialized_task_set" not in clone.__dict__
        assert clone == request

    def test_cached_content_key_rides_in_pickles(self, count_canonical_json):
        request = ScheduleRequest(
            scenario=create_scenario("short-hyperperiod"), spec="static"
        )
        key = request.content_key()
        clone = pickle.loads(pickle.dumps(request))
        count_canonical_json.clear()
        assert clone.content_key() == key
        assert count_canonical_json == []  # the worker never re-hashes
