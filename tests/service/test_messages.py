"""Round-trip and versioning tests for the request/response envelopes."""

import json
import pickle

import pytest

from repro.core.serialization import PayloadVersionError, taskset_to_dict
from repro.service import (
    CACHE_HIT,
    REQUEST_KIND,
    RESPONSE_KIND,
    ScheduleRequest,
    ScheduleResponse,
    SchedulerSpec,
    execute_request,
)
from repro.taskgen import GeneratorConfig, SystemGenerator


@pytest.fixture(scope="module")
def task_set():
    return SystemGenerator(GeneratorConfig(), rng=5).generate(0.4)


@pytest.fixture(scope="module")
def request_(task_set):
    return ScheduleRequest(
        task_set=task_set,
        spec=SchedulerSpec.parse("static"),
        horizon=None,
        request_id="req-1",
    )


class TestScheduleRequest:
    def test_spec_strings_are_coerced(self, task_set):
        request = ScheduleRequest(task_set=task_set, spec="ga:seed=1")
        assert request.spec == SchedulerSpec.parse("ga:seed=1")

    def test_invalid_horizon_is_rejected(self, task_set):
        with pytest.raises(ValueError, match="horizon"):
            ScheduleRequest(task_set=task_set, spec="static", horizon=0)

    def test_json_round_trip(self, request_):
        recovered = ScheduleRequest.from_json(request_.to_json())
        assert recovered.request_id == request_.request_id
        assert recovered.spec == request_.spec
        assert recovered.horizon == request_.horizon
        assert taskset_to_dict(recovered.task_set) == taskset_to_dict(request_.task_set)
        assert recovered.content_key() == request_.content_key()

    def test_payload_is_versioned(self, request_):
        payload = request_.to_dict()
        assert payload["kind"] == REQUEST_KIND
        assert payload["version"] == 1

    def test_newer_request_version_is_refused(self, request_):
        payload = request_.to_dict()
        payload["version"] = 99
        with pytest.raises(PayloadVersionError):
            ScheduleRequest.from_dict(payload)

    def test_content_key_ignores_request_id(self, task_set):
        a = ScheduleRequest(task_set=task_set, spec="static", request_id="a")
        b = ScheduleRequest(task_set=task_set, spec="static", request_id="b")
        assert a.content_key() == b.content_key()

    def test_content_key_depends_on_spec_and_horizon(self, task_set):
        base = ScheduleRequest(task_set=task_set, spec="static")
        other_spec = ScheduleRequest(task_set=task_set, spec="gpiocp")
        other_horizon = ScheduleRequest(
            task_set=task_set, spec="static", horizon=task_set.hyperperiod() * 2
        )
        assert base.content_key() != other_spec.content_key()
        assert base.content_key() != other_horizon.content_key()

    def test_request_is_picklable(self, request_):
        clone = pickle.loads(pickle.dumps(request_))
        assert clone.content_key() == request_.content_key()


class TestScheduleResponse:
    def test_json_round_trip_preserves_everything(self, request_):
        response = execute_request(request_)
        recovered = ScheduleResponse.from_json(response.to_json())
        assert recovered == response

    def test_payload_is_versioned(self, request_):
        payload = execute_request(request_).to_dict()
        assert payload["kind"] == RESPONSE_KIND
        assert payload["version"] == 1
        assert json.loads(json.dumps(payload)) == payload

    def test_newer_response_version_is_refused(self, request_):
        payload = execute_request(request_).to_dict()
        payload["version"] = 99
        with pytest.raises(PayloadVersionError):
            ScheduleResponse.from_dict(payload)

    def test_result_dict_excludes_provenance(self, request_):
        response = execute_request(request_)
        result = response.result_dict()
        assert "cache" not in result
        assert "elapsed_s" not in result
        rebuilt = ScheduleResponse.from_result_dict(
            result, request_id="other", cache=CACHE_HIT, cache_key="k"
        )
        assert rebuilt.result_dict() == result
        assert rebuilt.cache == CACHE_HIT

    def test_device_schedules_match_direct_scheduling(self, request_, task_set):
        response = execute_request(request_)
        direct = SchedulerSpec.parse("static").resolve().schedule_taskset(task_set)
        rebuilt = response.device_schedules(task_set)
        assert set(rebuilt) == {
            device
            for device, result in direct.per_device.items()
            if result.schedule is not None
        }
        for device, schedule in rebuilt.items():
            expected = direct.per_device[device].schedule
            assert [(e.job.name, e.start) for e in schedule.sorted_entries()] == [
                (e.job.name, e.start) for e in expected.sorted_entries()
            ]

    def test_response_is_picklable(self, request_):
        response = execute_request(request_)
        assert pickle.loads(pickle.dumps(response)) == response
