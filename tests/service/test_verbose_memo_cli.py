"""``--verbose`` reports per-worker memo-cache hit/miss counters on stderr."""

import pytest

from repro.core.memo import reset_memos
from repro.obs.metrics import MEMO_OPS_TOTAL, MetricsRegistry
from repro.runtime.__main__ import main as runtime_main
from repro.service.__main__ import format_memo_stats, main as service_main


@pytest.fixture(autouse=True)
def cold_memos():
    reset_memos()
    yield
    reset_memos()


class TestFormatMemoStats:
    def test_no_activity(self):
        assert format_memo_stats({"families": {}}) == "memo caches: (no activity)"
        assert format_memo_stats({}) == "memo caches: (no activity)"

    def test_formats_per_memo_counters_sorted(self):
        registry = MetricsRegistry()
        for op, amount in (("hit", 7), ("miss", 2)):
            registry.counter_inc(MEMO_OPS_TOTAL, amount, memo="materialize", op=op)
        registry.counter_inc(MEMO_OPS_TOTAL, 3, memo="heuristic", op="miss")
        registry.counter_inc(MEMO_OPS_TOTAL, 1, memo="heuristic", op="evict")
        line = format_memo_stats(registry.snapshot())
        assert line == (
            "memo caches: heuristic 0 hits / 3 misses / 1 evictions, "
            "materialize 7 hits / 2 misses"
        )


class TestVerboseCLI:
    def test_service_cli_prints_memo_line(self, tmp_path, capsys):
        assert (
            service_main(
                [
                    "--scenario",
                    "short-hyperperiod",
                    "--systems",
                    "2",
                    "--methods",
                    "static",
                    "-o",
                    str(tmp_path / "responses.jsonl"),
                    "-v",
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "memo caches: " in err
        assert "materialize" in err

    def test_runtime_cli_prints_memo_line(self, tmp_path, capsys):
        assert (
            runtime_main(
                [
                    "--scenario",
                    "short-hyperperiod",
                    "--systems",
                    "1",
                    "--methods",
                    "static",
                    "--execution-models",
                    "dedicated-controller",
                    "-o",
                    str(tmp_path / "responses.jsonl"),
                    "-v",
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "memo caches: " in err
