"""Unit and property tests for the SchedulerSpec grammar."""

import pytest
from hypothesis import given, strategies as st

from repro.scheduling import GAScheduler, HeuristicScheduler
from repro.service import SchedulerSpec, format_option_value, parse_option_value


class TestParse:
    def test_bare_name(self):
        spec = SchedulerSpec.parse("static")
        assert spec.name == "static"
        assert spec.options == ()
        assert str(spec) == "static"

    def test_typed_option_values(self):
        spec = SchedulerSpec.parse(
            "ga:generations=50,population_size=40,crossover_probability=0.9,"
            "seed_with_heuristic=true,seed=none,label=fast"
        )
        assert spec.options_dict() == {
            "generations": 50,
            "population_size": 40,
            "crossover_probability": 0.9,
            "seed_with_heuristic": True,
            "seed": None,
            "label": "fast",
        }

    def test_options_are_key_sorted_and_order_insensitive(self):
        a = SchedulerSpec.parse("ga:b=1,a=2")
        b = SchedulerSpec.parse("ga:a=2,b=1")
        assert a == b
        assert hash(a) == hash(b)
        assert str(a) == "ga:a=2,b=1"

    def test_whitespace_is_tolerated_around_tokens(self):
        spec = SchedulerSpec.parse(" ga : generations = 5 , seed = 7 ")
        assert spec.name == "ga"
        assert spec.options_dict() == {"generations": 5, "seed": 7}

    @pytest.mark.parametrize(
        "text",
        [
            "",
            ":",
            "ga:",
            "ga:generations",
            "ga:generations=5,generations=6",
            "ga:bad key=1",
            "bad name:x=1",
            "ga:=5",
        ],
    )
    def test_invalid_specs_are_rejected(self, text):
        with pytest.raises(ValueError):
            SchedulerSpec.parse(text)

    def test_non_string_input_raises_type_error(self):
        with pytest.raises(TypeError):
            SchedulerSpec.parse(42)

    def test_non_finite_float_literals_stay_strings(self):
        """Regression: 'nan'/'inf' must not parse to floats format() refuses."""
        spec = SchedulerSpec.parse("m:a=nan,b=inf,c=1e999")
        assert spec.options_dict() == {"a": "nan", "b": "inf", "c": "1e999"}
        assert SchedulerSpec.parse(spec.format()) == spec

    def test_coerce_accepts_both_forms(self):
        spec = SchedulerSpec.parse("static")
        assert SchedulerSpec.coerce(spec) is spec
        assert SchedulerSpec.coerce("static") == spec


class TestFormat:
    def test_unrepresentable_strings_are_rejected(self):
        for value in ("true", "none", "1", "1.5", "has space", "a,b", "x=y", ""):
            with pytest.raises(ValueError):
                format_option_value(value)

    def test_non_finite_floats_are_rejected(self):
        for value in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                format_option_value(value)

    def test_dict_form_carries_what_the_grammar_cannot(self):
        spec = SchedulerSpec("static", {"label": "has space"})
        with pytest.raises(ValueError):
            spec.format()
        assert SchedulerSpec.from_dict(spec.to_dict()) == spec


class TestDictRoundTrip:
    def test_to_from_dict(self):
        spec = SchedulerSpec.parse("ga:generations=5,seed=7")
        data = spec.to_dict()
        assert data == {"name": "ga", "options": {"generations": 5, "seed": 7}}
        assert SchedulerSpec.from_dict(data) == spec

    def test_from_dict_accepts_spec_strings(self):
        assert SchedulerSpec.from_dict("ga:seed=3") == SchedulerSpec.parse("ga:seed=3")

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown spec fields"):
            SchedulerSpec.from_dict({"name": "ga", "optoins": {}})


class TestResolve:
    def test_resolves_through_the_registry(self):
        scheduler = SchedulerSpec.parse("ga:generations=3,population_size=8,seed=1").resolve()
        assert isinstance(scheduler, GAScheduler)
        assert scheduler.config.generations == 3
        assert scheduler.config.population_size == 8
        assert scheduler.config.seed == 1

    def test_bare_spec_resolves_default_instance(self):
        assert isinstance(SchedulerSpec.parse("static").resolve(), HeuristicScheduler)

    def test_unknown_scheduler_raises_key_error(self):
        with pytest.raises(KeyError, match="no-such"):
            SchedulerSpec.parse("no-such").resolve()

    def test_rejected_option_names_the_factory(self):
        with pytest.raises(TypeError, match="GAScheduler"):
            SchedulerSpec.parse("ga:bogus=1").resolve()
        with pytest.raises(TypeError, match="HeuristicScheduler"):
            SchedulerSpec.parse("static:bogus=1").resolve()


# -- property-based round-trip -------------------------------------------------

_names = st.from_regex(r"[A-Za-z0-9_][A-Za-z0-9_-]{0,15}", fullmatch=True)
_keys = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,15}", fullmatch=True)


def _is_plain_string(text: str) -> bool:
    value = parse_option_value(text)
    return isinstance(value, str) and value == text


_string_values = st.from_regex(r"[A-Za-z][A-Za-z0-9_.-]{0,15}", fullmatch=True).filter(
    _is_plain_string
)
_values = st.one_of(
    st.booleans(),
    st.none(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False, allow_infinity=False),
    _string_values,
)
_specs = st.builds(
    SchedulerSpec,
    name=_names,
    options=st.dictionaries(_keys, _values, max_size=6),
)


@given(spec=_specs)
def test_parse_format_round_trip(spec):
    """parse(format(spec)) recovers the spec exactly — values, types and all."""
    text = spec.format()
    recovered = SchedulerSpec.parse(text)
    assert recovered == spec
    for (key_a, value_a), (key_b, value_b) in zip(recovered.options, spec.options):
        assert key_a == key_b
        assert type(value_a) is type(value_b)
    assert recovered.format() == text


@given(spec=_specs)
def test_dict_round_trip(spec):
    assert SchedulerSpec.from_dict(spec.to_dict()) == spec
