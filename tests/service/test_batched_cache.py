"""Batched cache I/O: get_many/put_many on backends, caches and the services.

One backend round trip per batch, statistics identical to the per-key calls,
and per-position hit/miss provenance untouched.
"""

import pytest

from repro.service import (
    CACHE_HIT,
    CACHE_MISS,
    ScheduleCache,
    ScheduleRequest,
    SchedulerSpec,
    SchedulingService,
)
from repro.store import DirectoryBackend, SqliteBackend
from repro.taskgen import GeneratorConfig, SystemGenerator


def payload(index):
    return {"kind": "repro/test-entry", "version": 1, "data": {"answer": index}}


@pytest.fixture(params=["directory", "sqlite"])
def backend(request, tmp_path):
    if request.param == "directory":
        with DirectoryBackend(tmp_path / "store") as instance:
            yield instance
    else:
        with SqliteBackend(tmp_path / "store.db") as instance:
            yield instance


class TestBackendBatchContract:
    def test_get_many_returns_present_entries_only(self, backend):
        backend.put("aa" * 8, payload(1))
        backend.put("bb" * 8, payload(2))
        found = backend.get_many(["aa" * 8, "bb" * 8, "cc" * 8, "aa" * 8])
        assert found == {"aa" * 8: payload(1), "bb" * 8: payload(2)}

    def test_get_many_empty(self, backend):
        assert backend.get_many([]) == {}

    def test_put_many_round_trips(self, backend):
        items = [(f"{index:016x}", payload(index)) for index in range(8)]
        backend.put_many(items)
        assert backend.get_many([key for key, _ in items]) == dict(items)
        assert len(backend) == 8

    def test_put_many_rewrite_never_tears(self, backend):
        # Real writers of one key always hold identical content-addressed
        # payloads; whichever write lands, the entry must stay complete.
        backend.put("aa" * 8, payload(1))
        backend.put_many([("aa" * 8, payload(2)), ("bb" * 8, payload(3))])
        assert backend.get("aa" * 8) in (payload(1), payload(2))
        assert backend.get("bb" * 8) == payload(3)
        assert len(backend) == 2

    def test_sqlite_put_many_is_first_write_wins(self, tmp_path):
        with SqliteBackend(tmp_path / "fww.db") as sqlite:
            sqlite.put("aa" * 8, payload(1))
            sqlite.put_many([("aa" * 8, payload(2)), ("bb" * 8, payload(3))])
            assert sqlite.get("aa" * 8) == payload(1)
            assert sqlite.get("bb" * 8) == payload(3)

    def test_put_many_empty_is_a_noop(self, backend):
        backend.put_many([])
        assert len(backend) == 0


class TestSqliteChunking:
    def test_batches_beyond_the_query_variable_limit(self, tmp_path):
        # 600 keys exceed SQLite's per-query variable budget; the backend
        # must chunk transparently in both directions.
        with SqliteBackend(tmp_path / "store.db") as backend:
            items = [(f"{index:016x}", payload(index)) for index in range(600)]
            backend.put_many(items)
            assert len(backend) == 600
            found = backend.get_many([key for key, _ in items] + ["ff" * 8])
            assert found == dict(items)


class CountingBackend(DirectoryBackend):
    """A directory backend that counts read/write calls."""

    def __init__(self, root):
        super().__init__(root)
        self.get_calls = 0
        self.get_many_calls = 0
        self.put_calls = 0
        self.put_many_calls = 0

    def get(self, key):
        self.get_calls += 1
        return super().get(key)

    def get_many(self, keys):
        # Bypass the counted ``get`` so ``get_calls`` counts only direct
        # per-key reads — the calls batching is supposed to eliminate.
        self.get_many_calls += 1
        found = {}
        for key in dict.fromkeys(keys):
            payload = DirectoryBackend.get(self, key)
            if payload is not None:
                found[key] = payload
        return found

    def put(self, key, payload):
        self.put_calls += 1
        super().put(key, payload)

    def put_many(self, items):
        # Same idea for writes: keep ``put_calls`` for direct per-key writes.
        self.put_many_calls += 1
        for key, payload in items:
            DirectoryBackend.put(self, key, payload)


def result(index):
    return {"answer": index}


class TestScheduleCacheBatchOps:
    def test_get_many_counts_per_occurrence(self, tmp_path):
        cache = ScheduleCache(backend=CountingBackend(tmp_path / "c"))
        cache.put("aa" * 8, result(1))
        found = cache.get_many(["aa" * 8, "bb" * 8, "aa" * 8])
        assert found == {"aa" * 8: result(1)}
        assert cache.hits == 2 and cache.misses == 1

    def test_peek_many_is_statistics_free_and_batched(self, tmp_path):
        backend = CountingBackend(tmp_path / "c")
        cache = ScheduleCache(backend=backend)
        cache.put("aa" * 8, result(1))
        fresh = ScheduleCache(backend=backend)  # empty memory, warm backend
        assert fresh.peek_many(["aa" * 8, "bb" * 8]) == {"aa" * 8: result(1)}
        assert fresh.hits == 0 and fresh.misses == 0
        assert backend.get_many_calls == 1 and backend.get_calls == 0

    def test_put_many_stores_fresh_entries_in_one_write(self, tmp_path):
        backend = CountingBackend(tmp_path / "c")
        cache = ScheduleCache(backend=backend)
        cache.put("aa" * 8, result(1))
        cache.put_many([("aa" * 8, result(2)), ("bb" * 8, result(3))])
        assert cache.stores == 2  # one per key actually stored
        assert cache.peek("aa" * 8) == result(1)  # first write won
        assert backend.put_many_calls == 1
        # The persisted payloads round trip through a fresh cache.
        fresh = ScheduleCache(backend=backend)
        assert fresh.peek_many(["aa" * 8, "bb" * 8]) == {
            "aa" * 8: result(1),
            "bb" * 8: result(3),
        }


class TestBatchLookupInService:
    def make_requests(self):
        return [
            ScheduleRequest(
                task_set=SystemGenerator(GeneratorConfig(), rng=index).generate(0.4),
                spec=SchedulerSpec.parse("static"),
                request_id=f"{index}/{copy}",
            )
            for index in range(3)
            for copy in range(2)  # every request appears twice
        ]

    def test_one_backend_round_trip_per_batch(self, tmp_path):
        backend = CountingBackend(tmp_path / "c")
        requests = self.make_requests()
        with SchedulingService(cache=ScheduleCache(backend=backend)) as service:
            responses = service.submit_batch(requests)
        # One batched read and one batched write, however many requests.
        assert backend.get_many_calls == 1 and backend.get_calls == 0
        assert backend.put_many_calls == 1 and backend.put_calls == 0
        # Per-position provenance is untouched: first occurrence of each key
        # is the miss, its duplicate an in-batch hit.
        assert [response.cache for response in responses] == [
            CACHE_MISS,
            CACHE_HIT,
        ] * 3

    def test_second_batch_hits_without_touching_puts(self, tmp_path):
        backend = CountingBackend(tmp_path / "c")
        requests = self.make_requests()
        with SchedulingService(cache=ScheduleCache(backend=backend)) as service:
            service.submit_batch(requests)
            responses = service.submit_batch(requests)
        assert all(response.cache == CACHE_HIT for response in responses)
        assert backend.put_many_calls == 1  # nothing new to store
