"""Unit tests for the mesh topology and XY routing."""

import pytest

from repro.noc import MeshTopology, xy_route


class TestMeshTopology:
    def test_node_count_and_iteration(self):
        mesh = MeshTopology(4, 3)
        assert mesh.n_nodes == 12
        assert len(list(mesh.nodes())) == 12

    def test_neighbours_corner_edge_centre(self):
        mesh = MeshTopology(3, 3)
        assert len(mesh.neighbours((0, 0))) == 2
        assert len(mesh.neighbours((1, 0))) == 3
        assert len(mesh.neighbours((1, 1))) == 4

    def test_contains(self):
        mesh = MeshTopology(2, 2)
        assert mesh.contains((1, 1))
        assert not mesh.contains((2, 0))
        assert not mesh.contains((-1, 0))

    def test_manhattan_distance(self):
        mesh = MeshTopology(4, 4)
        assert mesh.manhattan_distance((0, 0), (3, 2)) == 5
        assert mesh.manhattan_distance((2, 2), (2, 2)) == 0

    def test_node_index_row_major(self):
        mesh = MeshTopology(4, 4)
        assert mesh.node_index((0, 0)) == 0
        assert mesh.node_index((3, 0)) == 3
        assert mesh.node_index((0, 1)) == 4

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            MeshTopology(0, 3)

    def test_outside_node_rejected(self):
        mesh = MeshTopology(2, 2)
        with pytest.raises(ValueError):
            mesh.neighbours((5, 5))


class TestXYRouting:
    def test_route_goes_x_first_then_y(self):
        mesh = MeshTopology(4, 4)
        route = xy_route((0, 0), (2, 2), mesh)
        assert route == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]

    def test_route_length_is_manhattan_distance_plus_one(self):
        mesh = MeshTopology(5, 5)
        route = xy_route((4, 1), (0, 3), mesh)
        assert len(route) == mesh.manhattan_distance((4, 1), (0, 3)) + 1

    def test_route_to_self(self):
        mesh = MeshTopology(3, 3)
        assert xy_route((1, 1), (1, 1), mesh) == [(1, 1)]

    def test_route_rejects_outside_nodes(self):
        mesh = MeshTopology(2, 2)
        with pytest.raises(ValueError):
            xy_route((0, 0), (5, 5), mesh)
