"""Unit tests for routers, the NoC network and the latency model."""

import pytest

from repro.noc import (
    CommunicationLatencyModel,
    MeshTopology,
    NoCNetwork,
    Packet,
    Router,
    worst_case_latency,
)


class TestRouter:
    def test_service_time(self):
        router = Router(node=(0, 0), routing_delay=2, flit_delay=1)
        assert router.service_time(Packet((0, 0), (1, 0), size_flits=4)) == 6

    def test_fifo_arbitration_serialises_conflicting_packets(self):
        router = Router(node=(0, 0), routing_delay=2, flit_delay=1)
        first = Packet((0, 0), (1, 0), size_flits=4)
        second = Packet((0, 0), (1, 0), size_flits=4)
        _, dep1 = router.forward(first, (1, 0), arrival_time=0)
        start2, dep2 = router.forward(second, (1, 0), arrival_time=1)
        assert dep1 == 6
        assert start2 == 6
        assert dep2 == 12
        assert router.total_blocking == 5

    def test_different_links_do_not_block_each_other(self):
        router = Router(node=(1, 1))
        a = Packet((1, 1), (2, 1), size_flits=4)
        b = Packet((1, 1), (1, 2), size_flits=4)
        router.forward(a, (2, 1), 0)
        start_b, _ = router.forward(b, (1, 2), 0)
        assert start_b == 0


class TestNoCNetwork:
    def test_latency_of_uncontended_packet(self):
        mesh = MeshTopology(4, 4)
        network = NoCNetwork(mesh, routing_delay=2, flit_delay=1, injection_delay=1, ejection_delay=1)
        packet = Packet((0, 0), (3, 3), size_flits=4)
        delivered = network.send(packet, time=100)
        hops = mesh.manhattan_distance((0, 0), (3, 3))
        expected = 1 + hops * (2 + 4) + 1
        assert delivered == 100 + expected
        assert packet.latency == expected

    def test_latency_matches_analytical_model_without_contention(self):
        mesh = MeshTopology(4, 4)
        network = NoCNetwork(mesh)
        packet = Packet((0, 0), (2, 1), size_flits=4)
        network.send(packet, 0)
        model = CommunicationLatencyModel()
        assert packet.latency == model.no_contention_latency(hops=3, size_flits=4)

    def test_contention_increases_latency(self):
        mesh = MeshTopology(4, 4)
        network = NoCNetwork(mesh)
        first = Packet((0, 0), (3, 0), size_flits=8)
        second = Packet((0, 0), (3, 0), size_flits=4)
        network.send(first, 0)
        network.send(second, 0)
        solo = NoCNetwork(mesh)
        alone = Packet((0, 0), (3, 0), size_flits=4)
        solo.send(alone, 0)
        assert second.latency > alone.latency
        assert network.total_blocking() > 0

    def test_statistics(self):
        mesh = MeshTopology(3, 3)
        network = NoCNetwork(mesh)
        network.send(Packet((0, 0), (2, 2), size_flits=4, kind="io-request"), 0)
        network.send(Packet((1, 0), (2, 2), size_flits=4, kind="background"), 0)
        assert len(network.latencies()) == 2
        assert len(network.latencies(kind="io-request")) == 1
        assert network.mean_latency() > 0
        assert network.max_latency() >= network.mean_latency()


class TestWorstCaseLatency:
    def test_bound_dominates_observed_latency(self):
        mesh = MeshTopology(4, 4)
        network = NoCNetwork(mesh)
        interfering = Packet((1, 0), (3, 0), size_flits=8)
        network.send(interfering, 0)
        request = Packet((0, 0), (3, 0), size_flits=4)
        network.send(request, 0)
        bound = worst_case_latency(
            (0, 0), (3, 0), mesh, size_flits=4, interfering_sizes=[8]
        )
        assert request.latency <= bound

    def test_packet_validation(self):
        with pytest.raises(ValueError):
            Packet((0, 0), (1, 1), size_flits=0)
