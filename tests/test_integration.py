"""End-to-end integration tests: generator -> scheduler -> controller -> metrics."""

import pytest

from repro import (
    FPSOfflineScheduler,
    GAConfig,
    GAScheduler,
    GPIOCPScheduler,
    HeuristicScheduler,
)
from repro.analysis import FPSOnlineTest
from repro.core import validate_schedule
from repro.hardware import IOController
from repro.sim import Simulator
from repro.taskgen import GeneratorConfig, SystemGenerator


@pytest.fixture(scope="module")
def medium_system():
    return SystemGenerator(GeneratorConfig(n_devices=2), rng=2020).generate(0.5)


class TestFullPipeline:
    def test_generate_schedule_execute_measure(self, medium_system):
        """The paper's full flow: pre-load, schedule offline, execute at run time."""
        offline = HeuristicScheduler().schedule_taskset(medium_system)
        assert offline.schedulable

        controller = IOController()
        controller.preload_taskset(medium_system)
        controller.load_system_schedule(
            {d: r.schedule for d, r in offline.per_device.items()}
        )
        runtime = controller.run(Simulator())

        assert runtime.matches_offline
        assert runtime.psi == pytest.approx(offline.psi)
        assert runtime.skipped_jobs == 0
        assert runtime.executed_jobs == len(medium_system.jobs())

    def test_all_schedulers_agree_on_job_coverage(self, medium_system):
        jobs_expected = {job.key for job in medium_system.jobs()}
        for scheduler in (FPSOfflineScheduler(), GPIOCPScheduler(), HeuristicScheduler()):
            result = scheduler.schedule_taskset(medium_system)
            scheduled = {
                entry.job.key
                for device_result in result.per_device.values()
                for entry in device_result.schedule.entries
            }
            assert scheduled == jobs_expected

    def test_method_ordering_on_one_system(self, medium_system):
        """The qualitative relationships of Figures 5-7 on a single system."""
        fps = FPSOfflineScheduler().schedule_taskset(medium_system)
        gpiocp = GPIOCPScheduler().schedule_taskset(medium_system)
        static = HeuristicScheduler().schedule_taskset(medium_system)
        ga = GAScheduler(GAConfig(population_size=20, generations=10, seed=1)).schedule_taskset(
            medium_system
        )

        assert fps.psi == 0.0
        assert static.psi >= gpiocp.psi - 1e-9
        assert ga.upsilon >= static.upsilon - 1e-9
        assert static.upsilon >= fps.upsilon
        # The analytical FPS-online test accepts only what the offline FPS can do.
        if FPSOnlineTest().is_schedulable(medium_system):
            assert fps.schedulable

    def test_every_schedulable_result_validates(self, medium_system):
        schedulers = [
            FPSOfflineScheduler(),
            GPIOCPScheduler(),
            HeuristicScheduler(),
            GAScheduler(GAConfig(population_size=16, generations=8, seed=2)),
        ]
        for scheduler in schedulers:
            result = scheduler.schedule_taskset(medium_system)
            if not result.schedulable:
                continue
            for device, partition in medium_system.partition().items():
                violations = validate_schedule(
                    result.per_device[device].schedule,
                    partition.jobs(),
                    raise_on_error=False,
                )
                assert violations == [], f"{scheduler.name} produced {violations}"
