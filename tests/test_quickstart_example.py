"""Smoke test: the quickstart example must run end to end via the service."""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
QUICKSTART = REPO_ROOT / "examples" / "quickstart.py"


def test_quickstart_runs_and_reports_every_method():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, str(QUICKSTART)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
        check=False,
    )
    assert completed.returncode == 0, completed.stderr
    for method in ("fps-offline", "gpiocp", "static", "ga"):
        assert method in completed.stdout
    assert "Explicit schedule" in completed.stdout
    assert "ignition" in completed.stdout
