"""Unit tests for the controller memory, scheduling table and channels."""

import pytest

from repro.hardware import (
    ControllerMemory,
    IOCommand,
    MemoryCapacityError,
    RequestChannel,
    ResponseChannel,
    SchedulingTable,
    TableEntry,
)


class TestIOCommand:
    def test_validation(self):
        with pytest.raises(ValueError):
            IOCommand(opcode="set", device="d0", duration=0)
        with pytest.raises(ValueError):
            IOCommand(opcode="", device="d0")


class TestControllerMemory:
    def test_store_and_retrieve(self):
        memory = ControllerMemory(capacity_kb=1)
        commands = [IOCommand("set", "d0", duration=5), IOCommand("clear", "d0", duration=3)]
        stored = memory.store("tau0", commands)
        assert stored.duration == 8
        retrieved = memory.retrieve("tau0")
        assert retrieved.commands == commands
        assert memory.reads == 1
        assert memory.writes == 1

    def test_capacity_enforced(self):
        memory = ControllerMemory(capacity_kb=1)  # 1024 bytes = 128 commands
        commands = [IOCommand("set", "d0", duration=1)] * 200
        with pytest.raises(MemoryCapacityError):
            memory.store("big", commands)

    def test_restore_same_task_does_not_double_count(self):
        memory = ControllerMemory(capacity_kb=1)
        memory.store("tau0", [IOCommand("set", "d0", duration=1)] * 100)
        # Re-storing the same task replaces its footprint instead of adding to it.
        memory.store("tau0", [IOCommand("set", "d0", duration=1)] * 100)
        assert memory.used_bytes == 100 * IOCommand.ENCODED_SIZE_BYTES

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError):
            ControllerMemory().retrieve("missing")

    def test_empty_command_list_rejected(self):
        with pytest.raises(ValueError):
            ControllerMemory().store("tau0", [])

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ControllerMemory(capacity_kb=0)


class TestSchedulingTable:
    def test_load_and_order(self):
        table = SchedulingTable()
        table.load(TableEntry("b", 0, 200))
        table.load(TableEntry("a", 0, 100))
        assert [entry.task_name for entry in table.entries()] == ["a", "b"]
        assert len(table) == 2

    def test_capacity_enforced(self):
        table = SchedulingTable(capacity=2)
        table.load(TableEntry("a", 0, 1))
        table.load(TableEntry("a", 1, 2))
        with pytest.raises(OverflowError):
            table.load(TableEntry("a", 2, 3))

    def test_enable_bits(self):
        table = SchedulingTable()
        table.load(TableEntry("a", 0, 100))
        assert not table.is_enabled("a")
        table.enable("a")
        assert table.is_enabled("a")
        table.disable("a")
        assert not table.is_enabled("a")

    def test_due_entries_and_next_start(self):
        table = SchedulingTable()
        table.load_many([TableEntry("a", 0, 100), TableEntry("b", 0, 100), TableEntry("a", 1, 300)])
        assert {e.task_name for e in table.due_entries(100)} == {"a", "b"}
        assert table.due_entries(200) == []
        assert table.next_start_after(100) == 300
        assert table.next_start_after(300) is None

    def test_entries_for_task(self):
        table = SchedulingTable()
        table.load_many([TableEntry("a", 0, 100), TableEntry("b", 0, 150), TableEntry("a", 1, 300)])
        assert len(table.entries_for("a")) == 2


class TestChannels:
    def test_message_latency(self):
        channel = RequestChannel(latency=5)
        channel.push(10, kind="io-request", task="a")
        assert channel.pop_available(12) == []
        delivered = channel.pop_available(15)
        assert len(delivered) == 1
        assert delivered[0].payload["task"] == "a"

    def test_fifo_order(self):
        channel = ResponseChannel(latency=0)
        channel.push(1, kind="r", idx=1)
        channel.push(2, kind="r", idx=2)
        delivered = channel.pop_available(10)
        assert [m.payload["idx"] for m in delivered] == [1, 2]

    def test_capacity_and_drop_counting(self):
        channel = RequestChannel(latency=0, capacity=1)
        assert channel.push(0, kind="a") is not None
        assert channel.push(0, kind="b") is None
        assert channel.dropped == 1

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            RequestChannel(latency=-1)
