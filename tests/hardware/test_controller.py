"""Unit and integration tests for the controller processor and full I/O controller."""

import pytest

from repro.core import MS, IOTask, Schedule, TaskSet
from repro.hardware import FaultInjector, FaultSpec, IOController
from repro.hardware.controller import default_command_builder
from repro.hardware.memory import IOCommand
from repro.scheduling import HeuristicScheduler
from repro.sim import Simulator
from repro.taskgen import GeneratorConfig, SystemGenerator


def make_task(name, wcet, period, delta, device="dev0"):
    return IOTask(
        name=name,
        wcet=wcet * MS,
        period=period * MS,
        ideal_offset=delta * MS,
        theta=(period // 4) * MS,
        device=device,
    )


def schedule_at_ideal(task_set: TaskSet) -> dict:
    schedules = {}
    for device, partition in task_set.partition().items():
        schedule = Schedule(device=device)
        for job in partition.jobs():
            schedule.set_start(job, job.ideal_start)
        schedules[device] = schedule
    return schedules


class TestDefaultCommandBuilder:
    def test_single_command_covers_wcet(self):
        task = make_task("a", 3, 40, delta=10)
        commands = default_command_builder(task)
        assert len(commands) == 1
        assert commands[0].duration == task.wcet


class TestIOController:
    def test_preload_rejects_mismatched_command_duration(self):
        task = make_task("a", 3, 40, delta=10)
        controller = IOController(
            command_builder=lambda t: [IOCommand("set", t.device, duration=1)]
        )
        with pytest.raises(ValueError):
            controller.preload_taskset(TaskSet([task]))

    def test_run_requires_loaded_schedule(self):
        controller = IOController()
        controller.preload_taskset(TaskSet([make_task("a", 2, 40, delta=10)]))
        with pytest.raises(RuntimeError):
            controller.run()

    def test_executes_schedule_exactly(self):
        task_set = TaskSet(
            [make_task("a", 2, 40, delta=10), make_task("b", 3, 40, delta=20)]
        )
        controller = IOController()
        controller.preload_taskset(task_set)
        controller.load_system_schedule(schedule_at_ideal(task_set))
        result = controller.run(Simulator())
        assert result.matches_offline
        assert result.psi == pytest.approx(1.0)
        assert result.executed_jobs == 2
        assert result.skipped_jobs == 0
        assert result.start_time_deviations() == [0, 0]

    def test_multi_device_partitions_have_one_processor_each(self):
        task_set = TaskSet(
            [
                make_task("a", 2, 40, delta=10, device="d0"),
                make_task("b", 3, 40, delta=10, device="d1"),
            ]
        )
        controller = IOController()
        controller.preload_taskset(task_set)
        controller.load_system_schedule(schedule_at_ideal(task_set))
        result = controller.run(Simulator())
        assert set(controller.processors) == {"d0", "d1"}
        assert result.matches_offline

    def test_device_operations_recorded(self):
        task_set = TaskSet([make_task("a", 2, 40, delta=10)])
        controller = IOController()
        controller.preload_taskset(task_set)
        controller.load_system_schedule(schedule_at_ideal(task_set))
        controller.run(Simulator())
        device = controller.processors["dev0"].device
        assert device.operation_times() == [10 * MS]

    def test_missing_request_fault_skips_only_affected_task(self):
        task_set = TaskSet(
            [make_task("a", 2, 40, delta=10), make_task("b", 3, 40, delta=20)]
        )
        injector = FaultInjector([FaultSpec(kind="missing-request", task_name="a")])
        controller = IOController(fault_injector=injector)
        controller.preload_taskset(task_set)
        controller.load_system_schedule(schedule_at_ideal(task_set))
        requested = [
            entry.job
            for schedule in schedule_at_ideal(task_set).values()
            for entry in schedule.entries
            if entry.job.task.name != "a"
        ]
        result = controller.run(Simulator(), request_jobs=requested)
        assert result.skipped_jobs == 1
        assert result.faults_detected == 1
        assert result.executed_jobs == 1

    def test_offline_heuristic_schedule_reproduced_at_runtime(self):
        task_set = SystemGenerator(GeneratorConfig(n_devices=2), rng=13).generate(0.4)
        offline = HeuristicScheduler().schedule_taskset(task_set)
        assert offline.schedulable
        controller = IOController()
        controller.preload_taskset(task_set)
        controller.load_system_schedule({d: r.schedule for d, r in offline.per_device.items()})
        result = controller.run(Simulator())
        assert result.matches_offline
        assert result.psi == pytest.approx(offline.psi)
        assert result.upsilon == pytest.approx(offline.upsilon)
