"""Unit tests for the hardware primitive library and the Table I resource model."""

import pytest

from repro.hardware import PrimitiveLibrary, ResourceCost
from repro.hardware.resources import (
    PUBLISHED_TABLE1,
    HardwareDesign,
    estimate_all,
    gpiocp_design,
    microblaze_basic_design,
    microblaze_full_design,
    proposed_controller_design,
    reference_designs,
)


class TestResourceCost:
    def test_addition_and_scaling(self):
        a = ResourceCost(luts=10, registers=20, dsps=1, bram_kb=2)
        b = ResourceCost(luts=5, registers=5)
        total = a + b
        assert (total.luts, total.registers, total.dsps, total.bram_kb) == (15, 25, 1, 2)
        scaled = b.scaled(3)
        assert (scaled.luts, scaled.registers) == (15, 15)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            ResourceCost(luts=1).scaled(-1)


class TestPrimitiveLibrary:
    def test_lookup_and_total(self):
        library = PrimitiveLibrary()
        assert "counter32" in library
        total = library.total({"counter32": 2, "register32": 1})
        assert total.luts == 64
        assert total.registers == 96

    def test_unknown_primitive_raises(self):
        with pytest.raises(KeyError):
            PrimitiveLibrary().cost_of("flux_capacitor")

    def test_custom_primitive(self):
        library = PrimitiveLibrary()
        library.add("custom", ResourceCost(luts=7))
        assert library.cost_of("custom").luts == 7


class TestHardwareDesign:
    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareDesign(name="x", primitives={}, clock_mhz=0)
        with pytest.raises(ValueError):
            HardwareDesign(name="x", primitives={}, activity=0.0)
        with pytest.raises(ValueError):
            HardwareDesign(name="x", primitives={"counter32": -1})

    def test_power_scales_with_activity_and_clock(self):
        base = proposed_controller_design()
        hot = HardwareDesign(
            name="hot", primitives=base.primitives, clock_mhz=base.clock_mhz * 2,
            activity=base.activity,
        )
        assert hot.estimate().power_mw == pytest.approx(base.estimate().power_mw * 2)

    def test_processor_replication_scales_logic_but_not_memory(self):
        one = proposed_controller_design(n_processors=1).cost()
        four = proposed_controller_design(n_processors=4).cost()
        assert four.luts > 2 * one.luts
        assert four.bram_kb == one.bram_kb


class TestTable1Reproduction:
    def test_all_reference_designs_present(self):
        assert set(reference_designs()) == set(PUBLISHED_TABLE1)

    def test_estimates_within_ten_percent_of_published(self):
        for name, estimate in estimate_all().items():
            published = PUBLISHED_TABLE1[name]
            assert estimate.luts == pytest.approx(published["luts"], rel=0.10)
            assert estimate.registers == pytest.approx(published["registers"], rel=0.10)
            assert estimate.dsps == published["dsps"]
            assert estimate.bram_kb == published["bram_kb"]
            assert estimate.power_mw == pytest.approx(published["power_mw"], rel=0.25)

    def test_relative_claims_of_the_paper_hold(self):
        estimates = estimate_all()
        proposed = estimates["proposed"]
        # More capable than GPIOCP, hence somewhat larger.
        assert proposed.luts > estimates["gpiocp"].luts
        assert proposed.registers > estimates["gpiocp"].registers
        # Far smaller than a full MicroBlaze.
        assert proposed.luts < 0.3 * estimates["microblaze-full"].luts
        # Far less power-hungry than either MicroBlaze.
        assert proposed.power_mw < 0.1 * estimates["microblaze-basic"].power_mw
        assert proposed.power_mw < 0.1 * estimates["microblaze-full"].power_mw
        # Larger than the plain serial-protocol controllers.
        for simple in ("uart", "spi", "can"):
            assert proposed.luts > estimates[simple].luts

    def test_specific_designs_have_expected_features(self):
        assert microblaze_full_design().cost().dsps > 0
        assert microblaze_basic_design().cost().dsps == 0
        assert gpiocp_design().cost().bram_kb == 16
