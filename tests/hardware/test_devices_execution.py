"""Unit tests for the I/O device models and the execution module."""

import pytest

from repro.hardware import (
    CANDevice,
    ControllerMemory,
    ExecutionUnit,
    FaultInjector,
    FaultRecoveryUnit,
    FaultSpec,
    GPIOPin,
    IOCommand,
    SchedulingTable,
    SPIDevice,
    Synchroniser,
    TableEntry,
    UARTDevice,
)
from repro.hardware.timer import GlobalTimer


class TestDevices:
    def test_gpio_pin_set_clear_toggle(self):
        pin = GPIOPin("p0")
        pin.execute(IOCommand("set", "p0", duration=1), time=0)
        assert pin.level == 1
        pin.execute(IOCommand("toggle", "p0", duration=1), time=1)
        assert pin.level == 0
        pin.execute(IOCommand("write", "p0", value=1, duration=1), time=2)
        assert pin.level == 1

    def test_device_records_operation_times(self):
        pin = GPIOPin("p0")
        pin.execute(IOCommand("set", "p0", duration=3), time=10, job_key=("t", 0))
        assert pin.operation_times() == [10]
        assert pin.first_operation_of(("t", 0)).duration == 3

    def test_device_busy_rejection(self):
        pin = GPIOPin("p0")
        pin.execute(IOCommand("set", "p0", duration=5), time=0)
        with pytest.raises(RuntimeError):
            pin.execute(IOCommand("clear", "p0", duration=1), time=4)
        pin.execute(IOCommand("clear", "p0", duration=1), time=5)

    def test_unsupported_opcode_rejected(self):
        uart = UARTDevice("u0")
        with pytest.raises(ValueError):
            uart.execute(IOCommand("toggle", "u0", duration=1), time=0)

    def test_uart_transmits_bytes(self):
        uart = UARTDevice("u0")
        uart.execute(IOCommand("write", "u0", value=0x41, duration=9), time=0)
        assert uart.transmitted == [0x41]

    def test_spi_full_duplex(self):
        spi = SPIDevice("s0", response_pattern=0xFF)
        operation = spi.execute(IOCommand("write", "s0", value=0x0F, duration=8), time=0)
        assert spi.mosi_log == [0x0F]
        assert operation.value == 0xF0

    def test_can_frames(self):
        can = CANDevice("c0")
        can.execute(IOCommand("write", "c0", value=0x123, duration=10), time=0)
        assert can.frames == [0x123]


class TestGlobalTimer:
    def test_set_and_read_with_resolution(self):
        timer = GlobalTimer(resolution=10)
        timer.set(27)
        assert timer.read() == 20
        assert timer.ticks_until(45) == 3

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            GlobalTimer(resolution=0)
        with pytest.raises(ValueError):
            GlobalTimer().set(-1)


def make_synchroniser(policy="skip", faults=None):
    memory = ControllerMemory()
    memory.store("tau0", [IOCommand("toggle", "d0", duration=4)])
    table = SchedulingTable()
    table.load(TableEntry("tau0", 0, start_time=100))
    device = GPIOPin("d0")
    synchroniser = Synchroniser(
        table=table,
        memory=memory,
        exu=ExecutionUnit(device),
        fault_recovery=FaultRecoveryUnit(missing_request_policy=policy),
        fault_injector=FaultInjector(faults or []),
    )
    return synchroniser, table, device


class TestSynchroniser:
    def test_enabled_entry_executes_at_start_time(self):
        synchroniser, table, device = make_synchroniser()
        table.enable("tau0")
        records = synchroniser.execute_due(100)
        assert len(records) == 1
        assert records[0].started_at == 100
        assert records[0].finished_at == 104
        assert device.operation_times() == [100]

    def test_nothing_due_at_other_times(self):
        synchroniser, table, _ = make_synchroniser()
        table.enable("tau0")
        assert synchroniser.execute_due(99) == []

    def test_missing_request_skip_policy(self):
        synchroniser, _, device = make_synchroniser(policy="skip")
        records = synchroniser.execute_due(100)
        assert records[0].skipped
        assert records[0].fault == "missing-request"
        assert device.operations == []
        assert synchroniser.fault_recovery.faults_detected == 1

    def test_missing_request_execute_policy(self):
        synchroniser, _, device = make_synchroniser(policy="execute")
        records = synchroniser.execute_due(100)
        assert records[0].executed
        assert synchroniser.fault_recovery.jobs_forced == 1
        assert device.operation_times() == [100]

    def test_corrupted_commands_never_reach_device(self):
        faults = [FaultSpec(kind="corrupted-command", task_name="tau0")]
        synchroniser, table, device = make_synchroniser(faults=faults)
        table.enable("tau0")
        records = synchroniser.execute_due(100)
        assert records[0].skipped
        assert device.operations == []


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="nonsense", task_name="t")

    def test_injector_filters_by_task_and_job(self):
        injector = FaultInjector([FaultSpec(kind="missing-request", task_name="a", job_index=2)])
        assert injector.has("missing-request", "a", 2)
        assert not injector.has("missing-request", "a", 3)
        assert not injector.has("missing-request", "b", 2)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            FaultRecoveryUnit(missing_request_policy="retry")
