"""MetricsRegistry semantics: instruments, snapshots, merge, worker parity."""

import json
import threading
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_MS,
    REQUEST_LATENCY_MS,
    REQUESTS_TOTAL,
    MetricsRegistry,
    merge_snapshots,
    observe_phases,
)
from repro.service import ScheduleRequest, SchedulerSpec
from repro.service.service import execute_request_observed
from repro.service.__main__ import scenario_requests


class TestCounters:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        assert registry.counter_value("c", kind="a") == 0
        registry.counter_inc("c", kind="a")
        registry.counter_inc("c", 2, kind="a")
        assert registry.counter_value("c", kind="a") == 3

    def test_integer_increments_stay_integers(self):
        registry = MetricsRegistry()
        registry.counter_inc("c", kind="a")
        assert isinstance(registry.counter_value("c", kind="a"), int)

    def test_labels_partition_samples(self):
        registry = MetricsRegistry()
        registry.counter_inc("c", kind="a")
        registry.counter_inc("c", kind="b")
        assert registry.counter_value("c", kind="a") == 1
        assert registry.counter_value("c", kind="b") == 1

    def test_negative_increment_is_rejected(self):
        with pytest.raises(ValueError, match="only go up"):
            MetricsRegistry().counter_inc("c", -1, kind="a")

    def test_wrong_label_set_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter_inc("c", kind="a")
        with pytest.raises(ValueError, match="labels"):
            registry.counter_inc("c", other="a")

    def test_kind_mismatch_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter_inc("c", kind="a")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge_set("c", 1.0, kind="a")


class TestGauges:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge_set("g", 4.0)
        registry.gauge_set("g", 2.5)
        assert registry.gauge_value("g") == 2.5


class TestHistograms:
    def test_observation_lands_in_its_bucket(self):
        registry = MetricsRegistry()
        registry.histogram_observe("h", 0.3, buckets=(0.25, 1.0), phase="x")
        registry.histogram_observe("h", 5.0, buckets=(0.25, 1.0), phase="x")
        snapshot = registry.snapshot()
        sample = snapshot["families"]["h"]["samples"][0]
        # (<=0.25, <=1.0, +Inf): 0.3 falls in the second, 5.0 overflows.
        assert sample["buckets"] == [0, 1, 1]
        assert sample["count"] == 2
        assert sample["sum"] == pytest.approx(5.3)

    def test_default_buckets_cover_the_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS_MS == tuple(sorted(DEFAULT_LATENCY_BUCKETS_MS))
        assert DEFAULT_LATENCY_BUCKETS_MS[0] <= 0.1
        assert DEFAULT_LATENCY_BUCKETS_MS[-1] >= 10_000.0

    def test_bucket_mismatch_on_merge_is_rejected(self):
        a = MetricsRegistry()
        a.histogram_observe("h", 1.0, buckets=(1.0, 2.0))
        b = MetricsRegistry()
        b.histogram_observe("h", 1.0, buckets=(1.0,))
        with pytest.raises(ValueError):
            a.merge(b.snapshot())


class TestSnapshotAndMerge:
    def test_snapshot_is_json_serialisable_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter_inc("z", kind="b")
        registry.counter_inc("z", kind="a")
        registry.gauge_set("a", 1.0)
        registry.histogram_observe("m", 0.4, phase="x")
        snapshot = registry.snapshot()
        json.dumps(snapshot)
        assert list(snapshot["families"]) == ["a", "m", "z"]
        labels = [s["labels"]["kind"] for s in snapshot["families"]["z"]["samples"]]
        assert labels == ["a", "b"]

    def test_merge_adds_counters_and_histograms_and_overwrites_gauges(self):
        a = MetricsRegistry()
        a.counter_inc("c", 2, kind="x")
        a.gauge_set("g", 1.0)
        a.histogram_observe("h", 0.2, buckets=(1.0,))
        b = MetricsRegistry()
        b.counter_inc("c", 3, kind="x")
        b.gauge_set("g", 9.0)
        b.histogram_observe("h", 0.7, buckets=(1.0,))

        a.merge(b.snapshot())
        assert a.counter_value("c", kind="x") == 5
        assert a.gauge_value("g") == 9.0
        assert a.histogram_count("h") == 2

    def test_merge_snapshots_equals_pairwise_merges(self):
        registries = []
        for amount in (1, 2, 3):
            registry = MetricsRegistry()
            registry.counter_inc("c", amount, kind="x")
            registries.append(registry)
        merged = merge_snapshots(r.snapshot() for r in registries)
        sample = merged["families"]["c"]["samples"][0]
        assert sample["value"] == 6

    def test_thread_safety_under_concurrent_increments(self):
        registry = MetricsRegistry()

        def bump():
            for _ in range(500):
                registry.counter_inc("c", kind="x")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter_value("c", kind="x") == 2000


class TestObservePhases:
    def test_each_phase_becomes_one_observation(self):
        registry = MetricsRegistry()
        phases = [
            {"phase": "schedule", "duration_ms": 4.0},
            {"phase": "store", "duration_ms": 0.2},
        ]
        observe_phases(registry, "schedule", phases)
        assert registry.histogram_count(
            REQUEST_LATENCY_MS, kind="schedule", phase="schedule"
        ) == 1
        assert registry.histogram_count(
            REQUEST_LATENCY_MS, kind="schedule", phase="store"
        ) == 1


def _observed_jobs(n_systems):
    requests = scenario_requests("short-hyperperiod", ["static"], n_systems)
    return [(request, f"trace{i:02d}", None) for i, request in enumerate(requests)]


class TestWorkerSnapshotParity:
    """Acceptance: merged per-worker registries == the serial registry."""

    def test_pool_merge_equals_serial_counts(self):
        jobs = _observed_jobs(4)

        serial = MetricsRegistry()
        for _, _, snapshot in map(execute_request_observed, jobs):
            serial.merge(snapshot)

        pooled = MetricsRegistry()
        with ProcessPoolExecutor(max_workers=2) as executor:
            for _, _, snapshot in executor.map(execute_request_observed, jobs):
                pooled.merge(snapshot)

        serial_families = serial.snapshot()["families"]
        pooled_families = pooled.snapshot()["families"]
        assert set(serial_families) == set(pooled_families)
        histogram = pooled_families[REQUEST_LATENCY_MS]
        for serial_sample, pooled_sample in zip(
            serial_families[REQUEST_LATENCY_MS]["samples"], histogram["samples"]
        ):
            assert serial_sample["labels"] == pooled_sample["labels"]
            assert serial_sample["count"] == pooled_sample["count"]

    def test_observed_worker_response_matches_direct_execution(self):
        from repro.service import execute_request

        request = ScheduleRequest(
            scenario=scenario_requests("short-hyperperiod", ["static"], 1)[0].scenario,
            system_index=0,
            spec=SchedulerSpec.parse("static"),
        )
        response, trace, snapshot = execute_request_observed((request, "t0", None))
        assert response.result_dict() == execute_request(request).result_dict()
        assert trace["trace_id"] == "t0"
        assert snapshot["families"]
