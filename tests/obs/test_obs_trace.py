"""Trace propagation: spans, activation scoping, and no-op behaviour."""

from repro.obs import (
    PHASE_SCHEDULE,
    PHASE_SIMULATE,
    Trace,
    activate,
    current_trace,
    new_trace_id,
    span,
)


class TestTraceIds:
    def test_ids_are_short_hex_and_unique(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            assert len(trace_id) == 16
            int(trace_id, 16)


class TestActivation:
    def test_no_trace_by_default(self):
        assert current_trace() is None

    def test_activate_scopes_the_trace(self):
        trace = Trace("t0")
        with activate(trace):
            assert current_trace() is trace
        assert current_trace() is None

    def test_activation_nests(self):
        outer, inner = Trace("outer"), Trace("inner")
        with activate(outer):
            with activate(inner):
                assert current_trace() is inner
            assert current_trace() is outer


class TestSpans:
    def test_span_records_a_phase_on_the_active_trace(self):
        trace = Trace("t0")
        with activate(trace):
            with span(PHASE_SCHEDULE):
                pass
        assert [phase["phase"] for phase in trace.phases] == [PHASE_SCHEDULE]
        assert trace.phases[0]["duration_ms"] >= 0.0

    def test_span_without_active_trace_is_a_no_op(self):
        with span(PHASE_SCHEDULE):
            pass
        assert current_trace() is None

    def test_span_records_on_exception(self):
        trace = Trace("t0")
        try:
            with activate(trace):
                with span(PHASE_SIMULATE):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [phase["phase"] for phase in trace.phases] == [PHASE_SIMULATE]

    def test_spans_accumulate_in_order(self):
        trace = Trace("t0")
        with activate(trace):
            with span("a"):
                pass
            with span("b"):
                pass
        assert [phase["phase"] for phase in trace.phases] == ["a", "b"]


class TestTraceDict:
    def test_to_dict_round_trips_phases(self):
        trace = Trace("abc")
        trace.add_phase("schedule", 0.002)
        payload = trace.to_dict()
        assert payload["trace_id"] == "abc"
        assert payload["phases"] == [{"phase": "schedule", "duration_ms": 2.0}]

    def test_negative_durations_clamp_to_zero(self):
        trace = Trace("abc")
        trace.add_phase("schedule", -0.5)
        assert trace.phases[0]["duration_ms"] == 0.0
