"""Prometheus text exposition: format, escaping, cumulative buckets."""

import re

from repro.obs import MetricsRegistry, render, write_metrics_file

SAMPLE_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+$'
)


def rendered(build):
    registry = MetricsRegistry()
    build(registry)
    return render(registry.snapshot())


class TestFormat:
    def test_empty_snapshot_renders_empty(self):
        assert render(MetricsRegistry().snapshot()) == ""

    def test_counter_exposition(self):
        text = rendered(
            lambda r: r.counter_inc("repro_x_total", 3, help="X.", kind="a")
        )
        assert text == (
            "# HELP repro_x_total X.\n"
            "# TYPE repro_x_total counter\n"
            'repro_x_total{kind="a"} 3\n'
        )

    def test_gauge_without_labels_or_help(self):
        text = rendered(lambda r: r.gauge_set("repro_depth", 2.0))
        assert text == "# TYPE repro_depth gauge\nrepro_depth 2\n"

    def test_floats_keep_their_precision(self):
        text = rendered(lambda r: r.gauge_set("g", 0.125))
        assert "g 0.125\n" in text

    def test_ends_with_exactly_one_newline(self):
        text = rendered(lambda r: r.counter_inc("c", kind="a"))
        assert text.endswith("\n") and not text.endswith("\n\n")

    def test_every_sample_line_is_well_formed(self):
        def build(registry):
            registry.counter_inc("repro_a_total", kind="x")
            registry.gauge_set("repro_b", 1.5)
            registry.histogram_observe("repro_c_ms", 0.4, phase="p")

        for line in rendered(build).splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ", line)
            else:
                assert SAMPLE_LINE.match(line), line


class TestEscaping:
    def test_label_values_escape_quotes_backslashes_newlines(self):
        text = rendered(
            lambda r: r.counter_inc("c", source='a"b\\c\nd')
        )
        assert 'source="a\\"b\\\\c\\nd"' in text
        assert "\n\n" not in text


class TestHistograms:
    def test_buckets_are_cumulative_and_end_in_inf(self):
        def build(registry):
            for value in (0.2, 0.7, 5.0):
                registry.histogram_observe("h_ms", value, buckets=(0.5, 1.0), phase="p")

        text = rendered(build)
        assert 'h_ms_bucket{phase="p",le="0.5"} 1' in text
        assert 'h_ms_bucket{phase="p",le="1"} 2' in text
        assert 'h_ms_bucket{phase="p",le="+Inf"} 3' in text
        assert 'h_ms_count{phase="p"} 3' in text
        assert 'h_ms_sum{phase="p"} 5.9' in text

    def test_inf_bucket_equals_count(self):
        def build(registry):
            for value in (0.1, 99.0, 12345.0):
                registry.histogram_observe("h_ms", value, phase="p")

        text = rendered(build)
        inf = re.search(r'h_ms_bucket\{phase="p",le="\+Inf"\} (\d+)', text)
        count = re.search(r'h_ms_count\{phase="p"\} (\d+)', text)
        assert inf and count and inf.group(1) == count.group(1) == "3"


class TestDeterminismAndFiles:
    def test_same_state_renders_identical_bytes(self):
        def build(registry):
            registry.counter_inc("z", kind="b")
            registry.counter_inc("a", kind="x")
            registry.histogram_observe("m_ms", 1.0, phase="p")

        assert rendered(build) == rendered(build)

    def test_write_metrics_file_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter_inc("repro_x_total", kind="a")
        target = tmp_path / "metrics.prom"
        write_metrics_file(target, registry.snapshot())
        assert target.read_text(encoding="utf-8") == render(registry.snapshot())
