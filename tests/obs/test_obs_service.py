"""Service-level observability: phase breakdowns, counters, byte-identity.

The hard constraint under test: observability data never enters response
envelopes or cached payloads — instrumented answers are byte-identical to
the pure execution path, warm or cold, at any worker count.
"""

import pytest

from repro.obs import (
    CACHE_OPS_TOTAL,
    PHASE_CACHE_LOOKUP,
    PHASE_QUEUE_WAIT,
    PHASE_SCHEDULE,
    PHASE_SIMULATE,
    PHASE_STORE,
    REQUEST_LATENCY_MS,
    REQUESTS_TOTAL,
)
from repro.runtime import SimulationService, execute_simulation
from repro.runtime.__main__ import scenario_requests as sim_scenario_requests
from repro.service import SchedulingService, execute_request
from repro.service.__main__ import scenario_requests

SCENARIO = "short-hyperperiod"


def phase_names(trace):
    return [phase["phase"] for phase in trace["phases"]]


class TestSchedulingTraces:
    def test_cold_request_breaks_down_into_lookup_schedule_store(self):
        with SchedulingService() as service:
            service.submit(scenario_requests(SCENARIO, ["static"], 1)[0])
            (trace,) = service.last_traces
        assert phase_names(trace) == [PHASE_CACHE_LOOKUP, PHASE_SCHEDULE, PHASE_STORE]
        assert all(phase["duration_ms"] >= 0.0 for phase in trace["phases"])
        assert trace["trace_id"]

    def test_warm_request_is_lookup_only(self):
        request = scenario_requests(SCENARIO, ["static"], 1)[0]
        with SchedulingService() as service:
            service.submit(request)
            service.submit(request)
            (trace,) = service.last_traces
        assert phase_names(trace) == [PHASE_CACHE_LOOKUP]

    def test_counters_split_by_cache_status(self):
        requests = scenario_requests(SCENARIO, ["static"], 2)
        with SchedulingService() as service:
            service.submit_batch(requests)
            service.submit_batch(requests)
            registry = service.registry
            assert registry.counter_value(
                REQUESTS_TOTAL, kind="schedule", cache="miss"
            ) == 2
            assert registry.counter_value(
                REQUESTS_TOTAL, kind="schedule", cache="hit"
            ) == 2
            assert registry.counter_value(
                CACHE_OPS_TOTAL, cache="schedule", op="store"
            ) == 2

    def test_stats_and_registry_agree(self):
        requests = scenario_requests(SCENARIO, ["static"], 2)
        with SchedulingService() as service:
            service.submit_batch(requests)
            service.submit_batch(requests)
            stats = service.stats()
            registry = service.registry
        assert stats["cache_hits"] == registry.counter_value(
            CACHE_OPS_TOTAL, cache="schedule", op="hit"
        )
        assert stats["cache_misses"] == registry.counter_value(
            CACHE_OPS_TOTAL, cache="schedule", op="miss"
        )
        assert stats["cache_stores"] == registry.counter_value(
            CACHE_OPS_TOTAL, cache="schedule", op="store"
        )


class TestByteIdentity:
    def test_instrumented_response_equals_pure_execution(self):
        request = scenario_requests(SCENARIO, ["static"], 1)[0]
        with SchedulingService() as service:
            response = service.submit(request)
        assert response.result_dict() == execute_request(request).result_dict()

    def test_envelope_carries_no_observability_keys(self):
        request = scenario_requests(SCENARIO, ["static"], 1)[0]
        with SchedulingService() as service:
            cold = service.submit(request).to_dict()
            warm = service.submit(request).to_dict()
        for envelope in (cold, warm):
            payload = envelope["data"]
            assert set(payload) == {"id", "result", "cache", "timing"}
            assert set(payload["timing"]) == {"elapsed_s"}
            assert "trace" not in str(envelope)

    def test_warm_answers_identical_at_any_worker_count(self, tmp_path):
        requests = scenario_requests(SCENARIO, ["static"], 2)
        outputs = []
        for n_workers in (1, 2):
            cache_dir = tmp_path / f"w{n_workers}"
            with SchedulingService(
                n_workers=n_workers, cache_dir=str(cache_dir)
            ) as service:
                service.submit_batch(requests)
                outputs.append(
                    [response.to_json() for response in service.submit_batch(requests)]
                )
        assert outputs[0] == outputs[1]


class TestPooledParity:
    """Merged worker registries equal the serial registry, counter for counter."""

    def test_pooled_counts_equal_serial_counts(self):
        requests = scenario_requests(SCENARIO, ["static", "gpiocp"], 2)
        registries = {}
        for n_workers in (1, 2):
            with SchedulingService(n_workers=n_workers) as service:
                service.submit_batch(requests)
                registries[n_workers] = service.registry
        serial, pooled = registries[1], registries[2]
        for cache in ("miss", "hit"):
            assert serial.counter_value(
                REQUESTS_TOTAL, kind="schedule", cache=cache
            ) == pooled.counter_value(REQUESTS_TOTAL, kind="schedule", cache=cache)
        for phase in (PHASE_CACHE_LOOKUP, PHASE_SCHEDULE, PHASE_STORE):
            assert serial.histogram_count(
                REQUEST_LATENCY_MS, kind="schedule", phase=phase
            ) == pooled.histogram_count(
                REQUEST_LATENCY_MS, kind="schedule", phase=phase
            )

    def test_pooled_traces_record_queue_wait(self):
        requests = scenario_requests(SCENARIO, ["static", "gpiocp"], 2)
        with SchedulingService(n_workers=2) as service:
            service.submit_batch(requests)
            miss_traces = [
                trace
                for trace in service.last_traces
                if PHASE_SCHEDULE in phase_names(trace)
            ]
        assert miss_traces
        for trace in miss_traces:
            assert PHASE_QUEUE_WAIT in phase_names(trace)


class TestSimulationTraces:
    def test_cold_simulation_includes_simulate_phase(self):
        request = sim_scenario_requests(SCENARIO, ["static"], ["dedicated-controller"], 1)[0]
        with SimulationService() as service:
            response = service.submit(request)
            (trace,) = service.last_traces
        names = phase_names(trace)
        assert names[0] == PHASE_CACHE_LOOKUP
        assert PHASE_SIMULATE in names
        assert names[-1] == PHASE_STORE
        assert names.count(PHASE_SCHEDULE) == 1
        assert response.cache == "miss"

    def test_warm_simulation_is_lookup_only(self):
        request = sim_scenario_requests(SCENARIO, ["static"], ["dedicated-controller"], 1)[0]
        with SimulationService() as service:
            service.submit(request)
            service.submit(request)
            (trace,) = service.last_traces
        assert phase_names(trace) == [PHASE_CACHE_LOOKUP]

    def test_instrumented_simulation_equals_pure_execution(self):
        request = sim_scenario_requests(SCENARIO, ["static"], ["dedicated-controller"], 1)[0]
        with SimulationService() as service:
            response = service.submit(request)
        assert response.result_dict() == execute_simulation(request).result_dict()

    def test_metrics_snapshot_covers_both_service_layers(self):
        request = sim_scenario_requests(SCENARIO, ["static"], ["dedicated-controller"], 1)[0]
        with SimulationService() as service:
            service.submit(request)
            snapshot = service.metrics()
        families = snapshot["families"]
        assert REQUESTS_TOTAL in families
        cache_labels = {
            sample["labels"]["cache"]
            for sample in families[CACHE_OPS_TOTAL]["samples"]
        }
        assert cache_labels == {"schedule", "simulation"}


class TestCacheMetricsSharing:
    def test_external_cache_keeps_its_own_registry(self):
        from repro.service.cache import ScheduleCache

        cache = ScheduleCache()
        with SchedulingService(cache=cache) as service:
            service.submit(scenario_requests(SCENARIO, ["static"], 1)[0])
            assert cache.registry is not service.registry
            assert len(service.metrics_registries()) == 2
            merged = service.metrics()
        assert CACHE_OPS_TOTAL in merged["families"]

    def test_counter_properties_stay_integers(self):
        from repro.service.cache import ScheduleCache

        cache = ScheduleCache()
        cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        assert cache.get("missing") is None
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)
        assert all(
            isinstance(value, int)
            for value in (cache.hits, cache.misses, cache.stores)
        )


@pytest.mark.parametrize("n_workers", [1, 2])
def test_simulation_pooled_counts_equal_serial(n_workers, tmp_path):
    requests = sim_scenario_requests(
        SCENARIO, ["static"], ["dedicated-controller", "cpu-instigated"], 1
    )
    with SimulationService(n_workers=n_workers) as service:
        service.submit_batch(requests)
        registry = service.registry
        assert registry.counter_value(
            REQUESTS_TOTAL, kind="simulation", cache="miss"
        ) == len(requests)
        assert registry.histogram_count(
            REQUEST_LATENCY_MS, kind="simulation", phase=PHASE_SIMULATE
        ) == len(requests)
