"""repro.store migration + maintenance CLI."""

import json

import pytest

from repro.store import DirectoryBackend, SqliteBackend, migrate_backend
from repro.store.__main__ import main

PAYLOAD = {"kind": "repro/test-entry", "version": 1, "data": {"answer": 42}}


def seeded_directory(tmp_path, n=5):
    backend = DirectoryBackend(tmp_path / "src")
    for index in range(n):
        backend.put(f"{index:016x}", dict(PAYLOAD, data={"answer": index}))
    return backend


class TestMigrateBackend:
    def test_directory_to_sqlite_with_verified_count(self, tmp_path):
        source = seeded_directory(tmp_path)
        destination = SqliteBackend(tmp_path / "dst.db")
        result = migrate_backend(source, destination)
        assert result.copied == 5
        assert result.skipped == 0
        assert result.corrupt == 0
        assert result.verified == 5
        assert destination.keys() == source.keys()
        for key in source.keys():
            assert destination.get(key) == source.get(key)

    def test_second_run_is_idempotent(self, tmp_path):
        source = seeded_directory(tmp_path)
        destination = SqliteBackend(tmp_path / "dst.db")
        migrate_backend(source, destination)
        again = migrate_backend(source, destination)
        assert again.copied == 0
        assert again.skipped == 5
        assert again.verified == 5

    def test_corrupt_entries_are_counted_and_left_behind(self, tmp_path):
        source = seeded_directory(tmp_path, n=2)
        (tmp_path / "src" / ("ff" * 8 + ".json")).write_text("{torn")
        destination = SqliteBackend(tmp_path / "dst.db")
        result = migrate_backend(source, destination)
        assert result.copied == 2
        assert result.corrupt == 1
        assert ("ff" * 8) not in destination.keys()

    def test_progress_callback(self, tmp_path):
        source = seeded_directory(tmp_path, n=3)
        destination = DirectoryBackend(tmp_path / "dst")
        seen = []
        migrate_backend(source, destination, progress=lambda d, t: seen.append((d, t)))
        assert seen == [(1, 3), (2, 3), (3, 3)]


class TestStoreCli:
    def test_list_backends(self, capsys):
        assert main(["--list-backends"]) == 0
        out = capsys.readouterr().out
        assert "directory" in out and "sqlite" in out

    def test_stats_reports_kinds(self, tmp_path, capsys):
        seeded_directory(tmp_path)
        assert main(["stats", f"directory:root={tmp_path / 'src'}"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 5
        assert stats["kinds"] == {"repro/test-entry": 5}

    def test_ls_with_limit(self, tmp_path, capsys):
        seeded_directory(tmp_path)
        assert main(["ls", str(tmp_path / "src"), "--limit", "2"]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.splitlines()) == 2
        assert "3 more" in captured.err

    def test_prune_corrupt(self, tmp_path, capsys):
        seeded_directory(tmp_path, n=2)
        (tmp_path / "src" / ("ff" * 8 + ".json")).write_text("{torn")
        assert main(["prune", str(tmp_path / "src")]) == 0
        assert "pruned 1 corrupt entry" in capsys.readouterr().err
        assert len(DirectoryBackend(tmp_path / "src").keys()) == 2

    def test_migrate_bare_paths(self, tmp_path, capsys):
        seeded_directory(tmp_path)
        db = tmp_path / "dst.db"
        assert main(["migrate", str(tmp_path / "src"), str(db)]) == 0
        assert "migrated 5 entries" in capsys.readouterr().err
        with SqliteBackend(db) as destination:
            assert len(destination) == 5

    def test_invalid_spec_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["stats", "redis:host=nope"])
        assert excinfo.value.code == 2
