"""repro.store backends: round-trips, first-write-wins, specs, maintenance."""

import json

import pytest

from repro.store import (
    SCHEDULE_CACHE_SUBDIR,
    SIM_CACHE_SUBDIR,
    DirectoryBackend,
    SqliteBackend,
    backend_names,
    create_backend,
    format_backend_listing,
    parse_backend_spec,
    schedule_backend,
    simulation_backend,
)

PAYLOAD = {"kind": "repro/test-entry", "version": 1, "data": {"answer": 42}}
OTHER = {"kind": "repro/test-entry", "version": 1, "data": {"answer": 99}}


@pytest.fixture(params=["directory", "sqlite"])
def backend(request, tmp_path):
    if request.param == "directory":
        with DirectoryBackend(tmp_path / "store") as instance:
            yield instance
    else:
        with SqliteBackend(tmp_path / "store.db") as instance:
            yield instance


class TestBackendContract:
    def test_round_trip(self, backend):
        assert backend.get("aa" * 8) is None
        backend.put("aa" * 8, PAYLOAD)
        assert backend.get("aa" * 8) == PAYLOAD

    def test_rewrite_never_tears(self, backend):
        # Real writers of one key always hold identical content-addressed
        # payloads; whichever write lands, the entry must stay complete.
        backend.put("aa" * 8, PAYLOAD)
        backend.put("aa" * 8, OTHER)
        assert backend.get("aa" * 8) in (PAYLOAD, OTHER)
        assert len(backend) == 1

    def test_keys_sorted_len_contains(self, backend):
        for key in ("cc" * 8, "aa" * 8, "bb" * 8):
            backend.put(key, PAYLOAD)
        assert backend.keys() == sorted(["aa" * 8, "bb" * 8, "cc" * 8])
        assert len(backend) == 3
        assert ("aa" * 8) in backend
        assert ("dd" * 8) not in backend

    def test_delete(self, backend):
        backend.put("aa" * 8, PAYLOAD)
        assert backend.delete("aa" * 8) is True
        assert backend.delete("aa" * 8) is False
        assert backend.get("aa" * 8) is None

    def test_stats_shape(self, backend):
        backend.put("aa" * 8, PAYLOAD)
        stats = backend.stats()
        assert stats["name"] == backend.name
        assert stats["entries"] == 1
        assert stats["size_bytes"] > 0
        assert stats["location"]

    def test_kind_counts(self, backend):
        backend.put("aa" * 8, PAYLOAD)
        backend.put("bb" * 8, {"kind": "repro/other", "version": 1, "data": {}})
        assert backend.kind_counts() == {"repro/test-entry": 1, "repro/other": 1}

    def test_prune_explicit_keys(self, backend):
        backend.put("aa" * 8, PAYLOAD)
        backend.put("bb" * 8, PAYLOAD)
        assert backend.prune(["aa" * 8, "ee" * 8]) == 1
        assert backend.keys() == ["bb" * 8]

    def test_spec_reopens_same_store(self, backend):
        backend.put("aa" * 8, PAYLOAD)
        spec = backend.spec()
        assert spec is not None
        with create_backend(spec) as reopened:
            assert reopened.get("aa" * 8) == PAYLOAD


class TestCorruptEntries:
    def test_directory_corrupt_entry_is_a_miss_and_prunable(self, tmp_path):
        backend = DirectoryBackend(tmp_path / "store")
        backend.put("aa" * 8, PAYLOAD)
        (tmp_path / "store" / ("bb" * 8 + ".json")).write_text("{not json")
        assert backend.get("bb" * 8) is None
        assert len(backend) == 2  # corrupt entries still occupy a key
        assert backend.prune() == 1  # default prune: corrupt only
        assert backend.keys() == ["aa" * 8]

    def test_sqlite_corrupt_entry_is_a_miss_and_prunable(self, tmp_path):
        backend = SqliteBackend(tmp_path / "store.db")
        backend.put("aa" * 8, PAYLOAD)
        backend._connection.execute(
            "INSERT INTO entries (key, kind, version, payload) VALUES (?, '', 0, ?)",
            ("bb" * 8, "{not json"),
        )
        assert backend.get("bb" * 8) is None
        assert backend.prune() == 1
        assert backend.keys() == ["aa" * 8]


class TestSqliteSpecifics:
    def test_first_write_wins_transactionally(self, tmp_path):
        backend = SqliteBackend(tmp_path / "store.db")
        backend.put("aa" * 8, PAYLOAD)
        backend.put("aa" * 8, OTHER)
        assert backend.get("aa" * 8) == PAYLOAD

    def test_invalid_synchronous_mode(self, tmp_path):
        with pytest.raises(ValueError, match="synchronous"):
            SqliteBackend(tmp_path / "store.db", synchronous="sometimes")

    def test_spec_includes_only_non_default_options(self, tmp_path):
        plain = SqliteBackend(tmp_path / "a.db")
        assert plain.spec() == f"sqlite:path={tmp_path / 'a.db'}"
        tuned = SqliteBackend(tmp_path / "b.db", timeout=5.0, synchronous="full")
        spec = tuned.spec()
        assert "timeout=5" in spec and "synchronous=full" in spec

    def test_one_file_survives_reopen(self, tmp_path):
        path = tmp_path / "store.db"
        with SqliteBackend(path) as backend:
            backend.put("aa" * 8, PAYLOAD)
        with SqliteBackend(path) as backend:
            assert backend.get("aa" * 8) == PAYLOAD


class TestRegistry:
    def test_backend_names_and_listing(self):
        names = backend_names()
        assert "directory" in names and "sqlite" in names
        listing = format_backend_listing()
        assert "directory" in listing and "sqlite" in listing

    def test_parse_full_spec(self):
        name, options = parse_backend_spec("sqlite:path=cache.db,timeout=5")
        assert name == "sqlite"
        assert options == {"path": "cache.db", "timeout": 5}

    def test_bare_path_shortcuts(self):
        assert parse_backend_spec("cache.db")[0] == "sqlite"
        assert parse_backend_spec("warm.sqlite3")[0] == "sqlite"
        assert parse_backend_spec("my-cache")[0] == "directory"

    def test_unknown_backend_is_an_error(self):
        with pytest.raises(ValueError, match="unknown cache backend"):
            create_backend("redis:host=nope")

    def test_missing_required_option_is_an_error(self, tmp_path):
        with pytest.raises(ValueError, match="root"):
            create_backend("directory:wrong=1")
        with pytest.raises(ValueError, match="path"):
            create_backend("sqlite:wrong=1")

    def test_directory_subdir_namespaces(self, tmp_path):
        spec = f"directory:root={tmp_path / 'cache'}"
        with schedule_backend(spec) as schedules:
            assert schedules.root == tmp_path / "cache" / SCHEDULE_CACHE_SUBDIR
        with simulation_backend(spec) as sims:
            assert sims.root == tmp_path / "cache" / SIM_CACHE_SUBDIR

    def test_sqlite_ignores_subdir(self, tmp_path):
        spec = f"sqlite:path={tmp_path / 'cache.db'}"
        with schedule_backend(spec) as schedules, simulation_backend(spec) as sims:
            assert schedules.path == sims.path == tmp_path / "cache.db"

    def test_live_backend_passes_through(self, tmp_path):
        live = DirectoryBackend(tmp_path / "store")
        assert create_backend(live) is live
