"""Unit tests for period generation."""

import pytest

from repro.core import MS
from repro.taskgen import PAPER_HYPERPERIOD_MS, candidate_periods, draw_periods
from repro.taskgen.periods import divisors


class TestDivisors:
    def test_divisors_of_12(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]

    def test_divisors_of_prime(self):
        assert divisors(13) == [1, 13]

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            divisors(0)


class TestCandidatePeriods:
    def test_all_divide_hyperperiod(self):
        for period in candidate_periods():
            assert (PAPER_HYPERPERIOD_MS * MS) % period == 0

    def test_range_filter(self):
        periods = candidate_periods(min_period_ms=48, max_period_ms=480)
        assert min(periods) >= 48 * MS
        assert max(periods) <= 480 * MS

    def test_empty_range_raises(self):
        with pytest.raises(ValueError):
            candidate_periods(min_period_ms=1441)


class TestDrawPeriods:
    def test_count_and_membership(self):
        candidates = set(candidate_periods(min_period_ms=48, max_period_ms=480))
        drawn = draw_periods(50, rng=3, min_period_ms=48, max_period_ms=480)
        assert len(drawn) == 50
        assert all(period in candidates for period in drawn)

    def test_deterministic_with_seed(self):
        assert draw_periods(10, rng=11) == draw_periods(10, rng=11)

    def test_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            draw_periods(0, rng=1)
