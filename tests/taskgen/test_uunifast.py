"""Unit and property tests for the UUniFast utilisation generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.taskgen import uunifast, uunifast_discard


class TestUUniFast:
    def test_sums_to_total(self):
        values = uunifast(10, 0.5, rng=1)
        assert sum(values) == pytest.approx(0.5)
        assert len(values) == 10

    def test_all_non_negative(self):
        values = uunifast(20, 0.9, rng=2)
        assert all(v >= 0 for v in values)

    def test_single_task_gets_everything(self):
        assert uunifast(1, 0.3, rng=3) == [pytest.approx(0.3)]

    def test_deterministic_with_seed(self):
        assert uunifast(5, 0.4, rng=42) == uunifast(5, 0.4, rng=42)

    def test_accepts_generator_instance(self):
        rng = np.random.default_rng(7)
        values = uunifast(4, 0.2, rng=rng)
        assert sum(values) == pytest.approx(0.2)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            uunifast(0, 0.5)
        with pytest.raises(ValueError):
            uunifast(5, 0.0)

    @given(
        n=st.integers(min_value=1, max_value=30),
        total=st.floats(min_value=0.05, max_value=0.95),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=60)
    def test_property_sum_and_bounds(self, n, total, seed):
        values = uunifast(n, total, rng=seed)
        assert sum(values) == pytest.approx(total, rel=1e-9, abs=1e-12)
        assert all(0 <= v <= total + 1e-12 for v in values)


class TestUUniFastDiscard:
    def test_respects_cap(self):
        values = uunifast_discard(8, 0.4, rng=5, max_task_utilisation=0.25)
        assert all(v <= 0.25 for v in values)
        assert sum(values) == pytest.approx(0.4)

    def test_impossible_cap_raises(self):
        with pytest.raises(RuntimeError):
            uunifast_discard(2, 0.9, rng=1, max_task_utilisation=0.3, max_attempts=20)
