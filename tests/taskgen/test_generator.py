"""Unit and property tests for the synthetic-system generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MS
from repro.taskgen import GeneratorConfig, SystemGenerator


class TestSystemGenerator:
    def test_task_count_follows_paper_rule(self):
        generator = SystemGenerator(rng=1)
        assert generator.n_tasks_for_utilisation(0.5) == 10
        assert generator.n_tasks_for_utilisation(0.2) == 4
        assert len(generator.generate(0.3)) == 6

    def test_total_utilisation_close_to_target(self):
        task_set = SystemGenerator(rng=2).generate(0.6)
        assert task_set.utilisation == pytest.approx(0.6, abs=0.05)

    def test_hyperperiod_divides_1440ms(self):
        task_set = SystemGenerator(rng=3).generate(0.4)
        assert (1440 * MS) % task_set.hyperperiod() == 0

    def test_theta_is_quarter_period_and_at_least_wcet(self):
        task_set = SystemGenerator(rng=4).generate(0.7)
        for task in task_set:
            assert task.theta == task.period // 4
            assert task.theta >= task.wcet

    def test_delta_within_quality_window_bounds(self):
        task_set = SystemGenerator(rng=5).generate(0.5)
        for task in task_set:
            assert task.theta <= task.ideal_offset <= task.deadline - task.theta

    def test_vmax_is_priority_plus_one(self):
        task_set = SystemGenerator(rng=6).generate(0.5)
        for task in task_set:
            assert task.v_max == pytest.approx(task.priority + 1.0)
            assert task.v_min == pytest.approx(1.0)

    def test_dmpo_priorities_unique(self):
        task_set = SystemGenerator(rng=7).generate(0.6)
        priorities = [task.priority for task in task_set]
        assert len(set(priorities)) == len(priorities)

    def test_deterministic_with_seed(self):
        a = SystemGenerator(rng=42).generate(0.4)
        b = SystemGenerator(rng=42).generate(0.4)
        assert [(t.name, t.wcet, t.period, t.ideal_offset) for t in a] == [
            (t.name, t.wcet, t.period, t.ideal_offset) for t in b
        ]

    def test_multi_device_round_robin(self):
        config = GeneratorConfig(n_devices=3)
        task_set = SystemGenerator(config, rng=8).generate(0.6)
        assert len(task_set.devices) == 3

    def test_generate_many(self):
        systems = SystemGenerator(rng=9).generate_many(0.3, count=4)
        assert len(systems) == 4

    def test_invalid_inputs_rejected(self):
        generator = SystemGenerator(rng=1)
        with pytest.raises(ValueError):
            generator.generate(0.0)
        with pytest.raises(ValueError):
            generator.generate(0.3, n_tasks=0)
        with pytest.raises(ValueError):
            generator.generate_many(0.3, count=0)

    @given(
        utilisation=st.floats(min_value=0.2, max_value=0.9),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_generated_tasks_are_well_formed(self, utilisation, seed):
        task_set = SystemGenerator(rng=seed).generate(round(utilisation, 2))
        for task in task_set:
            assert 0 < task.wcet <= task.deadline == task.period
            assert task.theta >= task.wcet
            assert 0 <= task.ideal_offset <= task.deadline
        assert task_set.utilisation <= 1.0
