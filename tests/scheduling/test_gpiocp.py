"""Unit tests for the GPIOCP (FIFO) baseline scheduler."""

import pytest

from repro.core import MS, IOTask, TaskSet
from repro.scheduling import GPIOCPScheduler


def make_task(name, wcet, period, delta, priority=1):
    return IOTask(
        name=name,
        wcet=wcet * MS,
        period=period * MS,
        priority=priority,
        ideal_offset=delta * MS,
        theta=(period // 4) * MS,
    )


class TestGPIOCP:
    def test_uncontended_jobs_execute_exactly_on_time(self):
        ts = TaskSet([make_task("a", 2, 40, delta=10), make_task("b", 2, 40, delta=20)])
        result = GPIOCPScheduler().schedule_taskset(ts)
        assert result.schedulable
        assert result.psi == pytest.approx(1.0)
        assert result.upsilon == pytest.approx(1.0)

    def test_fifo_delays_later_request_on_conflict(self):
        ts = TaskSet([make_task("a", 4, 40, delta=10), make_task("b", 2, 40, delta=11)])
        result = GPIOCPScheduler().schedule_taskset(ts)
        schedule = result.per_device["dev0"].schedule
        a_job, b_job = ts.by_name("a").job(0), ts.by_name("b").job(0)
        assert schedule.start_of(a_job) == a_job.ideal_start
        assert schedule.start_of(b_job) == a_job.ideal_start + a_job.wcet
        assert result.psi == pytest.approx(0.5)

    def test_fifo_ties_broken_by_priority(self):
        ts = TaskSet(
            [
                make_task("lo", 2, 40, delta=10, priority=1),
                make_task("hi", 2, 40, delta=10, priority=2),
            ]
        )
        result = GPIOCPScheduler().schedule_taskset(ts)
        schedule = result.per_device["dev0"].schedule
        assert schedule.start_of(ts.by_name("hi").job(0)) == 10 * MS
        assert schedule.start_of(ts.by_name("lo").job(0)) == 12 * MS

    def test_queue_backlog_can_miss_deadlines(self):
        # Three long requests near the end of a short period overload the FIFO.
        ts = TaskSet(
            [
                make_task("a", 5, 20, delta=14),
                make_task("b", 5, 20, delta=14),
                make_task("c", 5, 20, delta=14),
            ]
        )
        result = GPIOCPScheduler().schedule_taskset(ts)
        assert not result.schedulable
        # Quality metrics are still computed for the produced (FIFO) ordering.
        assert 0.0 <= result.upsilon <= 1.0

    def test_info_reports_queue_delays(self):
        ts = TaskSet([make_task("a", 4, 40, delta=10), make_task("b", 2, 40, delta=11)])
        result = GPIOCPScheduler().schedule_taskset(ts)
        assert result.per_device["dev0"].info["queue_delayed"] == 1
