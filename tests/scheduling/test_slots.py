"""Unit tests for free-slot computation."""

import pytest

from repro.core import MS, IOTask, Schedule
from repro.scheduling.slots import FreeSlot, free_slots, slots_within_window, total_capacity


def make_task(name="t", delta=5 * MS):
    return IOTask(name=name, wcet=2 * MS, period=20 * MS, ideal_offset=delta, theta=4 * MS)


class TestFreeSlot:
    def test_capacity(self):
        assert FreeSlot(10, 25).capacity == 15

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            FreeSlot(10, 5)

    def test_overlap(self):
        slot = FreeSlot(10, 30)
        assert slot.overlap(0, 20) == FreeSlot(10, 20)
        assert slot.overlap(15, 50) == FreeSlot(15, 30)
        assert slot.overlap(30, 40) is None

    def test_can_fit_respects_release_window(self):
        job = make_task().job(0)  # window [0, 20 ms], wcet 2 ms
        assert FreeSlot(0, 3 * MS).can_fit(job)
        assert not FreeSlot(0, 1 * MS).can_fit(job)
        assert not FreeSlot(19 * MS, 25 * MS).can_fit(job)  # only 1 ms before deadline

    def test_fit_start_earliest_vs_ideal(self):
        job = make_task(delta=10 * MS).job(0)
        slot = FreeSlot(2 * MS, 18 * MS)
        assert slot.fit_start(job) == 2 * MS
        assert slot.fit_start(job, prefer_ideal=True) == 10 * MS

    def test_fit_start_clamps_ideal_to_slot(self):
        job = make_task(delta=16 * MS).job(0)
        slot = FreeSlot(2 * MS, 10 * MS)
        assert slot.fit_start(job, prefer_ideal=True) == 8 * MS

    def test_fit_start_none_when_too_small(self):
        job = make_task().job(0)
        assert FreeSlot(0, 1 * MS).fit_start(job) is None


class TestFreeSlots:
    def test_slots_around_busy_intervals(self):
        a, b = make_task("a", delta=5 * MS), make_task("b", delta=10 * MS)
        schedule = Schedule()
        schedule.set_start(a.job(0), 5 * MS)
        schedule.set_start(b.job(0), 10 * MS)
        slots = free_slots(schedule, 20 * MS)
        assert slots == [
            FreeSlot(0, 5 * MS),
            FreeSlot(7 * MS, 10 * MS),
            FreeSlot(12 * MS, 20 * MS),
        ]

    def test_slots_within_window(self):
        slots = [FreeSlot(0, 5), FreeSlot(10, 20), FreeSlot(30, 40)]
        clipped = slots_within_window(slots, 3, 32)
        assert clipped == [FreeSlot(3, 5), FreeSlot(10, 20), FreeSlot(30, 32)]

    def test_total_capacity(self):
        assert total_capacity([FreeSlot(0, 5), FreeSlot(10, 12)]) == 7
