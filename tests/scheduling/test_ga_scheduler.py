"""Unit tests for the GA-based scheduler wrapper."""

import pytest

from repro.core import MS, IOTask, TaskSet, validate_schedule
from repro.scheduling import GAConfig, GAScheduler, HeuristicScheduler


def make_task(name, wcet, period, delta, priority=1):
    return IOTask(
        name=name,
        wcet=wcet * MS,
        period=period * MS,
        priority=priority,
        ideal_offset=delta * MS,
        theta=(period // 4) * MS,
    )


def small_config(**overrides):
    params = dict(population_size=16, generations=8, seed=0)
    params.update(overrides)
    return GAConfig(**params)


class TestGAScheduler:
    def test_empty_partition(self):
        result = GAScheduler(small_config()).schedule_jobs([], horizon=1000)
        assert result.schedulable

    def test_conflict_free_system_reaches_full_accuracy(self):
        ts = TaskSet([make_task("a", 2, 40, delta=10), make_task("b", 2, 40, delta=20)])
        result = GAScheduler(small_config()).schedule_taskset(ts)
        assert result.schedulable
        assert result.psi == pytest.approx(1.0)
        assert result.upsilon == pytest.approx(1.0)

    def test_produced_schedule_is_valid(self):
        ts = TaskSet(
            [
                make_task("a", 4, 40, delta=10),
                make_task("b", 4, 40, delta=11),
                make_task("c", 4, 80, delta=30),
            ]
        )
        result = GAScheduler(small_config()).schedule_taskset(ts)
        assert result.schedulable
        schedule = result.per_device["dev0"].schedule
        assert validate_schedule(schedule, ts.jobs(), raise_on_error=False) == []

    def test_info_exposes_pareto_front_and_best_points(self):
        ts = TaskSet(
            [
                make_task("a", 4, 40, delta=10),
                make_task("b", 4, 40, delta=11),
            ]
        )
        info = GAScheduler(small_config()).schedule_taskset(ts).per_device["dev0"].info
        assert info["pareto_size"] >= 1
        assert 0.0 <= info["best_psi"] <= 1.0
        assert 0.0 <= info["best_upsilon"] <= 1.0
        assert info["best_psi_schedule"] is not None
        assert info["best_upsilon_schedule"] is not None
        # The best-Psi point cannot have lower Psi than the best-Upsilon point,
        # and vice versa for Upsilon (they are extremes of the same front).
        assert info["best_psi"] >= info["best_upsilon_psi"] - 1e-12
        assert info["best_upsilon"] >= info["best_psi_upsilon"] - 1e-12

    def test_seeding_makes_ga_at_least_as_good_as_heuristic(self):
        ts = TaskSet(
            [
                make_task("a", 4, 40, delta=10),
                make_task("b", 4, 40, delta=11),
                make_task("c", 6, 80, delta=30),
                make_task("d", 6, 80, delta=33),
            ]
        )
        static = HeuristicScheduler().schedule_taskset(ts)
        ga = GAScheduler(small_config()).schedule_taskset(ts)
        assert ga.schedulable
        info = ga.per_device["dev0"].info
        assert info["best_psi"] >= static.psi - 1e-9
        assert info["best_upsilon"] >= static.upsilon - 1e-9

    def test_deterministic_with_seed(self):
        ts = TaskSet([make_task("a", 4, 40, delta=10), make_task("b", 4, 40, delta=11)])
        r1 = GAScheduler(small_config(seed=7)).schedule_taskset(ts)
        r2 = GAScheduler(small_config(seed=7)).schedule_taskset(ts)
        assert r1.psi == pytest.approx(r2.psi)
        assert r1.upsilon == pytest.approx(r2.upsilon)

    def test_paper_scale_config(self):
        config = GAConfig.paper_scale()
        assert config.population_size == 300
        assert config.generations == 500

    def test_infeasible_partition_reported(self):
        ts = TaskSet(
            [
                make_task("a", 12, 20, delta=5),
                make_task("b", 12, 20, delta=6),
            ]
        )
        result = GAScheduler(small_config()).schedule_taskset(ts)
        assert not result.schedulable
