"""Unit tests for the heuristic ("static") scheduler — Algorithm 1."""

import pytest

from repro.core import MS, IOTask, TaskSet, validate_schedule
from repro.scheduling import FPSOfflineScheduler, HeuristicScheduler
from repro.taskgen import SystemGenerator


def make_task(name, wcet, period, delta, priority=1, device="dev0"):
    return IOTask(
        name=name,
        wcet=wcet * MS,
        period=period * MS,
        priority=priority,
        ideal_offset=delta * MS,
        theta=(period // 4) * MS,
        device=device,
    )


class TestHeuristicScheduler:
    def test_empty_partition_is_schedulable(self):
        result = HeuristicScheduler().schedule_jobs([], horizon=1000)
        assert result.schedulable

    def test_conflict_free_jobs_all_exact(self):
        ts = TaskSet([make_task("a", 2, 40, delta=10), make_task("b", 2, 40, delta=20)])
        result = HeuristicScheduler().schedule_taskset(ts)
        assert result.schedulable
        assert result.psi == pytest.approx(1.0)

    def test_conflicting_pair_keeps_one_exact(self):
        ts = TaskSet([make_task("a", 4, 40, delta=10), make_task("b", 4, 40, delta=11)])
        result = HeuristicScheduler().schedule_taskset(ts)
        assert result.schedulable
        assert result.psi == pytest.approx(0.5)
        device_result = result.per_device["dev0"]
        assert device_result.info["n_sacrificed"] == 1

    def test_produced_schedules_always_valid(self):
        for seed in range(6):
            task_set = SystemGenerator(rng=seed).generate(0.5)
            result = HeuristicScheduler().schedule_taskset(task_set)
            if not result.schedulable:
                continue
            for device, partition in task_set.partition().items():
                schedule = result.per_device[device].schedule
                violations = validate_schedule(schedule, partition.jobs(), raise_on_error=False)
                assert violations == []

    def test_psi_at_least_as_high_as_fps(self):
        for seed in range(5):
            task_set = SystemGenerator(rng=100 + seed).generate(0.5)
            static = HeuristicScheduler().schedule_taskset(task_set)
            fps = FPSOfflineScheduler().schedule_taskset(task_set)
            if static.schedulable and fps.schedulable:
                assert static.psi >= fps.psi

    def test_multi_device_partitions_scheduled_independently(self):
        ts = TaskSet(
            [
                make_task("a", 4, 40, delta=10, device="d0"),
                make_task("b", 4, 40, delta=10, device="d1"),
            ]
        )
        result = HeuristicScheduler().schedule_taskset(ts)
        # Identical ideal times on different devices never conflict.
        assert result.schedulable
        assert result.psi == pytest.approx(1.0)

    def test_info_counts_are_consistent(self):
        ts = TaskSet(
            [
                make_task("a", 4, 40, delta=10),
                make_task("b", 4, 40, delta=11),
                make_task("c", 4, 40, delta=30),
            ]
        )
        info = HeuristicScheduler().schedule_taskset(ts).per_device["dev0"].info
        assert info["n_kept"] + info["n_sacrificed"] == info["n_input_jobs"]
        assert info["allocated_direct"] + info["allocated_by_shift"] == info["n_sacrificed"]

    def test_reports_infeasible_without_raising(self):
        # Overloaded partition (utilisation > 1): must return infeasible cleanly.
        ts = TaskSet(
            [
                make_task("a", 12, 20, delta=5),
                make_task("b", 12, 20, delta=6),
            ]
        )
        result = HeuristicScheduler().schedule_taskset(ts)
        assert not result.schedulable
