"""Unit tests for the FPS-offline baseline scheduler."""

import pytest

from repro.core import MS, IOTask, TaskSet, validate_schedule
from repro.scheduling import FPSOfflineScheduler


def make_task(name, wcet, period, priority, delta=None):
    period_us = period * MS
    return IOTask(
        name=name,
        wcet=wcet * MS,
        period=period_us,
        priority=priority,
        ideal_offset=(period_us // 2) if delta is None else delta * MS,
        theta=period_us // 4,
    )


class TestFPSOffline:
    def test_empty_partition(self):
        result = FPSOfflineScheduler().schedule_jobs([], horizon=1000)
        assert result.schedulable
        assert len(result.schedule) == 0

    def test_highest_priority_runs_first_at_synchronous_release(self):
        ts = TaskSet(
            [
                make_task("hi", 2, 20, priority=2),
                make_task("lo", 3, 40, priority=1),
            ]
        )
        result = FPSOfflineScheduler().schedule_taskset(ts)
        schedule = result.per_device["dev0"].schedule
        hi_job = ts.by_name("hi").job(0)
        lo_job = ts.by_name("lo").job(0)
        assert schedule.start_of(hi_job) == 0
        assert schedule.start_of(lo_job) == 2 * MS

    def test_work_conserving_idles_until_next_release(self):
        ts = TaskSet([make_task("only", 2, 20, priority=1)])
        result = FPSOfflineScheduler().schedule_taskset(ts)
        schedule = result.per_device["dev0"].schedule
        # Every job starts exactly at its release (the device is otherwise idle).
        for entry in schedule.entries:
            assert entry.start == entry.job.release

    def test_produced_schedule_respects_constraints(self):
        ts = TaskSet(
            [
                make_task("a", 2, 20, priority=3),
                make_task("b", 4, 40, priority=2),
                make_task("c", 6, 80, priority=1),
            ]
        )
        result = FPSOfflineScheduler().schedule_taskset(ts)
        assert result.schedulable
        schedule = result.per_device["dev0"].schedule
        assert validate_schedule(schedule, ts.jobs(), raise_on_error=False) == []

    def test_detects_deadline_miss_from_blocking(self):
        # A long low-priority job started at time 0 can block a later release
        # of the short-deadline task past its deadline.
        ts = TaskSet(
            [
                make_task("short", 2, 10, priority=2, delta=5),
                make_task("long", 18, 60, priority=1, delta=20),
            ]
        )
        result = FPSOfflineScheduler().schedule_taskset(ts)
        assert not result.schedulable

    def test_psi_is_zero_under_fps(self):
        # FPS starts jobs as soon as possible, never at the (later) ideal instant.
        ts = TaskSet(
            [
                make_task("a", 2, 40, priority=2),
                make_task("b", 4, 80, priority=1),
            ]
        )
        result = FPSOfflineScheduler().schedule_taskset(ts)
        assert result.psi == 0.0
