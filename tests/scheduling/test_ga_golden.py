"""Golden determinism tests for the vectorized GA.

Two layers pin the stack's core invariant — GA results are a pure function of
(workload, spec, seed), independent of worker count and host:

* a pinned-seed regression fixture (``fixtures/ga_golden.json``, generated at
  the vectorization change) freezes one NSGA-II outcome end to end: Pareto
  front, best-per-objective points, and the chosen schedule's exact start
  times.  Any change to the RNG draw protocol, the repair function, or the
  archive semantics shows up here as a hard diff;
* service-level digests: ``ga:...`` requests replayed through
  :class:`SchedulingService` at 1 and 4 workers must produce bit-identical
  response content (and must still match the SHA-256 recorded in the
  fixture).
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.scheduling import GAConfig, GAScheduler
from repro.service import (
    ScheduleRequest,
    SchedulerSpec,
    SchedulingService,
    execute_request,
)
from repro.taskgen import GeneratorConfig, SystemGenerator

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "ga_golden.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE_PATH.read_text())


def response_digest(response) -> str:
    blob = json.dumps(response.result_dict(), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


class TestPinnedSeedRegression:
    """One NSGA2Result frozen at the vectorization change."""

    @pytest.fixture(scope="class")
    def result(self, golden):
        workload = golden["workload"]
        config = golden["config"]
        system = SystemGenerator(rng=workload["generator_rng"]).generate(
            workload["utilisation"]
        )
        return GAScheduler(GAConfig(**config)).schedule_taskset(system)

    def test_overall_metrics(self, golden, result):
        assert result.schedulable == golden["schedulable"]
        assert result.psi == golden["psi"]
        assert result.upsilon == golden["upsilon"]

    def test_pareto_front_and_best_points(self, golden, result):
        for device, expected in golden["per_device"].items():
            info = result.per_device[device].info
            assert info["generations_run"] == expected["generations_run"]
            assert info["evaluations"] == expected["evaluations"]
            assert info["pareto_size"] == expected["pareto_size"]
            front = [list(point) for point in info["pareto_front"]]
            assert front == expected["pareto_front"]
            for key in ("best_psi", "best_psi_upsilon", "best_upsilon", "best_upsilon_psi"):
                assert info[key] == expected[key]

    def test_chosen_schedule_start_times(self, golden, result):
        for device, expected in golden["per_device"].items():
            schedule = result.per_device[device].schedule
            starts = {
                f"{entry.job.key[0]}/{entry.job.key[1]}": entry.start
                for entry in schedule.entries
            }
            assert starts == expected["schedule"]


class TestServiceWorkerInvariance:
    """GA response content keys and payloads at 1 and 4 workers."""

    @pytest.fixture(scope="class")
    def requests(self, golden):
        requests = []
        for request_key in golden["service_responses"]:
            index, spec = request_key.split("/", 1)
            task_set = SystemGenerator(GeneratorConfig(), rng=int(index)).generate(0.4)
            requests.append(
                ScheduleRequest(
                    task_set=task_set,
                    spec=SchedulerSpec.parse(spec),
                    request_id=request_key,
                )
            )
        return requests

    def test_content_keys_match_fixture(self, golden, requests):
        for request in requests:
            expected = golden["service_responses"][request.request_id]
            assert request.content_key() == expected["content_key"]

    def test_response_digests_match_fixture_at_1_and_4_workers(self, golden, requests):
        for n_workers in (1, 4):
            with SchedulingService(n_workers=n_workers, cache=None) as service:
                responses = service.submit_batch(requests)
            for request, response in zip(requests, responses):
                expected = golden["service_responses"][request.request_id]
                assert response_digest(response) == expected["result_sha256"], (
                    f"{request.request_id} at {n_workers} worker(s)"
                )

    def test_direct_execution_matches_fixture(self, golden, requests):
        for request in requests:
            expected = golden["service_responses"][request.request_id]
            assert response_digest(execute_request(request)) == expected["result_sha256"]
