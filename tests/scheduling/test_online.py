"""The fps-online adapter lives in the scheduling layer, not the harness."""

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import FPSOnlineTest
from repro.scheduling import FPSOnlineSchedulabilityMethod, create_scheduler
from repro.taskgen import GeneratorConfig, SystemGenerator

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def test_adapter_matches_the_analysis():
    task_set = SystemGenerator(GeneratorConfig(), rng=4).generate(0.5)
    scheduler = create_scheduler("fps-online")
    assert isinstance(scheduler, FPSOnlineSchedulabilityMethod)
    assert scheduler.produces_schedule is False
    result = scheduler.schedule_taskset(task_set)
    assert result.schedulable == bool(FPSOnlineTest().is_schedulable(task_set))
    assert result.per_device == {}


def test_fps_online_resolves_without_the_experiments_package():
    """Regression: registration must not require importing repro.experiments."""
    probe = (
        "import sys\n"
        "from repro.scheduling import create_scheduler\n"
        "scheduler = create_scheduler('fps-online')\n"
        "assert scheduler.name == 'fps-online'\n"
        "assert not any(m.startswith('repro.experiments') for m in sys.modules), "
        "'importing repro.scheduling dragged in repro.experiments'\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", probe], capture_output=True, text=True, env=env, check=False
    )
    assert completed.returncode == 0, completed.stderr
