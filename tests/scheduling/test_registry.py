"""Unit tests for the scheduler registry."""

import pytest

from repro.scheduling import (
    FPSOfflineScheduler,
    GAConfig,
    GAScheduler,
    GPIOCPScheduler,
    HeuristicScheduler,
    available_schedulers,
    create_scheduler,
    get_scheduler_factory,
    list_schedulers,
    register_scheduler,
    scheduler_registered,
    unregister_scheduler,
)


class TestBuiltinRegistrations:
    def test_all_paper_methods_are_registered(self):
        for name in ("fps-offline", "fps", "gpiocp", "static", "heuristic", "ga"):
            assert scheduler_registered(name)

    def test_create_returns_fresh_instances(self):
        first = create_scheduler("static")
        second = create_scheduler("static")
        assert isinstance(first, HeuristicScheduler)
        assert first is not second

    def test_create_by_canonical_name_and_alias(self):
        assert isinstance(create_scheduler("fps-offline"), FPSOfflineScheduler)
        assert isinstance(create_scheduler("fps"), FPSOfflineScheduler)
        assert isinstance(create_scheduler("gpiocp"), GPIOCPScheduler)

    def test_ga_config_is_forwarded(self):
        config = GAConfig(population_size=5, generations=2, seed=7)
        scheduler = create_scheduler("ga", config)
        assert isinstance(scheduler, GAScheduler)
        assert scheduler.config is config

    def test_available_contains_builtins_and_is_sorted(self):
        names = available_schedulers()
        assert list(names) == sorted(names)
        assert {"fps-offline", "gpiocp", "static", "ga"} <= set(names)

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(KeyError, match="no-such-method"):
            create_scheduler("no-such-method")
        with pytest.raises(KeyError, match="gpiocp"):
            get_scheduler_factory("no-such-method")


class TestKeywordOverrides:
    def test_overrides_are_forwarded_to_the_factory(self):
        scheduler = create_scheduler("ga", generations=3, population_size=8, seed=1)
        assert scheduler.config.generations == 3
        assert scheduler.config.population_size == 8
        assert scheduler.config.seed == 1

    def test_overrides_compose_with_a_positional_config(self):
        base = GAConfig(population_size=5, generations=2, seed=7)
        scheduler = create_scheduler("ga", base, generations=9)
        assert scheduler.config.generations == 9
        assert scheduler.config.population_size == 5
        assert scheduler.config.seed == 7

    def test_plain_keyword_parameters_work_too(self):
        scheduler = create_scheduler("static", prefer_ideal_placement=True)
        assert scheduler.allocator.prefer_ideal_placement is True

    def test_rejected_keyword_names_the_factory(self):
        with pytest.raises(TypeError, match="GPIOCPScheduler"):
            create_scheduler("gpiocp", bogus=1)
        with pytest.raises(TypeError, match="'gpiocp'"):
            create_scheduler("gpiocp", bogus=1)

    def test_rejected_config_field_names_the_factory_and_lists_fields(self):
        with pytest.raises(TypeError, match="GAScheduler"):
            create_scheduler("ga", nonsense=2)
        with pytest.raises(TypeError, match="population_size"):
            create_scheduler("ga", nonsense=2)

    def test_factory_internal_type_errors_are_not_masked_without_overrides(self):
        def exploding():
            raise TypeError("internal failure")

        register_scheduler("test-exploding", exploding)
        try:
            with pytest.raises(TypeError, match="internal failure"):
                create_scheduler("test-exploding")
        finally:
            unregister_scheduler("test-exploding")


class TestRegistration:
    def test_register_decorator_and_unregister(self):
        @register_scheduler("test-dummy")
        class Dummy:
            def __init__(self):
                self.created = True

        try:
            assert scheduler_registered("test-dummy")
            assert create_scheduler("test-dummy").created
        finally:
            unregister_scheduler("test-dummy")
        assert not scheduler_registered("test-dummy")

    def test_register_direct_call_with_aliases(self):
        factory = lambda: "made"  # noqa: E731
        register_scheduler("test-direct", factory, aliases=("test-direct-alias",))
        try:
            assert create_scheduler("test-direct") == "made"
            assert create_scheduler("test-direct-alias") == "made"
        finally:
            unregister_scheduler("test-direct")
            unregister_scheduler("test-direct-alias")

    def test_duplicate_registration_rejected(self):
        register_scheduler("test-dup", lambda: 1)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scheduler("test-dup", lambda: 2)
            # Re-registering the *same* factory is a no-op, not an error.
            factory = get_scheduler_factory("test-dup")
            register_scheduler("test-dup", factory)
        finally:
            unregister_scheduler("test-dup")

    def test_overwrite_replaces_factory(self):
        register_scheduler("test-overwrite", lambda: "old")
        try:
            register_scheduler("test-overwrite", lambda: "new", overwrite=True)
            assert create_scheduler("test-overwrite") == "new"
        finally:
            unregister_scheduler("test-overwrite")

    def test_unregister_unknown_raises(self):
        with pytest.raises(KeyError):
            unregister_scheduler("never-registered")

    def test_conflicting_alias_leaves_no_partial_registration(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheduler("test-partial", lambda: 1, aliases=("fps",))
        assert not scheduler_registered("test-partial")


class TestListSchedulers:
    def test_covers_every_registered_name(self):
        listing = list_schedulers()
        assert set(listing) == set(available_schedulers())

    def test_aliases_point_at_the_same_factory(self):
        listing = list_schedulers()
        assert listing["fps"] == listing["fps-offline"]
        assert listing["heuristic"] == listing["static"]
        assert "HeuristicScheduler" in listing["static"]

    def test_reflects_dynamic_registrations(self):
        register_scheduler("test-listed", lambda: 1)
        try:
            assert "test-listed" in list_schedulers()
        finally:
            unregister_scheduler("test-listed")
        assert "test-listed" not in list_schedulers()
