"""Unit tests for the LCC-D allocation (Algorithm 1, phase 3)."""

import pytest

from repro.core import MS, IOTask, validate_schedule
from repro.scheduling.lccd import LCCDAllocator


def make_task(name, delta, wcet=2 * MS, period=40 * MS, priority=1, theta=None):
    return IOTask(
        name=name,
        wcet=wcet,
        period=period,
        priority=priority,
        ideal_offset=delta,
        theta=period // 4 if theta is None else theta,
    )


class TestDirectAllocation:
    def test_sacrificed_job_placed_in_free_slot(self):
        kept = [make_task("k", 10 * MS).job(0)]
        sacrificed = [make_task("s", 11 * MS).job(0)]
        schedule, report = LCCDAllocator().allocate(kept, sacrificed, horizon=40 * MS)
        assert schedule is not None
        assert report.allocated_direct == 1
        assert validate_schedule(schedule, kept + sacrificed, raise_on_error=False) == []

    def test_kept_jobs_remain_at_ideal_start(self):
        kept = [make_task("k1", 10 * MS).job(0), make_task("k2", 20 * MS).job(0)]
        sacrificed = [make_task("s", 11 * MS).job(0)]
        schedule, _ = LCCDAllocator().allocate(kept, sacrificed, horizon=40 * MS)
        for job in kept:
            assert schedule.start_of(job) == job.ideal_start

    def test_prefer_ideal_placement_improves_quality(self):
        # The kept job occupies [1, 3) ms, so the only slot that can hold the
        # sacrificed job is [3, 40) ms; with prefer_ideal the job lands exactly
        # on its ideal start inside that slot.
        kept = [make_task("k", 1 * MS).job(0)]
        sacrificed = [make_task("s", 20 * MS).job(0)]
        default_schedule, _ = LCCDAllocator().allocate(kept, sacrificed, 40 * MS)
        ideal_schedule, _ = LCCDAllocator(prefer_ideal_placement=True).allocate(
            kept, sacrificed, 40 * MS
        )
        sacrificed_job = sacrificed[0]
        assert ideal_schedule.start_of(sacrificed_job) == sacrificed_job.ideal_start
        assert default_schedule.start_of(sacrificed_job) <= ideal_schedule.start_of(sacrificed_job)

    def test_empty_inputs(self):
        schedule, report = LCCDAllocator().allocate([], [], horizon=10 * MS)
        assert schedule is not None
        assert len(schedule) == 0
        assert report.feasible


class TestShiftAllocation:
    def test_allocation_by_shifting_kept_jobs(self):
        # Two kept jobs fragment the sacrificed job's window into slots that are
        # individually too small, but shifting one kept job merges enough room.
        kept = [
            make_task("k1", 4 * MS, wcet=4 * MS, period=20 * MS).job(0),
            make_task("k2", 11 * MS, wcet=4 * MS, period=20 * MS).job(0),
        ]
        sacrificed = [
            make_task("s", 8 * MS, wcet=6 * MS, period=20 * MS, theta=5 * MS).job(0)
        ]
        schedule, report = LCCDAllocator().allocate(kept, sacrificed, horizon=20 * MS)
        assert schedule is not None
        assert report.allocated_by_shift == 1
        assert validate_schedule(schedule, kept + sacrificed, raise_on_error=False) == []

    def test_infeasible_when_capacity_insufficient(self):
        # Total demand exceeds the window: allocation must fail, not crash.
        kept = [make_task("k", 2 * MS, wcet=8 * MS, period=16 * MS).job(0)]
        sacrificed = [
            make_task("s1", 4 * MS, wcet=6 * MS, period=16 * MS).job(0),
            make_task("s2", 6 * MS, wcet=6 * MS, period=16 * MS).job(0),
        ]
        schedule, report = LCCDAllocator().allocate(kept, sacrificed, horizon=16 * MS)
        assert schedule is None
        assert not report.feasible
        assert report.failed_job is not None


class TestPriorityOrdering:
    def test_highest_priority_sacrificed_job_allocated_first(self):
        kept = [make_task("k", 10 * MS).job(0)]
        high = make_task("high", 11 * MS, priority=5).job(0)
        low = make_task("low", 12 * MS, priority=1).job(0)
        schedule, _ = LCCDAllocator().allocate(kept, [low, high], horizon=40 * MS)
        assert schedule is not None
        # Both fit, but the higher-priority job is handled first and therefore
        # claims the earlier (smaller-contention) placement.
        assert schedule.start_of(high) <= schedule.start_of(low)
