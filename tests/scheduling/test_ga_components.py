"""Unit tests for the GA building blocks: encoding, constraints, repair, NSGA-II."""

import numpy as np
import pytest

from repro.core import MS, IOTask
from repro.scheduling.ga import (
    GAProblem,
    crowding_distance,
    fast_non_dominated_sort,
    first_interfering_job_index,
    interfering_jobs,
    last_interfering_job_index,
    reconfigure,
    satisfies_constraint1,
    satisfies_constraint2,
)
from repro.scheduling.ga.nsga2 import ParetoArchive, dominates
from repro.scheduling.ga.operators import initial_population, mutate, uniform_crossover
from repro.scheduling.ga.reconfiguration import evaluate


def make_task(name, wcet=2 * MS, period=40 * MS, delta=10 * MS, priority=1):
    return IOTask(
        name=name, wcet=wcet, period=period, priority=priority,
        ideal_offset=delta, theta=period // 4,
    )


class TestConstraints:
    def test_constraint1(self):
        job = make_task("a").job(0)
        assert satisfies_constraint1(job, job.release)
        assert satisfies_constraint1(job, job.deadline - job.wcet)
        assert not satisfies_constraint1(job, job.deadline - job.wcet + 1)
        assert not satisfies_constraint1(job, job.release - 1)

    def test_constraint2(self):
        a = make_task("a").job(0)
        b = make_task("b").job(0)
        assert satisfies_constraint2(a, 0, b, 2 * MS)
        assert satisfies_constraint2(a, 2 * MS, b, 0)
        assert not satisfies_constraint2(a, 0, b, MS)

    def test_interference_bounds_equations_4_and_5(self):
        job = make_task("a", period=40 * MS).job(1)  # window [40, 80) ms
        other = make_task("b", period=15 * MS)
        assert first_interfering_job_index(job, other) == 40 * MS // (15 * MS) - 1  # = 1
        assert last_interfering_job_index(job, other) == -(-80 * MS // (15 * MS))  # = 6

    def test_interfering_jobs_bounded_by_horizon(self):
        job = make_task("a", period=40 * MS).job(0)
        other = make_task("b", period=20 * MS)
        jobs = interfering_jobs(job, [other], horizon=40 * MS)
        assert {j.index for j in jobs} == {0, 1}
        assert all(j.task.name == "b" for j in jobs)


class TestGAProblem:
    def test_gene_bounds_are_timing_boundary(self):
        problem = GAProblem(jobs=[make_task("a").job(0)], horizon=40 * MS)
        lo, hi = problem.gene_bounds(0)
        job = problem.jobs[0]
        assert lo == job.ideal_start - job.task.theta
        assert hi == job.ideal_start + job.task.theta

    def test_full_bounds_are_constraint1(self):
        problem = GAProblem(jobs=[make_task("a").job(0)], horizon=40 * MS)
        lo, hi = problem.full_bounds(0)
        job = problem.jobs[0]
        assert (lo, hi) == (job.release, job.deadline - job.wcet)

    def test_random_genes_within_bounds(self):
        jobs = [make_task(f"t{i}", delta=(10 + i) * MS).job(0) for i in range(5)]
        problem = GAProblem(jobs=jobs, horizon=40 * MS)
        rng = np.random.default_rng(0)
        genes = problem.random_genes(rng)
        for index in range(problem.n_genes):
            lo, hi = problem.gene_bounds(index)
            assert lo <= genes[index] <= hi

    def test_rejects_multi_device_partition(self):
        a = make_task("a")
        b = IOTask(name="b", wcet=MS, period=40 * MS, ideal_offset=0, theta=0, device="other")
        with pytest.raises(ValueError):
            GAProblem(jobs=[a.job(0), b.job(0)], horizon=40 * MS)

    def test_clamp(self):
        problem = GAProblem(jobs=[make_task("a").job(0)], horizon=40 * MS)
        clamped = problem.clamp(np.array([10_000_000]))
        lo, hi = problem.full_bounds(0)
        assert lo <= clamped[0] <= hi


class TestReconfiguration:
    def test_conflict_free_genes_untouched(self):
        jobs = [make_task("a", delta=10 * MS).job(0), make_task("b", delta=20 * MS).job(0)]
        schedule = reconfigure(jobs, [jobs[0].ideal_start, jobs[1].ideal_start])
        assert schedule.start_of(jobs[0]) == jobs[0].ideal_start
        assert schedule.start_of(jobs[1]) == jobs[1].ideal_start

    def test_conflicting_genes_are_serialised(self):
        jobs = [make_task("a", wcet=4 * MS).job(0), make_task("b", wcet=4 * MS, delta=11 * MS).job(0)]
        schedule = reconfigure(jobs, [10 * MS, 11 * MS])
        assert schedule.start_of(jobs[0]) == 10 * MS
        assert schedule.start_of(jobs[1]) == 14 * MS

    def test_same_start_executes_higher_priority_first(self):
        hi = make_task("hi", priority=5).job(0)
        lo = make_task("lo", priority=1).job(0)
        schedule = reconfigure([lo, hi], [10 * MS, 10 * MS])
        assert schedule.start_of(hi) == 10 * MS
        assert schedule.start_of(lo) == 10 * MS + hi.wcet

    def test_snap_to_ideal_when_possible(self):
        job = make_task("a", delta=10 * MS).job(0)
        schedule = reconfigure([job], [12 * MS])
        assert schedule.start_of(job) == job.ideal_start

    def test_infeasible_returns_none(self):
        # Two jobs that cannot both fit before their (equal) deadlines.
        a = IOTask(name="a", wcet=12 * MS, period=20 * MS, ideal_offset=5 * MS, theta=5 * MS)
        b = IOTask(name="b", wcet=12 * MS, period=20 * MS, ideal_offset=6 * MS, theta=5 * MS)
        assert reconfigure([a.job(0), b.job(0)], [5 * MS, 6 * MS]) is None

    def test_evaluate_returns_minus_one_for_infeasible(self):
        a = IOTask(name="a", wcet=12 * MS, period=20 * MS, ideal_offset=5 * MS, theta=5 * MS)
        b = IOTask(name="b", wcet=12 * MS, period=20 * MS, ideal_offset=6 * MS, theta=5 * MS)
        psi_value, upsilon_value, schedule = evaluate([a.job(0), b.job(0)], [5 * MS, 6 * MS])
        assert (psi_value, upsilon_value) == (-1.0, -1.0)
        assert schedule is None


class TestNSGA2Machinery:
    def test_dominates(self):
        assert dominates((1.0, 1.0), (0.5, 1.0))
        assert not dominates((0.5, 1.0), (1.0, 0.5))
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_fast_non_dominated_sort(self):
        objectives = [(1.0, 0.0), (0.0, 1.0), (0.5, 0.5), (0.2, 0.2)]
        fronts = fast_non_dominated_sort(objectives)
        assert set(fronts[0]) == {0, 1, 2}
        assert set(fronts[1]) == {3}

    def test_crowding_distance_extremes_infinite(self):
        objectives = [(0.0, 1.0), (0.5, 0.5), (1.0, 0.0)]
        distances = crowding_distance(objectives, [0, 1, 2])
        assert distances[0] == float("inf")
        assert distances[2] == float("inf")
        assert 0 < distances[1] < float("inf")

    def test_pareto_archive_keeps_only_non_dominated(self):
        archive = ParetoArchive()
        assert archive.add(np.array([1]), (0.5, 0.5), payload="a")
        assert archive.add(np.array([2]), (0.8, 0.2), payload="b")
        assert not archive.add(np.array([3]), (0.4, 0.4), payload="dominated")
        assert archive.add(np.array([4]), (0.9, 0.9), payload="dominator")
        assert len(archive) == 1
        assert archive.best_by(0).payload == "dominator"


class TestOperators:
    def make_problem(self):
        jobs = [make_task(f"t{i}", delta=(8 + 3 * i) * MS).job(0) for i in range(4)]
        return GAProblem(jobs=jobs, horizon=40 * MS)

    def test_initial_population_size_and_seeds(self):
        problem = self.make_problem()
        rng = np.random.default_rng(1)
        seeds = [problem.ideal_genes()]
        population = initial_population(problem, 10, rng, seeds=seeds)
        assert len(population) == 10
        assert np.array_equal(population[0], problem.clamp(problem.ideal_genes()))

    def test_uniform_crossover_preserves_gene_values(self):
        problem = self.make_problem()
        rng = np.random.default_rng(2)
        a, b = problem.random_genes(rng), problem.random_genes(rng)
        child_a, child_b = uniform_crossover(a, b, rng)
        for i in range(problem.n_genes):
            assert {child_a[i], child_b[i]} == {a[i], b[i]}

    def test_mutation_stays_within_bounds(self):
        problem = self.make_problem()
        rng = np.random.default_rng(3)
        genes = problem.random_genes(rng)
        mutated = mutate(problem, genes, rng, gene_mutation_probability=1.0)
        for i in range(problem.n_genes):
            lo, hi = problem.gene_bounds(i)
            assert lo <= mutated[i] <= hi
