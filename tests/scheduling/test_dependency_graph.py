"""Unit tests for dependency-graph formation and decomposition (Algorithm 1, phases 1-2)."""

import pytest

from repro.core import MS, IOTask
from repro.scheduling import build_dependency_graphs, decompose_graphs


def job_at(name, ideal_offset, wcet=2 * MS, period=100 * MS, priority=1):
    task = IOTask(
        name=name,
        wcet=wcet,
        period=period,
        priority=priority,
        ideal_offset=ideal_offset,
        theta=10 * MS,
    )
    return task.job(0)


class TestGraphFormation:
    def test_isolated_job_forms_singleton_component(self):
        graphs = build_dependency_graphs([job_at("a", 5 * MS)])
        assert len(graphs.components) == 1
        assert graphs.penalty_weight(graphs.jobs[0]) == 0

    def test_paper_figure2_example(self):
        # Reconstruction of Figure 2: nine jobs, four dependency graphs.
        jobs = [
            job_at("j1", 0 * MS, wcet=3 * MS),            # isolated
            job_at("j2", 10 * MS, wcet=4 * MS),
            job_at("j3", 13 * MS, wcet=4 * MS),            # overlaps j2 and j4
            job_at("j4", 16 * MS, wcet=3 * MS),            # overlaps j3 and j5
            job_at("j5", 18 * MS, wcet=3 * MS),            # overlaps j4
            job_at("j6", 25 * MS, wcet=3 * MS),            # isolated
            job_at("j7", 40 * MS, wcet=5 * MS),
            job_at("j8", 42 * MS, wcet=5 * MS),
            job_at("j9", 44 * MS, wcet=5 * MS),
        ]
        graphs = build_dependency_graphs(jobs)
        components = graphs.components
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 1, 3, 4]

    def test_penalty_weight_counts_conflicts(self):
        jobs = [
            job_at("a", 10 * MS, wcet=4 * MS),
            job_at("b", 12 * MS, wcet=4 * MS),
            job_at("c", 14 * MS, wcet=4 * MS),
        ]
        graphs = build_dependency_graphs(jobs)
        weights = {job.task.name: graphs.penalty_weight(job) for job in graphs.jobs}
        assert weights == {"a": 1, "b": 2, "c": 1}

    def test_back_to_back_jobs_do_not_conflict(self):
        jobs = [job_at("a", 10 * MS, wcet=2 * MS), job_at("b", 12 * MS, wcet=2 * MS)]
        graphs = build_dependency_graphs(jobs)
        assert graphs.graph.number_of_edges() == 0


class TestDecomposition:
    def test_no_conflicts_keeps_everything(self):
        jobs = [job_at("a", 0), job_at("b", 10 * MS), job_at("c", 20 * MS)]
        kept, sacrificed = decompose_graphs(build_dependency_graphs(jobs))
        assert len(kept) == 3
        assert sacrificed == []

    def test_chain_of_three_sacrifices_middle_job(self):
        jobs = [
            job_at("a", 10 * MS, wcet=4 * MS),
            job_at("b", 12 * MS, wcet=4 * MS),
            job_at("c", 14 * MS, wcet=4 * MS),
        ]
        kept, sacrificed = decompose_graphs(build_dependency_graphs(jobs))
        assert {job.task.name for job in kept} == {"a", "c"}
        assert [job.task.name for job in sacrificed] == ["b"]

    def test_tie_broken_towards_lowest_priority(self):
        jobs = [
            job_at("hi", 10 * MS, wcet=4 * MS, priority=5),
            job_at("lo", 12 * MS, wcet=4 * MS, priority=1),
        ]
        kept, sacrificed = decompose_graphs(build_dependency_graphs(jobs))
        assert [job.task.name for job in sacrificed] == ["lo"]
        assert [job.task.name for job in kept] == ["hi"]

    def test_kept_jobs_never_overlap_at_ideal_times(self):
        jobs = [job_at(f"t{i}", (10 + 3 * i) * MS, wcet=5 * MS) for i in range(6)]
        kept, _ = decompose_graphs(build_dependency_graphs(jobs))
        ordered = sorted(kept, key=lambda j: j.ideal_start)
        for first, second in zip(ordered, ordered[1:]):
            assert first.ideal_start + first.wcet <= second.ideal_start

    def test_kept_plus_sacrificed_is_input(self):
        jobs = [job_at(f"t{i}", (10 + 2 * i) * MS, wcet=3 * MS) for i in range(8)]
        kept, sacrificed = decompose_graphs(build_dependency_graphs(jobs))
        assert len(kept) + len(sacrificed) == len(jobs)
        assert {j.key for j in kept} | {j.key for j in sacrificed} == {j.key for j in jobs}
