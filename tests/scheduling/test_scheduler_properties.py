"""Property-based tests: every scheduler produces constraint-respecting schedules.

The invariants checked here are the two execution-model constraints of the
paper (release/deadline windows, non-overlap per device) plus metric sanity,
over randomly generated systems from the paper's workload generator.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import validate_schedule
from repro.scheduling import (
    FPSOfflineScheduler,
    GAConfig,
    GAScheduler,
    GPIOCPScheduler,
    HeuristicScheduler,
)
from repro.taskgen import SystemGenerator

SLOW_SETTINGS = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def generate(seed: int, utilisation: float):
    return SystemGenerator(rng=seed).generate(round(utilisation, 2))


class TestScheduleValidityProperties:
    @given(seed=st.integers(0, 200), utilisation=st.floats(0.2, 0.7))
    @SLOW_SETTINGS
    def test_heuristic_schedules_are_always_valid_when_feasible(self, seed, utilisation):
        task_set = generate(seed, utilisation)
        result = HeuristicScheduler().schedule_taskset(task_set)
        if not result.schedulable:
            return
        for device, partition in task_set.partition().items():
            schedule = result.per_device[device].schedule
            assert validate_schedule(schedule, partition.jobs(), raise_on_error=False) == []

    @given(seed=st.integers(0, 200), utilisation=st.floats(0.2, 0.7))
    @SLOW_SETTINGS
    def test_fps_offline_schedules_cover_all_jobs_without_overlap(self, seed, utilisation):
        task_set = generate(seed, utilisation)
        result = FPSOfflineScheduler().schedule_taskset(task_set)
        for device, partition in task_set.partition().items():
            schedule = result.per_device[device].schedule
            violations = validate_schedule(schedule, partition.jobs(), raise_on_error=False)
            # FPS may miss deadlines, but never drops a job, overlaps executions
            # or starts a job before its release.
            assert not any("missing" in v for v in violations)
            assert not any("overlap" in v for v in violations)
            assert not any("before its release" in v for v in violations)

    @given(seed=st.integers(0, 200), utilisation=st.floats(0.2, 0.7))
    @SLOW_SETTINGS
    def test_gpiocp_never_starts_before_the_request_instant(self, seed, utilisation):
        task_set = generate(seed, utilisation)
        result = GPIOCPScheduler().schedule_taskset(task_set)
        for device_result in result.per_device.values():
            for entry in device_result.schedule.entries:
                assert entry.start >= entry.job.ideal_start

    @given(seed=st.integers(0, 100), utilisation=st.floats(0.2, 0.5))
    @settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_ga_schedules_are_valid_and_metrics_bounded(self, seed, utilisation):
        task_set = generate(seed, utilisation)
        result = GAScheduler(GAConfig(population_size=12, generations=5, seed=seed)).schedule_taskset(task_set)
        assert 0.0 <= result.psi <= 1.0
        assert 0.0 <= result.upsilon <= 1.0
        if result.schedulable:
            for device, partition in task_set.partition().items():
                schedule = result.per_device[device].schedule
                assert validate_schedule(schedule, partition.jobs(), raise_on_error=False) == []

    @given(seed=st.integers(0, 200), utilisation=st.floats(0.2, 0.7))
    @SLOW_SETTINGS
    def test_static_psi_never_below_gpiocp_on_schedulable_systems(self, seed, utilisation):
        # The heuristic explicitly maximises the number of exact jobs, so when it
        # finds a feasible schedule it is essentially never less exact than FIFO
        # ordering.  A small slack covers the rare case where the LCC-D shift
        # step has to move an already-exact job to keep the system schedulable.
        task_set = generate(seed, utilisation)
        static = HeuristicScheduler().schedule_taskset(task_set)
        gpiocp = GPIOCPScheduler().schedule_taskset(task_set)
        if static.schedulable and gpiocp.schedulable:
            assert static.psi >= gpiocp.psi - 0.05
