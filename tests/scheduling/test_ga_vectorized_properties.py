"""Property tests: the vectorized GA kernels exactly equal their scalar oracles.

Every vectorized kernel introduced by the NSGA-II array rewrite is checked
against the retained reference implementation for *exact* equality — same
fronts in the same order, bit-identical crowding distances and objectives —
on adversarial inputs: duplicated objective vectors, degenerate fronts where
every point ties on one objective, infeasible (-1, -1) rows, and partitions
whose repair has to serialise conflicting jobs.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MS, IOTask
from repro.scheduling.ga.constraints import (
    count_conflicts,
    count_conflicts_batch,
    satisfies_constraint1,
    constraint1_matrix,
    violations,
    violations_batch,
)
from repro.scheduling.ga.encoding import GAProblem
from repro.scheduling.ga.nsga2 import (
    _reference_crowding_distance,
    _reference_fast_non_dominated_sort,
    crowding_distance,
    dominates,
    domination_matrix,
    fast_non_dominated_sort,
)
from repro.scheduling.ga.reconfiguration import evaluate, evaluate_batch, reconfigure_batch

PROPERTY_SETTINGS = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# Small value pool so duplicates and degenerate (all-equal) fronts are common.
objective_values = st.sampled_from([-1.0, 0.0, 0.25, 0.5, 0.75, 1.0])
objective_sets = st.integers(1, 3).flatmap(
    lambda m: st.lists(
        st.tuples(*[objective_values] * m), min_size=1, max_size=24
    )
)


class TestDominationKernels:
    @given(objectives=objective_sets)
    @PROPERTY_SETTINGS
    def test_domination_matrix_matches_scalar_dominates(self, objectives):
        matrix = domination_matrix(np.asarray(objectives))
        for p, a in enumerate(objectives):
            for q, b in enumerate(objectives):
                assert bool(matrix[p, q]) == (p != q and dominates(a, b))

    @given(objectives=objective_sets)
    @PROPERTY_SETTINGS
    def test_fast_non_dominated_sort_equals_reference_exactly(self, objectives):
        # Not just the same partition into fronts: the same index order within
        # each front, so every downstream tie-break behaves identically.
        assert fast_non_dominated_sort(objectives) == _reference_fast_non_dominated_sort(
            objectives
        )

    @given(objectives=objective_sets)
    @PROPERTY_SETTINGS
    def test_crowding_distance_equals_reference_bitwise(self, objectives):
        for front in _reference_fast_non_dominated_sort(objectives):
            vectorized = crowding_distance(objectives, front)
            reference = _reference_crowding_distance(objectives, front)
            assert vectorized.keys() == reference.keys()
            for index in reference:
                # == on floats: inf == inf holds and any ULP drift fails.
                assert vectorized[index] == reference[index]


def build_problem(task_params):
    tasks = []
    for t, (period_ms, wcet_ms, delta_ms, theta_ms, priority) in enumerate(task_params):
        tasks.append(
            IOTask(
                name=f"t{t}",
                wcet=wcet_ms * MS,
                period=period_ms * MS,
                priority=priority,
                ideal_offset=delta_ms * MS,
                theta=theta_ms * MS,
            )
        )
    horizon = 80 * MS
    jobs = [task.job(i) for task in tasks for i in range(horizon // task.period)]
    return GAProblem(jobs=jobs, horizon=horizon)


task_param_lists = st.lists(
    st.tuples(
        st.sampled_from([20, 40, 80]),  # period (ms)
        st.integers(1, 6),  # wcet (ms)
        st.integers(0, 15),  # ideal offset (ms)
        st.integers(0, 12),  # theta (ms)
        st.integers(1, 3),  # priority
    ),
    min_size=1,
    max_size=5,
)


class TestBatchedFitnessKernels:
    @given(task_params=task_param_lists, seed=st.integers(0, 10_000))
    @PROPERTY_SETTINGS
    def test_evaluate_batch_matches_scalar_evaluate(self, task_params, seed):
        problem = build_problem(task_params)
        rng = np.random.default_rng(seed)
        population = problem.random_population(8, rng)
        objectives, starts, feasible = evaluate_batch(problem, population)
        for row in range(population.shape[0]):
            psi_value, upsilon_value, schedule = evaluate(problem.jobs, population[row])
            assert objectives[row, 0] == psi_value
            assert objectives[row, 1] == upsilon_value
            assert feasible[row] == (schedule is not None)
            if schedule is not None:
                scalar_starts = [schedule.start_of(job) for job in problem.jobs]
                assert scalar_starts == list(starts[row])

    @given(task_params=task_param_lists, seed=st.integers(0, 10_000))
    @PROPERTY_SETTINGS
    def test_reconfigure_batch_feasibility_matches_scalar(self, task_params, seed):
        problem = build_problem(task_params)
        rng = np.random.default_rng(seed)
        population = problem.random_population(6, rng)
        _, feasible = reconfigure_batch(problem, population)
        for row in range(population.shape[0]):
            _, _, schedule = evaluate(problem.jobs, population[row])
            assert feasible[row] == (schedule is not None)

    @given(task_params=task_param_lists, seed=st.integers(0, 10_000))
    @PROPERTY_SETTINGS
    def test_constraint_kernels_match_scalar_counts(self, task_params, seed):
        problem = build_problem(task_params)
        compiled = problem.compiled()
        rng = np.random.default_rng(seed)
        # Raw (unrepaired) genes: plenty of window and overlap violations.
        population = problem.random_population(6, rng)
        c1_matrix = constraint1_matrix(compiled, population)
        batch = violations_batch(compiled, population)
        for row in range(population.shape[0]):
            starts = [int(v) for v in population[row]]
            scalar = violations(problem.jobs, starts)
            assert batch["constraint1"][row] == scalar["constraint1"]
            assert batch["constraint2"][row] == scalar["constraint2"]
            assert batch["constraint2"][row] == count_conflicts(problem.jobs, starts)
            for index, job in enumerate(problem.jobs):
                assert bool(c1_matrix[row, index]) == satisfies_constraint1(
                    job, starts[index]
                )

    def test_count_conflicts_batch_handles_single_job(self):
        problem = build_problem([(40, 2, 10, 5, 1)])
        compiled = problem.compiled()
        starts = np.array([[compiled.ideal[0]]], dtype=np.int64)
        assert count_conflicts_batch(compiled, starts).tolist() == [0]
