"""Wire-protocol tests: framing edge cases and structured decode errors."""

import json

import pytest

from repro.server.protocol import (
    DEFAULT_MAX_LINE_BYTES,
    ERR_INVALID_JSON,
    ERR_INVALID_REQUEST,
    ERR_UNKNOWN_KIND,
    ERR_UNKNOWN_OP,
    ERR_VERSION_MISMATCH,
    OP_SCHEDULE,
    OP_SIMULATE,
    OP_STATS,
    SERVER_ERROR_KIND,
    SERVER_REQUEST_KIND,
    SERVER_RESPONSE_KIND,
    FrameDecoder,
    OversizedFrame,
    ProtocolError,
    decode_answer_line,
    decode_request_line,
    encode_error,
    encode_request,
    encode_response,
)


class TestFrameDecoder:
    def test_single_line(self):
        assert FrameDecoder().feed(b"hello\n") == [b"hello"]

    def test_multiple_lines_in_one_chunk(self):
        assert FrameDecoder().feed(b"a\nb\nc\n") == [b"a", b"b", b"c"]

    def test_line_split_across_feeds(self):
        decoder = FrameDecoder()
        assert decoder.feed(b"par") == []
        assert decoder.feed(b"tial\nrest\n") == [b"partial", b"rest"]

    def test_empty_lines_are_frames(self):
        assert FrameDecoder().feed(b"\n\n") == [b"", b""]

    def test_trailing_partial_is_buffered(self):
        decoder = FrameDecoder()
        assert decoder.feed(b"a\nb") == [b"a"]
        assert decoder.feed(b"\n") == [b"b"]

    def test_oversized_line_yields_marker(self):
        decoder = FrameDecoder(max_line_bytes=8)
        frames = decoder.feed(b"123456789\nok\n")
        assert frames == [OversizedFrame(9), b"ok"]

    def test_oversized_line_is_not_buffered(self):
        decoder = FrameDecoder(max_line_bytes=8)
        # Stream an oversized line in chunks: the decoder must track only the
        # running length, never the content.
        for _ in range(100):
            assert decoder.feed(b"x" * 10) == []
            assert len(decoder._buffer) <= 8 + 10
        frames = decoder.feed(b"tail\nafter\n")
        assert frames == [OversizedFrame(1004), b"after"]

    def test_resynchronises_after_oversized_line(self):
        decoder = FrameDecoder(max_line_bytes=4)
        assert decoder.feed(b"toolong") == []
        assert decoder.feed(b"er\nab\n") == [OversizedFrame(9), b"ab"]

    def test_exact_limit_is_accepted(self):
        decoder = FrameDecoder(max_line_bytes=4)
        assert decoder.feed(b"abcd\n") == [b"abcd"]
        assert decoder.feed(b"abcde\n") == [OversizedFrame(5)]

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            FrameDecoder(max_line_bytes=0)


def _decode_err(line: bytes) -> ProtocolError:
    with pytest.raises(ProtocolError) as exc_info:
        decode_request_line(line)
    return exc_info.value


class TestDecodeRequestLine:
    def test_wrapper_round_trip(self):
        line = encode_request(OP_SCHEDULE, tag="t1", payload={"kind": "x"})
        request = decode_request_line(line.rstrip(b"\n"))
        assert request.op == OP_SCHEDULE
        assert request.tag == "t1"
        assert request.payload == {"kind": "x"}

    def test_opless_ops_drop_payload(self):
        line = encode_request(OP_STATS, tag="s", payload=None)
        request = decode_request_line(line.rstrip(b"\n"))
        assert request.op == OP_STATS
        assert request.payload is None

    def test_bare_schedule_request_implies_op_and_tag(self):
        envelope = {
            "kind": "repro/schedule-request",
            "version": 1,
            "data": {"id": "req-7", "spec": {"name": "static"}},
        }
        request = decode_request_line(json.dumps(envelope).encode())
        assert request.op == OP_SCHEDULE
        assert request.tag == "req-7"
        assert request.payload == envelope

    def test_bare_sim_request_implies_op(self):
        envelope = {"kind": "repro/sim-request", "version": 1, "data": {"id": None}}
        request = decode_request_line(json.dumps(envelope).encode())
        assert request.op == OP_SIMULATE
        assert request.tag is None

    def test_truncated_json(self):
        error = _decode_err(b'{"kind": "repro/server-request", "version')
        assert error.code == ERR_INVALID_JSON

    def test_non_object_json(self):
        assert _decode_err(b"[1, 2, 3]").code == ERR_INVALID_JSON
        assert _decode_err(b"42").code == ERR_INVALID_JSON

    def test_invalid_utf8(self):
        assert _decode_err(b"\xff\xfe{}").code == ERR_INVALID_JSON

    def test_unknown_kind(self):
        line = json.dumps({"kind": "repro/unknown", "version": 1, "data": {}}).encode()
        assert _decode_err(line).code == ERR_UNKNOWN_KIND

    def test_missing_kind(self):
        assert _decode_err(b"{}").code == ERR_UNKNOWN_KIND

    def test_unknown_op_carries_tag(self):
        line = json.dumps(
            {
                "kind": SERVER_REQUEST_KIND,
                "version": 1,
                "data": {"op": "frobnicate", "tag": "t9"},
            }
        ).encode()
        error = _decode_err(line)
        assert error.code == ERR_UNKNOWN_OP
        assert error.tag == "t9"

    def test_newer_wrapper_version_rejected(self):
        line = json.dumps(
            {
                "kind": SERVER_REQUEST_KIND,
                "version": 99,
                "data": {"op": OP_STATS, "tag": "v"},
            }
        ).encode()
        error = _decode_err(line)
        assert error.code == ERR_VERSION_MISMATCH
        assert error.tag == "v"

    def test_non_integer_version_rejected(self):
        line = json.dumps(
            {"kind": SERVER_REQUEST_KIND, "version": "2", "data": {"op": OP_STATS}}
        ).encode()
        assert _decode_err(line).code == ERR_VERSION_MISMATCH

    def test_payload_op_requires_payload(self):
        line = json.dumps(
            {
                "kind": SERVER_REQUEST_KIND,
                "version": 1,
                "data": {"op": OP_SCHEDULE, "tag": "p"},
            }
        ).encode()
        error = _decode_err(line)
        assert error.code == ERR_INVALID_REQUEST
        assert error.tag == "p"

    def test_non_string_tag_rejected(self):
        line = json.dumps(
            {
                "kind": SERVER_REQUEST_KIND,
                "version": 1,
                "data": {"op": OP_STATS, "tag": 7},
            }
        ).encode()
        assert _decode_err(line).code == ERR_INVALID_REQUEST

    def test_non_object_data_rejected(self):
        line = json.dumps(
            {"kind": SERVER_REQUEST_KIND, "version": 1, "data": [1]}
        ).encode()
        assert _decode_err(line).code == ERR_INVALID_REQUEST


class TestAnswerEncoding:
    def test_response_round_trip(self):
        line = encode_response(OP_SCHEDULE, "t1", {"result": 1})
        envelope = decode_answer_line(line.rstrip(b"\n"))
        assert envelope["kind"] == SERVER_RESPONSE_KIND
        assert envelope["data"] == {"op": OP_SCHEDULE, "tag": "t1", "payload": {"result": 1}}

    def test_error_round_trip_with_retry_hint(self):
        line = encode_error("t2", "overloaded", "busy", retry_after_s=1.5)
        envelope = decode_answer_line(line.rstrip(b"\n"))
        assert envelope["kind"] == SERVER_ERROR_KIND
        assert envelope["data"]["error"] == "overloaded"
        assert envelope["data"]["retry_after_s"] == 1.5
        assert envelope["data"]["tag"] == "t2"

    def test_lines_are_single_lines(self):
        for line in (
            encode_request(OP_STATS, tag="a"),
            encode_response(OP_STATS, "a", {}),
            encode_error("a", "internal", "boom"),
        ):
            assert line.endswith(b"\n")
            assert line.count(b"\n") == 1

    def test_answer_rejects_request_kind(self):
        line = encode_request(OP_STATS, tag="a")
        with pytest.raises(ProtocolError):
            decode_answer_line(line.rstrip(b"\n"))

    def test_answer_rejects_invalid_json(self):
        with pytest.raises(ProtocolError):
            decode_answer_line(b"nope")

    def test_default_limit_fits_paper_scale_requests(self):
        assert DEFAULT_MAX_LINE_BYTES >= 1 << 20
