"""Dispatcher policy tests: dedup, admission control, drain, failure paths.

The services are replaced by gated stubs whose ``execute_in_pool`` returns a
:class:`concurrent.futures.Future` the test resolves by hand, so concurrency
windows (two requests in flight, a full queue, a drain with work pending) are
constructed deterministically instead of raced.
"""

import asyncio
from concurrent.futures import Future

import pytest

from repro.server.dispatcher import Dispatcher, Draining, Overloaded
from repro.service import (
    CACHE_HIT,
    CACHE_MISS,
    ScheduleCache,
    ScheduleRequest,
    SchedulerSpec,
)
from repro.taskgen import GeneratorConfig, SystemGenerator


def make_request(index: int, request_id=None) -> ScheduleRequest:
    return ScheduleRequest(
        task_set=SystemGenerator(GeneratorConfig(), rng=index).generate(0.4),
        spec=SchedulerSpec.parse("static"),
        request_id=request_id,
    )


def result_dict(marker: float) -> dict:
    return {
        "spec": "static",
        "horizon": 1000,
        "schedulable": True,
        "psi": marker,
        "upsilon": 0.0,
        "best_psi": marker,
        "best_upsilon": 0.0,
        "per_device": {},
    }


class StubService:
    """Service stand-in: every execute_in_pool call hands back a manual future."""

    def __init__(self, cache=None, n_workers: int = 1):
        self.cache = cache
        self.n_workers = n_workers
        self.calls = []

    def execute_in_pool(self, request):
        future = Future()
        self.calls.append((request, future))
        return future


def make_dispatcher(max_queue=64, cache=None):
    scheduling = StubService(cache=cache)
    simulation = StubService()
    return Dispatcher(scheduling=scheduling, simulation=simulation, max_queue=max_queue), scheduling


def resolve(service: StubService, call_index: int, marker: float):
    """Complete a pending stub computation with a canned response."""
    from repro.service.messages import ScheduleResponse

    request, future = service.calls[call_index]
    future.set_result(
        ScheduleResponse.from_result_dict(
            result_dict(marker), request_id=request.request_id, elapsed_s=0.25
        )
    )


class TestDedup:
    def test_concurrent_identical_requests_compute_once(self):
        async def scenario():
            dispatcher, scheduling = make_dispatcher(cache=ScheduleCache())
            request_a = make_request(0, request_id="a")
            request_b = make_request(0, request_id="b")  # same content key
            task_a = asyncio.ensure_future(dispatcher.schedule(request_a))
            task_b = asyncio.ensure_future(dispatcher.schedule(request_b))
            while not scheduling.calls:
                await asyncio.sleep(0)
            # Only the leader reached the pool; resolve it.
            assert len(scheduling.calls) == 1
            resolve(scheduling, 0, marker=1.5)
            response_a, response_b = await asyncio.gather(task_a, task_b)
            return dispatcher, response_a, response_b

        dispatcher, response_a, response_b = asyncio.run(scenario())
        statuses = sorted([response_a.cache, response_b.cache])
        assert statuses == [CACHE_HIT, CACHE_MISS]
        assert response_a.psi == response_b.psi == 1.5
        assert response_a.request_id == "a"
        assert response_b.request_id == "b"
        stats = dispatcher.stats()
        assert stats["schedule"]["computed"] == 1
        assert stats["schedule"]["in_flight_dedup"] == 1
        assert stats["requests"]["admitted"] == 1

    def test_follower_cancellation_leaves_leader_running(self):
        async def scenario():
            dispatcher, scheduling = make_dispatcher(cache=ScheduleCache())
            task_a = asyncio.ensure_future(dispatcher.schedule(make_request(0, "a")))
            task_b = asyncio.ensure_future(dispatcher.schedule(make_request(0, "b")))
            while not scheduling.calls:
                await asyncio.sleep(0)
            await asyncio.sleep(0)  # let the follower attach
            task_b.cancel()
            resolve(scheduling, 0, marker=2.0)
            response_a = await task_a
            with pytest.raises(asyncio.CancelledError):
                await task_b
            return response_a

        response_a = asyncio.run(scenario())
        assert response_a.cache == CACHE_MISS
        assert response_a.psi == 2.0

    def test_failure_propagates_to_all_waiters(self):
        async def scenario():
            dispatcher, scheduling = make_dispatcher(cache=ScheduleCache())
            task_a = asyncio.ensure_future(dispatcher.schedule(make_request(0, "a")))
            task_b = asyncio.ensure_future(dispatcher.schedule(make_request(0, "b")))
            while not scheduling.calls:
                await asyncio.sleep(0)
            await asyncio.sleep(0)
            _, future = scheduling.calls[0]
            future.set_exception(RuntimeError("worker died"))
            results = await asyncio.gather(task_a, task_b, return_exceptions=True)
            return dispatcher, results

        dispatcher, results = asyncio.run(scenario())
        assert all(isinstance(result, RuntimeError) for result in results)
        assert dispatcher.failed == 1
        assert dispatcher.queue_depth == 0

    def test_cache_hit_skips_pool_and_admission(self):
        async def scenario():
            cache = ScheduleCache()
            dispatcher, scheduling = make_dispatcher(cache=cache)
            request = make_request(0, "a")
            cache.put(request.content_key(), result_dict(3.0))
            response = await dispatcher.schedule(request)
            return scheduling, dispatcher, response

        scheduling, dispatcher, response = asyncio.run(scenario())
        assert response.cache == CACHE_HIT
        assert response.elapsed_s == 0.0
        assert scheduling.calls == []
        assert dispatcher.admitted == 0


class TestAdmission:
    def test_queue_full_rejects_with_retry_hint(self):
        async def scenario():
            dispatcher, scheduling = make_dispatcher(max_queue=1)
            task = asyncio.ensure_future(dispatcher.schedule(make_request(0)))
            while not scheduling.calls:
                await asyncio.sleep(0)
            with pytest.raises(Overloaded) as exc_info:
                await dispatcher.schedule(make_request(1))
            resolve(scheduling, 0, marker=1.0)
            await task
            return dispatcher, exc_info.value

        dispatcher, error = asyncio.run(scenario())
        assert error.retry_after_s > 0
        assert dispatcher.rejected == 1
        # The slot freed up: the next request is admitted again.
        assert dispatcher.queue_depth == 0

    def test_dedup_followers_bypass_admission(self):
        async def scenario():
            dispatcher, scheduling = make_dispatcher(max_queue=1, cache=ScheduleCache())
            task_a = asyncio.ensure_future(dispatcher.schedule(make_request(0, "a")))
            while not scheduling.calls:
                await asyncio.sleep(0)
            # Queue is full, but an identical request attaches instead of
            # being rejected.
            task_b = asyncio.ensure_future(dispatcher.schedule(make_request(0, "b")))
            await asyncio.sleep(0)
            resolve(scheduling, 0, marker=1.0)
            return await asyncio.gather(task_a, task_b)

        response_a, response_b = asyncio.run(scenario())
        assert {response_a.cache, response_b.cache} == {CACHE_MISS, CACHE_HIT}

    def test_invalid_max_queue_rejected(self):
        with pytest.raises(ValueError):
            make_dispatcher(max_queue=0)


class TestDrain:
    def test_drain_refuses_new_work_and_waits_for_inflight(self):
        async def scenario():
            dispatcher, scheduling = make_dispatcher()
            task = asyncio.ensure_future(dispatcher.schedule(make_request(0)))
            while not scheduling.calls:
                await asyncio.sleep(0)
            drain_task = asyncio.ensure_future(dispatcher.drain())
            await asyncio.sleep(0)
            assert not drain_task.done()  # still waiting on the in-flight job
            with pytest.raises(Draining):
                await dispatcher.schedule(make_request(1))
            resolve(scheduling, 0, marker=1.0)
            await task
            await drain_task
            return dispatcher

        dispatcher = asyncio.run(scenario())
        assert dispatcher.queue_depth == 0
        assert dispatcher.draining

    def test_drain_with_idle_dispatcher_returns_immediately(self):
        async def scenario():
            dispatcher, _ = make_dispatcher()
            await dispatcher.drain()
            return dispatcher

        assert asyncio.run(scenario()).draining
