"""CLI tests: `python -m repro.server` request path vs the batch CLIs.

The acceptance bar is byte-parity: a batch of requests sent through a daemon
must produce the same JSONL lines as `python -m repro.service` /
`python -m repro.runtime` given the same requests — cold modulo wall-clock
timing, warm identically.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.server import ThreadedServer
from repro.server.__main__ import main as server_main
from repro.service.__main__ import main as service_main

SCENARIO = "short-hyperperiod"
REPO_ROOT = Path(__file__).resolve().parents[2]


def normalize_line(line: str) -> str:
    payload = json.loads(line)
    payload["data"]["timing"]["elapsed_s"] = 0.0
    return json.dumps(payload, sort_keys=True)


@pytest.fixture(scope="module")
def threaded_server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("server-cache")
    with ThreadedServer(n_workers=1, port=0, cache_dir=cache_dir) as threaded:
        yield threaded


def run_request_cli(threaded, capsys, *arguments) -> tuple:
    code = server_main(
        [
            "request",
            "--server",
            f"{threaded.host}:{threaded.port}",
            *arguments,
        ]
    )
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestRequestCli:
    def test_scenario_mode_matches_batch_cli_cold(self, threaded_server, capsys, tmp_path):
        code, server_out, server_err = run_request_cli(
            threaded_server, capsys, "--scenario", SCENARIO, "--systems", "2"
        )
        assert code == 0
        assert service_main(["--scenario", SCENARIO, "--systems", "2"]) == 0
        batch = capsys.readouterr()
        server_lines = server_out.splitlines()
        batch_lines = batch.out.splitlines()
        assert len(server_lines) == len(batch_lines) == 2
        assert [normalize_line(line) for line in server_lines] == [
            normalize_line(line) for line in batch_lines
        ]
        assert "2 response(s)" in server_err

    def test_warm_resend_is_byte_identical_and_recomputes_nothing(
        self, threaded_server, capsys, tmp_path
    ):
        cache_dir = tmp_path / "batch-cache"
        arguments = ["--scenario", SCENARIO, "--methods", "gpiocp", "--systems", "2"]
        code, first_out, _ = run_request_cli(threaded_server, capsys, *arguments)
        assert code == 0
        code, second_out, second_err = run_request_cli(threaded_server, capsys, *arguments)
        assert code == 0
        # Warm responses all come from cache...
        assert "0 computed, 2 served from cache" in second_err
        for line in second_out.splitlines():
            payload = json.loads(line)
            assert payload["data"]["cache"]["status"] == "hit"
            assert payload["data"]["timing"]["elapsed_s"] == 0.0
        # ...and are byte-identical to a warm batch-CLI run of the same batch.
        assert service_main([*arguments, "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert service_main([*arguments, "--cache-dir", str(cache_dir)]) == 0
        warm_batch = capsys.readouterr()
        assert second_out == warm_batch.out

    def test_request_file_mode_mixed_kinds(self, threaded_server, capsys, tmp_path):
        from repro.runtime.__main__ import scenario_requests as sim_requests
        from repro.service.__main__ import scenario_requests as schedule_requests

        mixed = [
            schedule_requests(SCENARIO, ["static"], 1)[0],
            sim_requests(SCENARIO, ["static"], ["controller"], 1)[0],
        ]
        request_file = tmp_path / "mixed.jsonl"
        request_file.write_text(
            "".join(json.dumps(request.to_dict(), sort_keys=True) + "\n" for request in mixed)
        )
        output_file = tmp_path / "out.jsonl"
        code, _, _ = run_request_cli(
            threaded_server, capsys, str(request_file), "-o", str(output_file)
        )
        assert code == 0
        answers = [
            json.loads(line) for line in output_file.read_text().splitlines()
        ]
        assert [answer["kind"] for answer in answers] == [
            "repro/schedule-response",
            "repro/sim-response",
        ]
        # Answers come back in input order with the requests' ids.
        assert [answer["data"]["id"] for answer in answers] == [
            request.request_id for request in mixed
        ]

    def test_invalid_input_line_fails_cleanly(self, threaded_server, capsys, tmp_path):
        request_file = tmp_path / "bad.jsonl"
        request_file.write_text("this is not json\n")
        with pytest.raises(SystemExit):
            run_request_cli(threaded_server, capsys, str(request_file))

    def test_requires_exactly_one_input_source(self, threaded_server, capsys):
        with pytest.raises(SystemExit):
            server_main(
                ["request", "--server", f"{threaded_server.host}:{threaded_server.port}"]
            )

    def test_bad_server_address_rejected(self, capsys):
        with pytest.raises(SystemExit):
            server_main(["request", "--server", "nonsense", "--scenario", SCENARIO])


class TestOneShotOps:
    def test_stats_and_health(self, threaded_server, capsys):
        address = f"{threaded_server.host}:{threaded_server.port}"
        assert server_main(["health", "--server", address]) == 0
        health = json.loads(capsys.readouterr().out)
        assert health["status"] == "ok"
        assert server_main(["stats", "--server", address]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["server"]["n_workers"] == 1
        assert "schedule" in stats and "simulation" in stats


class TestServeSubprocess:
    """End-to-end over a real `python -m repro.server serve` process."""

    def test_serve_request_warm_shutdown(self, tmp_path):
        port_file = tmp_path / "port"
        cache_dir = tmp_path / "cache"
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        daemon = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.server",
                "serve",
                "--port",
                "0",
                "--port-file",
                str(port_file),
                "--cache-dir",
                str(cache_dir),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while not port_file.exists() and time.monotonic() < deadline:
                assert daemon.poll() is None, daemon.stderr.read()
                time.sleep(0.05)
            address = f"127.0.0.1:{int(port_file.read_text())}"

            def request_batch():
                return subprocess.run(
                    [
                        sys.executable,
                        "-m",
                        "repro.server",
                        "request",
                        "--server",
                        address,
                        "--scenario",
                        SCENARIO,
                    ],
                    env=env,
                    capture_output=True,
                    text=True,
                    timeout=120,
                )

            cold = request_batch()
            assert cold.returncode == 0, cold.stderr
            assert "1 computed" in cold.stderr
            warm = request_batch()
            assert warm.returncode == 0, warm.stderr
            assert "0 computed, 1 served from cache" in warm.stderr
            # The persistent cache reached disk in the batch CLIs' layout.
            assert list((cache_dir / "schedules").glob("*.json"))

            shutdown = subprocess.run(
                [sys.executable, "-m", "repro.server", "shutdown", "--server", address],
                env=env,
                capture_output=True,
                text=True,
                timeout=60,
            )
            assert shutdown.returncode == 0, shutdown.stderr
            assert daemon.wait(timeout=60) == 0
        finally:
            if daemon.poll() is None:
                daemon.send_signal(signal.SIGTERM)
                try:
                    daemon.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    daemon.kill()
