"""The daemon's metrics RPC: Prometheus exposition over a live socket."""

import re

import pytest

from repro.server import ServerClient, ThreadedServer
from repro.service.__main__ import scenario_requests

SCENARIO = "short-hyperperiod"


@pytest.fixture(scope="module")
def server():
    with ThreadedServer(n_workers=1, port=0) as threaded:
        yield threaded.server


@pytest.fixture()
def client(server):
    with ServerClient(server.host, server.port) as connected:
        yield connected


def counter_value(text, name, **labels):
    """Extract one sample value from exposition text (None when absent)."""
    label_str = ",".join(f'{key}="{value}"' for key, value in sorted(labels.items()))
    braces = re.escape("{" + label_str + "}") if labels else ""
    pattern = rf"^{re.escape(name)}{braces} (\S+)$"
    match = re.search(pattern, text, flags=re.MULTILINE)
    return float(match.group(1)) if match else None


class TestMetricsOp:
    def test_metrics_op_returns_prometheus_text(self, client):
        text = client.metrics()
        assert "# TYPE repro_server_uptime_seconds gauge" in text
        assert "# TYPE repro_server_connections_open gauge" in text

    def test_request_counters_appear_after_a_batch(self, server, client):
        envelopes = [
            request.to_dict()
            for request in scenario_requests(SCENARIO, ["static"], 2)
        ]
        client.submit_envelopes(envelopes)
        client.submit_envelopes(envelopes)
        text = client.metrics()
        assert counter_value(
            text, "repro_requests_total", cache="miss", kind="schedule"
        ) >= 2
        assert counter_value(
            text, "repro_requests_total", cache="hit", kind="schedule"
        ) >= 2
        assert counter_value(text, "repro_server_computed_total", kind="schedule") >= 2

    def test_latency_histogram_has_cumulative_buckets(self, client):
        text = client.metrics()
        buckets = re.findall(
            r'repro_request_latency_ms_bucket\{kind="schedule",phase="cache-lookup",'
            r'le="([^"]+)"\} (\d+)',
            text,
        )
        assert buckets, "no cache-lookup histogram in exposition"
        counts = [int(count) for _, count in buckets]
        assert counts == sorted(counts)
        assert buckets[-1][0] == "+Inf"

    def test_stats_and_metrics_agree(self, server, client):
        stats = client.stats()
        text = client.metrics()
        computed = counter_value(text, "repro_server_computed_total", kind="schedule")
        assert computed == stats["schedule"]["computed"]
        admitted = counter_value(text, "repro_server_requests_total", result="admitted")
        assert admitted == stats["requests"]["admitted"]

    def test_gauges_reflect_live_state(self, server, client):
        text = client.metrics()
        assert counter_value(text, "repro_server_uptime_seconds") > 0
        assert counter_value(text, "repro_server_connections_open") >= 1
        assert counter_value(text, "repro_server_connections_total") >= 1

    def test_exposition_lines_are_well_formed(self, client):
        sample = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+$")
        for line in client.metrics().splitlines():
            if not line.startswith("#"):
                assert sample.match(line), line


class TestMetricsCli:
    def test_one_shot_metrics_subcommand_prints_exposition(self, server, capsys):
        from repro.server.__main__ import main

        assert main(["metrics", "--server", f"{server.host}:{server.port}"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_server_uptime_seconds gauge" in out


class TestByteIdentityThroughTheDaemon:
    def test_daemon_answers_match_batch_service(self, client):
        from repro.service import SchedulingService

        requests = scenario_requests(SCENARIO, ["gpiocp"], 1)
        envelopes = [request.to_dict() for request in requests]
        answers = client.submit_envelopes(envelopes)
        with SchedulingService() as service:
            expected = service.submit_batch(requests)
        assert answers[0]["data"]["result"] == expected[0].to_dict()["data"]["result"]
        assert set(answers[0]["data"]) == {"id", "result", "cache", "timing"}
