"""Daemon tests over real sockets: parity, errors, dedup, lifecycle, stats."""

import asyncio
import copy
import json
import socket
import threading
import time
from concurrent.futures import Future

import pytest

from repro.runtime.__main__ import scenario_requests as sim_scenario_requests
from repro.server import (
    AsyncServerClient,
    ReproServer,
    ServerClient,
    ServerError,
    ThreadedServer,
)
from repro.server.protocol import (
    ERR_INVALID_JSON,
    ERR_INVALID_REQUEST,
    ERR_OVERSIZED_LINE,
    ERR_SHUTTING_DOWN,
    ERR_UNKNOWN_KIND,
    ERR_UNKNOWN_OP,
    ERR_VERSION_MISMATCH,
    SERVER_ERROR_KIND,
    SERVER_RESPONSE_KIND,
    decode_answer_line,
    encode_request,
)
from repro.service import SchedulingService
from repro.service.__main__ import scenario_requests

SCENARIO = "short-hyperperiod"


@pytest.fixture(scope="module")
def server():
    with ThreadedServer(n_workers=1, port=0) as threaded:
        yield threaded.server


@pytest.fixture()
def client(server):
    with ServerClient(server.host, server.port) as connected:
        yield connected


def normalized(payload: dict) -> dict:
    """A response envelope with wall-clock timing masked (cold-path compare)."""
    masked = copy.deepcopy(payload)
    masked["data"]["timing"]["elapsed_s"] = 0.0
    return masked


class TestParity:
    """Acceptance: daemon answers == batch-service answers, byte for byte."""

    def test_schedule_responses_match_batch_service(self, client):
        requests = scenario_requests(SCENARIO, ["static", "fps-offline"], 2)
        with SchedulingService() as service:
            batch = service.submit_batch(requests)
        served = client.schedule_batch(requests)
        assert [normalized(response.to_dict()) for response in served] == [
            normalized(response.to_dict()) for response in batch
        ]

    def test_warm_responses_are_byte_identical(self, client):
        requests = scenario_requests(SCENARIO, ["static"], 2)
        client.schedule_batch(requests)  # warm the daemon's cache
        with SchedulingService() as service:
            service.submit_batch(requests)
            batch = service.submit_batch(requests)  # warm locally too
        served = client.schedule_batch(requests)
        # Warm answers carry elapsed_s == 0.0 and cache == hit on both paths,
        # so the comparison needs no normalisation at all.
        assert [json.dumps(r.to_dict(), sort_keys=True) for r in served] == [
            json.dumps(r.to_dict(), sort_keys=True) for r in batch
        ]

    def test_simulation_round_trip(self, client):
        requests = sim_scenario_requests(SCENARIO, ["static"], ["controller"], 1)
        cold = client.simulate_batch(requests)
        warm = client.simulate_batch(requests)
        assert [response.cache for response in warm] == ["hit"]
        assert cold[0].result_dict() == warm[0].result_dict()

    def test_bare_request_envelope_lines_are_accepted(self, server):
        request = scenario_requests(SCENARIO, ["static"], 1)[0]
        with socket.create_connection((server.host, server.port)) as raw:
            raw.sendall((request.to_json() + "\n").encode())
            answer = decode_answer_line(raw.makefile("rb").readline())
        assert answer["kind"] == SERVER_RESPONSE_KIND
        # The request's id doubles as the tag.
        assert answer["data"]["tag"] == request.request_id
        assert answer["data"]["payload"]["data"]["id"] == request.request_id


class TestErrorEnvelopes:
    """A bad line is a structured error answer, never a crash or a drop."""

    @pytest.mark.parametrize(
        "line, code",
        [
            (b"not json at all\n", ERR_INVALID_JSON),
            (b'{"kind": "repro/server-request", "versi\n', ERR_INVALID_JSON),
            (b'{"kind": "repro/mystery", "version": 1, "data": {}}\n', ERR_UNKNOWN_KIND),
            (
                b'{"kind": "repro/server-request", "version": 1,'
                b' "data": {"op": "dance", "tag": "t"}}\n',
                ERR_UNKNOWN_OP,
            ),
            (
                b'{"kind": "repro/server-request", "version": 9,'
                b' "data": {"op": "stats", "tag": "t"}}\n',
                ERR_VERSION_MISMATCH,
            ),
            (
                b'{"kind": "repro/server-request", "version": 1,'
                b' "data": {"op": "schedule", "tag": "t"}}\n',
                ERR_INVALID_REQUEST,
            ),
            (
                # A payload of the wrong inner kind fails ScheduleRequest
                # parsing and is reported against the request's tag.
                b'{"kind": "repro/server-request", "version": 1,'
                b' "data": {"op": "schedule", "tag": "t", "payload": {"kind": "x"}}}\n',
                ERR_INVALID_REQUEST,
            ),
        ],
    )
    def test_malformed_line_answers_structured_error(self, server, line, code):
        with socket.create_connection((server.host, server.port)) as raw:
            handle = raw.makefile("rb")
            raw.sendall(line)
            answer = decode_answer_line(handle.readline())
            assert answer["kind"] == SERVER_ERROR_KIND
            assert answer["data"]["error"] == code
            # The connection survived: a well-formed op still answers.
            raw.sendall(encode_request("health", tag="after"))
            after = decode_answer_line(handle.readline())
        assert after["kind"] == SERVER_RESPONSE_KIND
        assert after["data"]["tag"] == "after"

    def test_inner_version_mismatch_reports_the_request_tag(self, server):
        request = scenario_requests(SCENARIO, ["static"], 1)[0]
        envelope = request.to_dict()
        envelope["version"] = 99
        with socket.create_connection((server.host, server.port)) as raw:
            raw.sendall(
                encode_request("schedule", tag="inner", payload=envelope)
            )
            answer = decode_answer_line(raw.makefile("rb").readline())
        assert answer["data"]["error"] == ERR_VERSION_MISMATCH
        assert answer["data"]["tag"] == "inner"

    def test_oversized_line_answers_error_and_resyncs(self):
        with ThreadedServer(n_workers=1, port=0, max_line_bytes=256) as threaded:
            server = threaded.server
            with socket.create_connection((server.host, server.port)) as raw:
                handle = raw.makefile("rb")
                raw.sendall(b"x" * 1000 + b"\n")
                answer = decode_answer_line(handle.readline())
                assert answer["data"]["error"] == ERR_OVERSIZED_LINE
                raw.sendall(encode_request("health", tag="ok"))
                after = decode_answer_line(handle.readline())
            assert after["data"]["tag"] == "ok"

    def test_execution_failure_is_reported_not_fatal(self, client):
        bad = sim_scenario_requests(SCENARIO, ["static"], ["controller"], 1)[0]
        envelope = bad.to_dict()
        envelope["data"]["execution_model"] = {"name": "no-such-model"}
        with pytest.raises(ServerError):
            client.submit_envelopes([envelope])
        assert client.health()["status"] == "ok"


class TestStatsAndHealth:
    def test_health_payload(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0
        assert health["queue_depth"] == 0
        assert isinstance(health["pid"], int)

    def test_stats_payload_shape(self, client):
        requests = scenario_requests(SCENARIO, ["gpiocp"], 1)
        client.schedule_batch(requests)
        client.schedule_batch(requests)
        stats = client.stats()
        assert stats["server"]["n_workers"] == 1
        assert stats["server"]["connections_total"] >= 1
        assert stats["queue"]["limit"] > 0
        assert stats["schedule"]["cache"]["hits"] >= 1
        assert stats["schedule"]["computed"] >= 1
        assert stats["requests"]["admitted"] >= 1


class GatedStubService:
    """Injectable service whose computations complete only when released."""

    def __init__(self):
        self.cache = None
        self.n_workers = 1
        self.calls = []
        self.release = threading.Event()

    def execute_in_pool(self, request):
        from repro.service.messages import ScheduleResponse

        future = Future()
        self.calls.append(request)

        def worker():
            self.release.wait(timeout=30)
            future.set_result(
                ScheduleResponse.from_result_dict(
                    {
                        "spec": "static",
                        "horizon": 100,
                        "schedulable": True,
                        "psi": 0.5,
                        "upsilon": 0.0,
                        "best_psi": 0.5,
                        "best_upsilon": 0.0,
                        "per_device": {},
                    },
                    request_id=request.request_id,
                    elapsed_s=0.1,
                )
            )

        threading.Thread(target=worker, daemon=True).start()
        return future


class TestInFlightDedupOverTheWire:
    """Acceptance: two clients, one identical request each, one evaluation."""

    def test_two_clients_one_evaluation(self):
        scheduling = GatedStubService()
        simulation = GatedStubService()
        server = ReproServer(
            port=0, scheduling=scheduling, simulation=simulation
        )
        request = scenario_requests(SCENARIO, ["static"], 1)[0]

        async def two_clients(host, port):
            first = await AsyncServerClient.connect(host, port)
            second = await AsyncServerClient.connect(host, port)
            try:
                task_a = asyncio.ensure_future(first.schedule(request))
                task_b = asyncio.ensure_future(second.schedule(request))
                # Wait until the follower has attached to the leader's
                # in-flight future, then release the (single) computation.
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    stats = await first.stats()
                    if stats["requests"]["in_flight_dedup"] == 1:
                        break
                    await asyncio.sleep(0.01)
                scheduling.release.set()
                response_a, response_b = await asyncio.gather(task_a, task_b)
                stats = await first.stats()
                return response_a, response_b, stats
            finally:
                await first.close()
                await second.close()

        with ThreadedServer(server):
            response_a, response_b, stats = asyncio.run(
                two_clients(server.host, server.port)
            )
        assert len(scheduling.calls) == 1  # exactly one evaluation
        assert stats["schedule"]["computed"] == 1
        assert stats["requests"]["in_flight_dedup"] == 1
        assert {response_a.cache, response_b.cache} == {"disabled", "hit"}
        assert response_a.result_dict() == response_b.result_dict()


class TestGracefulShutdown:
    def test_shutdown_op_drains_inflight_work(self):
        scheduling = GatedStubService()
        simulation = GatedStubService()
        server = ReproServer(port=0, scheduling=scheduling, simulation=simulation)
        request = scenario_requests(SCENARIO, ["static"], 1)[0]

        async def scenario(host, port):
            worker = await AsyncServerClient.connect(host, port)
            control = await AsyncServerClient.connect(host, port)
            try:
                pending = asyncio.ensure_future(worker.schedule(request))
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    if scheduling.calls:
                        break
                    await asyncio.sleep(0.01)
                answer = await control.shutdown()
                assert answer["status"] == "draining"
                scheduling.release.set()
                response = await pending
                return response
            finally:
                await worker.close()
                await control.close()

        threaded = ThreadedServer(server)
        with threaded:
            response = asyncio.run(scenario(server.host, server.port))
        assert response.schedulable is True
        assert len(scheduling.calls) == 1

    def test_new_work_rejected_while_draining(self):
        scheduling = GatedStubService()
        simulation = GatedStubService()
        server = ReproServer(port=0, scheduling=scheduling, simulation=simulation)
        requests = scenario_requests(SCENARIO, ["static", "gpiocp"], 1)

        async def scenario(host, port):
            worker = await AsyncServerClient.connect(host, port)
            try:
                pending = asyncio.ensure_future(worker.schedule(requests[0]))
                while not scheduling.calls:
                    await asyncio.sleep(0.01)
                server.dispatcher.draining = True
                with pytest.raises(ServerError) as exc_info:
                    await worker.schedule(requests[1])
                assert exc_info.value.code == ERR_SHUTTING_DOWN
                server.dispatcher.draining = False
                scheduling.release.set()
                return await pending
            finally:
                await worker.close()

        with ThreadedServer(server):
            response = asyncio.run(scenario(server.host, server.port))
        assert response.schedulable is True

    def test_remote_shutdown_can_be_disabled(self):
        with ThreadedServer(n_workers=1, port=0, allow_remote_shutdown=False) as threaded:
            with ServerClient(threaded.host, threaded.port) as client:
                with pytest.raises(ServerError) as exc_info:
                    client.shutdown()
                assert exc_info.value.code == ERR_INVALID_REQUEST
                assert client.health()["status"] == "ok"


class TestAsyncClient:
    def test_concurrent_calls_share_one_connection(self, server):
        requests = scenario_requests(SCENARIO, ["static", "fps-offline"], 1)

        async def scenario():
            async with await AsyncServerClient.connect(
                server.host, server.port
            ) as connected:
                return await asyncio.gather(
                    *(connected.schedule(request) for request in requests),
                    connected.health(),
                )

        *responses, health = asyncio.run(scenario())
        assert health["status"] == "ok"
        assert [r.request_id for r in responses] == [r.request_id for r in requests]
