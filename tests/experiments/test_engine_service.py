"""The engine's cells run on the scheduling service; sweeps accept method specs."""

import pytest

from repro.experiments import ExperimentConfig, ExperimentEngine
from repro.experiments.engine import EvalJob, cell_seed, cell_spec, evaluate_cell
from repro.experiments.engine import _GA_SEED_OFFSET
from repro.scheduling import GAConfig
from repro.service import ScheduleRequest, execute_request


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        schedulability_utilisations=(0.3, 0.6),
        accuracy_utilisations=(0.3,),
        n_systems=3,
        ga=GAConfig(population_size=8, generations=4),
    )


class TestCellSpecs:
    def test_plain_methods_parse_to_bare_specs(self, config):
        spec = cell_spec(config, EvalJob(0.3, 0, "static"))
        assert spec.name == "static"
        assert spec.options == ()

    def test_ga_spec_carries_config_and_derived_seed(self, config):
        job = EvalJob(0.3, 1, "ga")
        spec = cell_spec(config, job)
        options = spec.options_dict()
        assert options["population_size"] == 8
        assert options["generations"] == 4
        assert options["seed"] == cell_seed(config, 0.3, 1) + _GA_SEED_OFFSET

    def test_ga_spec_options_override_the_config(self, config):
        spec = cell_spec(config, EvalJob(0.3, 1, "ga:generations=2,seed=5"))
        options = spec.options_dict()
        assert options["generations"] == 2
        assert options["population_size"] == 8
        assert options["seed"] == 5

    def test_cell_equals_direct_service_request(self, config):
        """A sweep cell and a service request with the same content coincide."""
        job = EvalJob(0.3, 0, "static")
        cell = evaluate_cell(config, job)
        with ExperimentEngine(config) as engine:
            task_set = engine.generate_system(0.3, 0)
        response = execute_request(
            ScheduleRequest(task_set=task_set, spec=cell_spec(config, job))
        )
        assert cell.schedulable == response.schedulable
        assert cell.psi == response.psi
        assert cell.upsilon == response.upsilon
        assert cell.best_psi == response.best_psi
        assert cell.best_upsilon == response.best_upsilon


class TestMethodSubsets:
    def test_schedulability_sweep_with_method_subset(self, config):
        with ExperimentEngine(config) as engine:
            full = engine.schedulability_sweep()
            subset = engine.schedulability_sweep(methods=["static", "fps-online"])
        assert set(subset.series) == {"static", "fps-online"}
        assert subset.series["static"] == full.series["static"]
        assert subset.series["fps-online"] == full.series["fps-online"]

    def test_sweep_accepts_spec_strings_as_methods(self, config):
        with ExperimentEngine(config) as engine:
            result = engine.schedulability_sweep(
                methods=["static", "ga:generations=2,population_size=6"]
            )
        assert set(result.series) == {"static", "ga:generations=2,population_size=6"}

    def test_accuracy_sweep_without_static_still_admits_via_static(self, config):
        with ExperimentEngine(config) as engine:
            full = engine.accuracy_sweep()
            subset = engine.accuracy_sweep(methods=["gpiocp"])
        assert set(subset.psi.series) == {"gpiocp"}
        assert subset.psi.series["gpiocp"] == full.psi.series["gpiocp"]
        assert subset.systems_evaluated == full.systems_evaluated

    def test_methods_flag_validates_specs(self):
        from repro.experiments.__main__ import build_parser, validate_methods

        parser = build_parser()
        assert validate_methods(parser, None) is None
        methods = ["static", "ga:generations=3"]
        assert validate_methods(parser, methods) == methods
        with pytest.raises(SystemExit):
            validate_methods(parser, ["no-such-method"])
        with pytest.raises(SystemExit):
            validate_methods(parser, ["ga:generations"])  # missing '='

    def test_cli_runs_a_method_subset(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig5", "--scale", "smoke", "--methods", "static", "gpiocp"]) == 0
        out = capsys.readouterr().out
        assert "static" in out and "gpiocp" in out
        assert "fps-online" not in out

    def test_spec_strings_share_cache_cells_with_equivalent_orderings(
        self, config, tmp_path
    ):
        methods_a = ["ga:generations=2,population_size=6"]
        methods_b = ["ga:population_size=6,generations=2"]
        with ExperimentEngine(config, artifact_dir=str(tmp_path)) as engine:
            first = engine.schedulability_sweep(methods=methods_a)
            computed = engine.cells_computed
            second = engine.schedulability_sweep(methods=methods_b)
            assert engine.cells_computed == computed, "reordered spec recomputed cells"
        assert first.series[methods_a[0]] == second.series[methods_b[0]]
