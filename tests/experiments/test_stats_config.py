"""Unit tests for the experiment configuration and statistics helpers."""

import math

import pytest

from repro.experiments import ExperimentConfig, SeriesStats, format_table, mean
from repro.experiments.stats import std


class TestStats:
    def test_mean_and_std(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert std([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(2.138, abs=1e-3)
        assert math.isnan(mean([]))
        assert std([1.0]) == 0.0

    def test_series_stats(self):
        stats = SeriesStats.of([1.0, 2.0, 3.0, 4.0])
        assert stats.n == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.confidence_halfwidth() > 0

    def test_series_stats_empty(self):
        stats = SeriesStats.of([])
        assert stats.n == 0
        assert math.isnan(stats.mean)

    def test_format_table_alignment_and_floats(self):
        rows = [{"U": 0.3, "static": 1.0}, {"U": 0.6, "static": 0.75}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("U")
        assert "0.750" in text
        assert len(lines) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(empty table)"


class TestExperimentConfig:
    def test_default_and_presets(self):
        default = ExperimentConfig()
        quick = ExperimentConfig.quick()
        smoke = ExperimentConfig.smoke()
        paper = ExperimentConfig.paper_scale()
        assert smoke.n_systems < quick.n_systems < default.n_systems < paper.n_systems
        assert paper.n_systems == 1000
        assert paper.ga.population_size == 300
        assert len(paper.schedulability_utilisations) == 15
        assert paper.schedulability_utilisations[0] == pytest.approx(0.2)
        assert paper.schedulability_utilisations[-1] == pytest.approx(0.9)

    def test_with_overrides(self):
        config = ExperimentConfig().with_overrides(n_systems=3)
        assert config.n_systems == 3
