"""Unit tests for the experiment configuration and statistics helpers."""

import math

import pytest

from repro.experiments import ExperimentConfig, SeriesStats, format_table, mean
from repro.experiments.stats import std


class TestStats:
    def test_mean_and_std(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert std([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(2.138, abs=1e-3)
        assert math.isnan(mean([]))
        assert std([1.0]) == 0.0

    def test_series_stats(self):
        stats = SeriesStats.of([1.0, 2.0, 3.0, 4.0])
        assert stats.n == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.confidence_halfwidth() > 0

    def test_series_stats_empty(self):
        stats = SeriesStats.of([])
        assert stats.n == 0
        assert math.isnan(stats.mean)

    def test_format_table_alignment_and_floats(self):
        rows = [{"U": 0.3, "static": 1.0}, {"U": 0.6, "static": 0.75}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("U")
        assert "0.750" in text
        assert len(lines) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(empty table)"


class TestExperimentConfig:
    def test_default_and_presets(self):
        default = ExperimentConfig()
        quick = ExperimentConfig.quick()
        smoke = ExperimentConfig.smoke()
        paper = ExperimentConfig.paper_scale()
        assert smoke.n_systems < quick.n_systems < default.n_systems < paper.n_systems
        assert paper.n_systems == 1000
        assert paper.ga.population_size == 300
        assert len(paper.schedulability_utilisations) == 15
        assert paper.schedulability_utilisations[0] == pytest.approx(0.2)
        assert paper.schedulability_utilisations[-1] == pytest.approx(0.9)

    def test_with_overrides(self):
        config = ExperimentConfig().with_overrides(n_systems=3)
        assert config.n_systems == 3

    def test_engine_fields_default_and_override(self):
        config = ExperimentConfig()
        assert config.n_workers == 1
        assert config.artifact_dir is None
        tuned = config.with_overrides(n_workers=4, artifact_dir="artifacts")
        assert tuned.n_workers == 4
        assert tuned.artifact_dir == "artifacts"


class TestExperimentConfigValidation:
    def test_rejects_non_positive_n_systems(self):
        with pytest.raises(ValueError, match="n_systems"):
            ExperimentConfig(n_systems=0)
        with pytest.raises(ValueError, match="n_systems"):
            ExperimentConfig(n_systems=-3)
        with pytest.raises(ValueError, match="n_systems"):
            ExperimentConfig(n_systems=2.5)

    def test_rejects_non_positive_n_workers(self):
        with pytest.raises(ValueError, match="n_workers"):
            ExperimentConfig(n_workers=0)
        with pytest.raises(ValueError, match="n_workers"):
            ExperimentConfig(n_workers=-1)

    def test_rejects_empty_sweep_tuples(self):
        with pytest.raises(ValueError, match="schedulability_utilisations"):
            ExperimentConfig(schedulability_utilisations=())
        with pytest.raises(ValueError, match="accuracy_utilisations"):
            ExperimentConfig(accuracy_utilisations=())

    def test_rejects_utilisations_outside_unit_interval(self):
        for bad in (0.0, -0.1, 1.2):
            with pytest.raises(ValueError, match=r"\(0, 1\]"):
                ExperimentConfig(schedulability_utilisations=(0.3, bad))
            with pytest.raises(ValueError, match=r"\(0, 1\]"):
                ExperimentConfig(accuracy_utilisations=(bad,))
        # The boundary U = 1.0 is a legal (if brutal) load.
        ExperimentConfig(schedulability_utilisations=(1.0,))

    def test_rejects_non_numeric_utilisations(self):
        with pytest.raises(ValueError, match="numbers"):
            ExperimentConfig(accuracy_utilisations=("0.3",))

    def test_validation_applies_to_overrides_too(self):
        config = ExperimentConfig()
        with pytest.raises(ValueError, match="n_systems"):
            config.with_overrides(n_systems=0)

    def test_single_pass_iterables_are_materialised(self):
        config = ExperimentConfig(
            schedulability_utilisations=(u for u in (0.2, 0.4)),
            accuracy_utilisations=iter([0.3]),
        )
        assert config.schedulability_utilisations == (0.2, 0.4)
        assert config.accuracy_utilisations == (0.3,)
        # And still readable more than once.
        assert list(config.schedulability_utilisations) == [0.2, 0.4]
