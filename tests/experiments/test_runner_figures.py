"""Integration tests of the experiment harness (reduced-scale figure regeneration)."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    ExperimentRunner,
    run_controller_sim,
    run_fig5,
    run_fig6,
    run_fig7,
    run_table1,
)
from repro.experiments.runner import ACCURACY_METHODS, SCHEDULABILITY_METHODS


@pytest.fixture(scope="module")
def smoke_config():
    return ExperimentConfig.smoke()


@pytest.fixture(scope="module")
def schedulability(smoke_config):
    return run_fig5(smoke_config)


@pytest.fixture(scope="module")
def accuracy(smoke_config):
    return ExperimentRunner(smoke_config).accuracy_sweep()


class TestFig5:
    def test_all_methods_and_utilisations_present(self, schedulability, smoke_config):
        assert set(schedulability.series) == set(SCHEDULABILITY_METHODS)
        assert schedulability.utilisations == list(smoke_config.schedulability_utilisations)

    def test_values_are_fractions(self, schedulability):
        for values in schedulability.series.values():
            assert all(0.0 <= v <= 1.0 for v in values)

    def test_ga_at_least_as_schedulable_as_static(self, schedulability):
        for ga, static in zip(schedulability.series["ga"], schedulability.series["static"]):
            assert ga >= static - 1e-9

    def test_rows_and_table_rendering(self, schedulability):
        rows = schedulability.rows()
        assert len(rows) == len(schedulability.utilisations)
        assert "fps-offline" in schedulability.to_table()

    def test_value_lookup(self, schedulability, smoke_config):
        u = smoke_config.schedulability_utilisations[0]
        assert schedulability.value("static", u) == schedulability.series["static"][0]

    def test_value_lookup_tolerates_float_noise(self, schedulability, smoke_config):
        u = smoke_config.schedulability_utilisations[0]
        noisy = u + 1e-13  # e.g. a utilisation that went through JSON/arithmetic
        assert schedulability.value("static", noisy) == schedulability.series["static"][0]

    def test_value_lookup_raises_clearly_on_miss(self, schedulability):
        with pytest.raises(KeyError, match="not a sweep point"):
            schedulability.value("static", 0.55555)
        with pytest.raises(KeyError, match="unknown method"):
            schedulability.value("no-such-method", 0.3)


class TestFig6And7:
    def test_methods_present(self, accuracy):
        assert set(accuracy.psi.series) == set(ACCURACY_METHODS)
        assert set(accuracy.upsilon.series) == set(ACCURACY_METHODS)

    def test_fps_psi_is_zero(self, accuracy):
        assert all(v == 0.0 for v in accuracy.psi.series["fps"])

    def test_metrics_bounded(self, accuracy):
        for sweep in (accuracy.psi, accuracy.upsilon):
            for values in sweep.series.values():
                assert all(0.0 <= v <= 1.0 for v in values)

    def test_upsilon_of_fps_is_lowest(self, accuracy):
        for method in ("gpiocp", "static", "ga"):
            for fps_value, other in zip(accuracy.upsilon.series["fps"], accuracy.upsilon.series[method]):
                assert other >= fps_value - 1e-9

    def test_systems_were_evaluated(self, accuracy, smoke_config):
        assert all(count > 0 for count in accuracy.systems_evaluated.values())

    def test_run_fig6_and_fig7_reuse_precomputed_sweep(self, accuracy, smoke_config):
        fig6 = run_fig6(smoke_config, precomputed=accuracy)
        fig7 = run_fig7(smoke_config, precomputed=accuracy)
        assert fig6 is accuracy.psi
        assert fig7 is accuracy.upsilon


class TestTable1AndControllerSim:
    def test_table1_rows_cover_all_designs(self):
        result = run_table1()
        assert len(result.rows()) == 7
        assert set(result.estimates) == set(result.published)

    def test_controller_sim_dedicated_controller_is_exact(self, smoke_config):
        result = run_controller_sim(utilisation=0.4, config=smoke_config, seed=3)
        assert result.controller_matches_offline
        assert result.remote_cpu_psi <= result.controller_psi
        assert result.mean_noc_latency > 0


class TestRunnerDeterminism:
    def test_same_seed_same_schedulability(self, smoke_config):
        a = ExperimentRunner(smoke_config).schedulability_sweep(utilisations=[0.3])
        b = ExperimentRunner(smoke_config).schedulability_sweep(utilisations=[0.3])
        assert a.series == b.series

    def test_generate_system_deterministic(self, smoke_config):
        runner = ExperimentRunner(smoke_config)
        ts1 = runner.generate_system(0.4, 0)
        ts2 = runner.generate_system(0.4, 0)
        assert [t.name for t in ts1] == [t.name for t in ts2]
        assert ts1.utilisation == pytest.approx(ts2.utilisation)
