"""Tests of the parallel experiment engine: determinism, caching, resume."""

import math

import pytest

import repro.experiments.engine as engine_mod
from repro.experiments import ExperimentConfig, ExperimentEngine
from repro.experiments.engine import CellResult, EvalJob, cell_seed, evaluate_cell
from repro.experiments.runner import ExperimentRunner
from repro.scheduling import GAConfig


@pytest.fixture(scope="module")
def tiny_config():
    """A seconds-scale configuration with the GA included (tiny budget)."""
    return ExperimentConfig(
        schedulability_utilisations=(0.3, 0.6),
        accuracy_utilisations=(0.3, 0.6),
        n_systems=3,
        ga=GAConfig(population_size=8, generations=4),
    )


@pytest.fixture(scope="module")
def tiny_config_no_ga(tiny_config):
    return tiny_config.with_overrides(include_ga=False)


class TestCells:
    def test_eval_job_is_picklable_and_hashable(self):
        import pickle

        job = EvalJob(0.3, 2, "static")
        assert pickle.loads(pickle.dumps(job)) == job
        assert len({job, EvalJob(0.3, 2, "static"), EvalJob(0.3, 3, "static")}) == 2

    def test_cell_record_round_trip(self):
        cell = CellResult(schedulable=True, psi=0.25, upsilon=0.75, best_psi=0.5, best_upsilon=0.9)
        assert CellResult.from_record(cell.to_record()) == cell

    def test_cell_seed_matches_runner_seeding(self, tiny_config_no_ga):
        config = tiny_config_no_ga
        assert cell_seed(config, 0.3, 2) == config.seed + 30 * 10_000 + 2
        runner = ExperimentRunner(config)
        ts_a = runner.generate_system(0.4, 1)
        with ExperimentEngine(config) as engine:
            ts_b = engine.generate_system(0.4, 1)
        assert [t.name for t in ts_a] == [t.name for t in ts_b]
        assert ts_a.utilisation == pytest.approx(ts_b.utilisation)

    def test_evaluate_cell_is_pure(self, tiny_config):
        job = EvalJob(0.4, 0, "ga")
        assert evaluate_cell(tiny_config, job) == evaluate_cell(tiny_config, job)

    def test_fps_online_cell_has_no_schedule_metrics(self, tiny_config_no_ga):
        cell = evaluate_cell(tiny_config_no_ga, EvalJob(0.3, 0, "fps-online"))
        assert cell.psi == 0.0
        assert cell.upsilon == 0.0


class TestWorkerCountInvariance:
    """Acceptance: series must be bit-identical for n_workers=1 vs n_workers=4."""

    def test_sweeps_bit_identical_across_worker_counts(self, tiny_config):
        with ExperimentEngine(tiny_config, n_workers=1) as engine:
            sched_serial = engine.schedulability_sweep()
            acc_serial = engine.accuracy_sweep()
        with ExperimentEngine(tiny_config, n_workers=4) as engine:
            sched_parallel = engine.schedulability_sweep()
            acc_parallel = engine.accuracy_sweep()

        assert sched_parallel.series == sched_serial.series
        assert sched_parallel.utilisations == sched_serial.utilisations
        assert acc_parallel.psi.series == acc_serial.psi.series
        assert acc_parallel.upsilon.series == acc_serial.upsilon.series
        assert acc_parallel.systems_evaluated == acc_serial.systems_evaluated


class TestArtifactCache:
    def test_cache_hits_reproduce_uncached_results_exactly(self, tiny_config_no_ga, tmp_path):
        config = tiny_config_no_ga
        with ExperimentEngine(config) as engine:
            uncached = engine.schedulability_sweep()
            uncached_acc = engine.accuracy_sweep()

        with ExperimentEngine(config, artifact_dir=str(tmp_path)) as engine:
            cold = engine.schedulability_sweep()
            cold_acc = engine.accuracy_sweep()
            assert engine.cells_computed > 0
        with ExperimentEngine(config, artifact_dir=str(tmp_path)) as engine:
            warm = engine.schedulability_sweep()
            warm_acc = engine.accuracy_sweep()
            assert engine.cells_computed == 0

        for result in (cold, warm):
            assert result.series == uncached.series
        for result in (cold_acc, warm_acc):
            assert result.psi.series == uncached_acc.psi.series
            assert result.upsilon.series == uncached_acc.upsilon.series
            assert result.systems_evaluated == uncached_acc.systems_evaluated

    def test_static_cells_are_shared_between_sweeps(self, tiny_config_no_ga, tmp_path, monkeypatch):
        """The accuracy admission filter reuses schedulability-sweep static cells."""
        config = tiny_config_no_ga
        computed = []
        real_evaluate = engine_mod.evaluate_cell
        monkeypatch.setattr(
            engine_mod,
            "evaluate_cell",
            lambda cfg, job: computed.append(job) or real_evaluate(cfg, job),
        )
        with ExperimentEngine(config, artifact_dir=str(tmp_path)) as engine:
            engine.schedulability_sweep()
            engine.accuracy_sweep()
        static_jobs = [job for job in computed if job.method == "static"]
        assert len(static_jobs) == len(set(static_jobs)), "a static cell was recomputed"

    def test_interrupted_sweep_resumes_without_recomputation(self, tiny_config_no_ga, tmp_path, monkeypatch):
        """Acceptance: a killed run restarts from cached cells, not from scratch."""
        config = tiny_config_no_ga
        methods = [m for m in engine_mod.SCHEDULABILITY_METHODS if m != "ga"]
        total_cells = (
            len(config.schedulability_utilisations) * config.n_systems * len(methods)
        )
        interrupt_after = 7
        assert interrupt_after < total_cells

        real_evaluate = engine_mod.evaluate_cell
        first_run_calls = []

        def interrupting(cfg, job):
            if len(first_run_calls) >= interrupt_after:
                raise KeyboardInterrupt
            first_run_calls.append(job)
            return real_evaluate(cfg, job)

        monkeypatch.setattr(engine_mod, "evaluate_cell", interrupting)
        with pytest.raises(KeyboardInterrupt):
            with ExperimentEngine(config, artifact_dir=str(tmp_path)) as engine:
                engine.schedulability_sweep()

        second_run_calls = []
        monkeypatch.setattr(
            engine_mod,
            "evaluate_cell",
            lambda cfg, job: second_run_calls.append(job) or real_evaluate(cfg, job),
        )
        with ExperimentEngine(config, artifact_dir=str(tmp_path)) as engine:
            resumed = engine.schedulability_sweep()

        assert len(first_run_calls) == interrupt_after
        assert len(second_run_calls) == total_cells - interrupt_after
        assert not set(first_run_calls) & set(second_run_calls)

        with ExperimentEngine(config) as engine:
            fresh = engine.schedulability_sweep()
        assert resumed.series == fresh.series


class TestNewerArtifactsAreProtected:
    def test_newer_sweep_artifact_is_not_overwritten(self, tiny_config_no_ga, tmp_path):
        from repro.core.serialization import PayloadVersionError
        from repro.experiments.artifacts import ArtifactStore

        config = tiny_config_no_ga
        with ExperimentEngine(config, artifact_dir=str(tmp_path)) as engine:
            engine.schedulability_sweep()

        # Rewrite the stored artifact as if a newer package version produced it.
        with ArtifactStore(tmp_path, config) as store:
            artifact_name = next(
                p.stem for p in store.directory.glob("schedulability-*.json")
            )
            payload = store.load_result(artifact_name)
            payload["version"] = 99
            store.save_result(artifact_name, payload)

        with pytest.raises(PayloadVersionError):
            with ExperimentEngine(config, artifact_dir=str(tmp_path)) as engine:
                engine.schedulability_sweep()
        # The newer artifact must survive untouched.
        with ArtifactStore(tmp_path, config) as store:
            assert store.load_result(artifact_name)["version"] == 99


class TestAccuracyShortfall:
    def test_shortfall_is_recorded_and_warned(self, monkeypatch):
        config = ExperimentConfig(
            schedulability_utilisations=(0.3,),
            accuracy_utilisations=(0.3,),
            n_systems=2,
            include_ga=False,
        )
        infeasible = CellResult(
            schedulable=False, psi=0.0, upsilon=0.0, best_psi=0.0, best_upsilon=0.0
        )
        monkeypatch.setattr(engine_mod, "evaluate_cell", lambda cfg, job: infeasible)

        with pytest.warns(UserWarning, match="only 0 of the requested 2"):
            with ExperimentEngine(config) as engine:
                result = engine.accuracy_sweep()

        assert result.systems_evaluated == {0.3: 0}
        for series in (result.psi.series, result.upsilon.series):
            for values in series.values():
                assert all(math.isnan(v) for v in values)
