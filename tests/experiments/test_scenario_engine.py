"""Scenario-backed experiment configurations, engine sweeps and CLIs."""

import pytest

from repro.core.serialization import taskset_to_dict
from repro.experiments.artifacts import config_fingerprint
from repro.experiments.config import ExperimentConfig
from repro.experiments.controller_sim import run_controller_sim
from repro.experiments.engine import ExperimentEngine, generate_system
from repro.experiments.__main__ import main as experiments_main
from repro.scenario import Scenario, materialize
from repro.service.__main__ import main as service_main


@pytest.fixture()
def scenario_config():
    return ExperimentConfig.smoke().with_overrides(scenario="short-hyperperiod")


class TestScenarioConfig:
    def test_scenario_names_are_coerced_to_scenarios(self, scenario_config):
        assert isinstance(scenario_config.scenario, Scenario)
        assert scenario_config.scenario.name == "short-hyperperiod"

    def test_unknown_scenario_name_fails_at_construction(self):
        with pytest.raises(KeyError, match="paper-default"):
            ExperimentConfig.smoke().with_overrides(scenario="no-such")

    def test_fingerprint_depends_on_the_scenario(self, scenario_config):
        plain = ExperimentConfig.smoke()
        other = plain.with_overrides(scenario="bursty-periods")
        prints = {
            config_fingerprint(plain),
            config_fingerprint(scenario_config),
            config_fingerprint(other),
        }
        assert len(prints) == 3

    def test_generate_system_draws_from_the_scenario(self, scenario_config):
        expected = materialize(
            scenario_config.scenario, 1, utilisation=0.3
        ).task_set
        produced = generate_system(scenario_config, 0.3, 1)
        assert taskset_to_dict(produced) == taskset_to_dict(expected)
        # The scenario's hyper-period shows in the drawn systems.
        assert produced.hyperperiod() <= 360_000


class TestScenarioSweeps:
    def test_schedulability_sweep_is_worker_invariant(self, scenario_config):
        with ExperimentEngine(scenario_config, n_workers=1) as serial:
            a = serial.schedulability_sweep(utilisations=[0.3], methods=["static"])
        with ExperimentEngine(scenario_config, n_workers=2) as parallel:
            b = parallel.schedulability_sweep(utilisations=[0.3], methods=["static"])
        assert a.series == b.series

    def test_scenario_changes_the_sweep_results(self, scenario_config):
        plain = ExperimentConfig.smoke()
        with ExperimentEngine(plain) as engine:
            base = engine.schedulability_sweep(utilisations=[0.6], methods=["gpiocp"])
        with ExperimentEngine(scenario_config) as engine:
            scen = engine.schedulability_sweep(utilisations=[0.6], methods=["gpiocp"])
        # Different workloads: the two sweeps are decorrelated (values may
        # coincide at saturation, so compare the generated systems instead).
        assert taskset_to_dict(generate_system(plain, 0.6, 0)) != taskset_to_dict(
            generate_system(scenario_config, 0.6, 0)
        )
        assert base.utilisations == scen.utilisations


class TestControllerSimScenarios:
    def test_faulty_controller_scenario_detects_faults(self):
        result = run_controller_sim(
            config=ExperimentConfig.smoke(), scenario="faulty-controller", seed=3
        )
        assert result.faults_detected > 0

    def test_config_scenario_is_picked_up(self):
        config = ExperimentConfig.smoke().with_overrides(scenario="short-hyperperiod")
        result = run_controller_sim(utilisation=0.4, config=config, seed=3)
        assert result.controller_matches_offline

    def test_legacy_path_remains_fault_free(self):
        result = run_controller_sim(
            utilisation=0.4, config=ExperimentConfig.smoke(), seed=3
        )
        assert result.controller_matches_offline
        assert result.faults_detected == 0


class TestExperimentsCLI:
    def test_list_methods_and_scenarios(self, capsys):
        assert experiments_main(["--list-methods", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "static" in out and "HeuristicScheduler" in out
        assert "short-hyperperiod" in out and "paper-default" in out

    def test_figure_is_required_without_list_flags(self, capsys):
        with pytest.raises(SystemExit):
            experiments_main([])

    def test_unknown_scenario_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            experiments_main(["fig5", "--scenario", "no-such"])

    def test_fig5_runs_under_a_scenario(self, capsys):
        code = experiments_main(
            [
                "fig5",
                "--scale",
                "smoke",
                "--scenario",
                "short-hyperperiod",
                "--no-ga",
                "--methods",
                "static",
            ]
        )
        assert code == 0
        assert "Figure 5" in capsys.readouterr().out


class TestServiceCLIScenarioMode:
    def test_scenario_mode_builds_the_batch(self, tmp_path, capsys):
        out = tmp_path / "responses.jsonl"
        code = service_main(
            [
                "--scenario",
                "short-hyperperiod",
                "--systems",
                "2",
                "--methods",
                "static",
                "gpiocp",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        lines = out.read_text().splitlines()
        assert len(lines) == 4  # 2 systems x 2 methods

    def test_list_flags(self, capsys):
        assert service_main(["--list-methods", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "gpiocp" in out and "faulty-controller" in out

    def test_input_and_scenario_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            service_main(["requests.jsonl", "--scenario", "paper-default"])
        with pytest.raises(SystemExit):
            service_main([])
