"""Parity tests: the rewired controller_sim reproduces the legacy numbers.

The experiment was rewired from a hand-rolled simulation loop into a thin
two-request consumer of :mod:`repro.runtime`.  These baselines were recorded
from the pre-refactor implementation (seed 11, the historical default); every
path through the new subsystem — workload pick, schedule via the service,
controller execution, remote-CPU execution with its RNG stream — must land on
exactly the same numbers.
"""

import pytest

from repro.experiments import run_controller_sim


class TestLegacyParity:
    def test_default_scenario_reproduces_the_recorded_numbers(self):
        result = run_controller_sim(utilisation=0.5, seed=11)
        assert result.offline_psi == 0.696078431372549
        assert result.controller_psi == 0.696078431372549
        assert result.controller_upsilon == 0.8424803470540756
        assert result.controller_matches_offline is True
        assert result.remote_cpu_psi == 0.0
        assert result.remote_cpu_upsilon == 0.8411415960451973
        assert result.mean_noc_latency == 46.53921568627451
        assert result.max_noc_latency == 77
        assert result.faults_detected == 0
        assert result.skipped_jobs == 0

    def test_faulty_scenario_reproduces_the_recorded_fault_counters(self):
        result = run_controller_sim(scenario="faulty-controller", seed=11)
        assert result.controller_psi == 0.7040816326530612
        assert result.controller_upsilon == pytest.approx(0.846020576131687)
        assert result.faults_detected == 4
        assert result.skipped_jobs == 4
        assert result.mean_noc_latency == 46.53921568627451

    def test_two_runs_are_bit_identical(self):
        a = run_controller_sim(utilisation=0.5, seed=11)
        b = run_controller_sim(utilisation=0.5, seed=11)
        assert a == b
