"""Unit tests for the artifact layer: versioned JSON round-trips and the store."""

import json

import pytest

from repro.core.serialization import (
    canonical_json,
    content_hash,
    parse_versioned_payload,
    versioned_payload,
)
from repro.experiments import ExperimentConfig
from repro.experiments.artifacts import (
    ArtifactStore,
    accuracy_sweep_from_json,
    accuracy_sweep_to_json,
    config_fingerprint,
    sweep_result_from_dict,
    sweep_result_from_json,
    sweep_result_to_dict,
    sweep_result_to_json,
    table1_from_dict,
    table1_to_dict,
)
from repro.experiments.results import AccuracySweepResult, SweepResult


def make_sweep(name="schedulability"):
    return SweepResult(
        name=name,
        utilisations=[0.3, 0.6],
        series={"static": [1.0, 0.5], "ga": [1.0, 0.75]},
    )


class TestVersionedPayloads:
    def test_envelope_round_trip(self):
        payload = versioned_payload("repro/x", 3, {"a": 1})
        version, data = parse_versioned_payload(payload, "repro/x", max_version=3)
        assert version == 3
        assert data == {"a": 1}

    def test_kind_mismatch_rejected(self):
        payload = versioned_payload("repro/x", 1, {})
        with pytest.raises(ValueError, match="kind"):
            parse_versioned_payload(payload, "repro/y", max_version=1)

    def test_newer_version_rejected(self):
        payload = versioned_payload("repro/x", 2, {})
        with pytest.raises(ValueError, match="versions <= 1"):
            parse_versioned_payload(payload, "repro/x", max_version=1)

    def test_invalid_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            parse_versioned_payload({"kind": "repro/x", "version": "two"}, "repro/x", max_version=1)

    def test_content_hash_is_order_insensitive(self):
        assert content_hash({"a": 1, "b": 2}) == content_hash({"b": 2, "a": 1})
        assert content_hash({"a": 1}) != content_hash({"a": 2})
        assert canonical_json({"b": 1, "a": [1.5]}) == '{"a":[1.5],"b":1}'


class TestSweepRoundTrips:
    def test_sweep_result_json_round_trip(self):
        sweep = make_sweep()
        restored = sweep_result_from_json(sweep_result_to_json(sweep))
        assert restored == sweep

    def test_sweep_payload_is_versioned(self):
        payload = sweep_result_to_dict(make_sweep())
        assert payload["kind"] == "repro/sweep-result"
        assert payload["version"] == 1
        with pytest.raises(ValueError):
            sweep_result_from_dict({"kind": "other", "version": 1, "data": {}})

    def test_accuracy_sweep_json_round_trip(self):
        accuracy = AccuracySweepResult(
            psi=make_sweep("psi"),
            upsilon=make_sweep("upsilon"),
            systems_evaluated={0.3: 3, 0.6: 2},
        )
        restored = accuracy_sweep_from_json(accuracy_sweep_to_json(accuracy))
        assert restored == accuracy
        assert restored.systems_evaluated == {0.3: 3, 0.6: 2}

    def test_table1_round_trip(self):
        rows = [{"design": "proposed", "luts": 100}]
        ratios = {"luts_vs_mb_full": 0.236}
        data = table1_from_dict(table1_to_dict(rows, ratios))
        assert data["rows"] == rows
        assert data["ratios"] == ratios


class TestConfigFingerprint:
    def test_same_cell_config_same_fingerprint(self):
        base = ExperimentConfig.smoke()
        assert config_fingerprint(base) == config_fingerprint(base.with_overrides(n_workers=4))
        # Sweep shape does not enter the key: enlarged sweeps reuse old cells.
        assert config_fingerprint(base) == config_fingerprint(
            base.with_overrides(n_systems=7, schedulability_utilisations=(0.2, 0.5))
        )

    def test_cell_relevant_changes_change_fingerprint(self):
        base = ExperimentConfig.smoke()
        assert config_fingerprint(base) != config_fingerprint(base.with_overrides(seed=99))
        assert config_fingerprint(base) != config_fingerprint(
            base.with_overrides(ga=base.ga.__class__(population_size=99, generations=1))
        )


class TestArtifactStore:
    def test_cells_persist_across_reopen(self, tmp_path):
        config = ExperimentConfig.smoke()
        key = (0.3, 0, "static")
        record = {"s": True, "psi": 0.5, "ups": 0.9, "bpsi": 0.5, "bups": 0.9}
        with ArtifactStore(tmp_path, config) as store:
            assert store.get_cell(key) is None
            store.put_cell(key, record)
            assert store.get_cell(key) == record
        with ArtifactStore(tmp_path, config) as store:
            assert store.cell_count == 1
            assert store.get_cell(key) == record

    def test_different_configs_use_disjoint_directories(self, tmp_path):
        store_a = ArtifactStore(tmp_path, ExperimentConfig.smoke())
        store_b = ArtifactStore(tmp_path, ExperimentConfig.smoke().with_overrides(seed=1))
        assert store_a.directory != store_b.directory
        store_a.close()
        store_b.close()

    def test_truncated_trailing_journal_line_is_ignored(self, tmp_path):
        config = ExperimentConfig.smoke()
        record = {"s": True, "psi": 1.0, "ups": 1.0, "bpsi": 1.0, "bups": 1.0}
        with ArtifactStore(tmp_path, config) as store:
            store.put_cell((0.3, 0, "static"), record)
            journal = store.directory / ArtifactStore.CELLS_FILENAME
        # Simulate a write cut short by an interrupted run.
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"u": 0.3, "i": 1, "m": "stat')
        with ArtifactStore(tmp_path, config) as store:
            assert store.cell_count == 1
            assert store.get_cell((0.3, 0, "static")) == record
            assert store.get_cell((0.3, 1, "static")) is None

    def test_save_and_load_result(self, tmp_path):
        config = ExperimentConfig.smoke()
        with ArtifactStore(tmp_path, config) as store:
            payload = sweep_result_to_dict(make_sweep())
            path = store.save_result("schedulability-test", payload)
            assert path.exists()
            assert store.load_result("schedulability-test") == payload
            assert store.load_result("missing") is None

    def test_config_json_written_for_humans(self, tmp_path):
        config = ExperimentConfig.smoke()
        with ArtifactStore(tmp_path, config) as store:
            config_path = store.directory / ArtifactStore.CONFIG_FILENAME
        data = json.loads(config_path.read_text())
        assert data["data"]["fingerprint"] == config_fingerprint(config)
        assert data["data"]["full_config"]["n_systems"] == config.n_systems
