"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import Simulator


class TestSimulator:
    def test_runs_events_in_order_and_advances_clock(self):
        sim = Simulator()
        seen = []
        sim.at(10, lambda: seen.append(("a", sim.now)))
        sim.at(5, lambda: seen.append(("b", sim.now)))
        processed = sim.run()
        assert processed == 2
        assert seen == [("b", 5), ("a", 10)]
        assert sim.now == 10

    def test_after_schedules_relative_delay(self):
        sim = Simulator()
        seen = []
        sim.at(5, lambda: sim.after(7, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [12]

    def test_run_until_horizon(self):
        sim = Simulator()
        seen = []
        sim.at(5, lambda: seen.append(5))
        sim.at(50, lambda: seen.append(50))
        sim.run(until=20)
        assert seen == [5]
        assert sim.now == 20
        sim.run()
        assert seen == [5, 50]

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator()
        sim.at(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(5, lambda: None)
        with pytest.raises(ValueError):
            sim.after(-1, lambda: None)

    def test_stop_from_within_event(self):
        sim = Simulator()
        seen = []
        sim.at(1, lambda: (seen.append(1), sim.stop()))
        sim.at(2, lambda: seen.append(2))
        sim.run()
        assert seen == [1]
        sim.run()
        assert seen == [1, 2]

    def test_max_events_bound(self):
        sim = Simulator()
        for t in range(10):
            sim.at(t, lambda: None)
        assert sim.run(max_events=4) == 4

    def test_max_events_exhaustion_is_distinguishable(self):
        sim = Simulator()
        for t in range(10):
            sim.at(t, lambda: None)
        sim.run(max_events=4)
        assert sim.exhausted  # budget ran out with events still pending
        sim.run()
        assert not sim.exhausted  # the queue genuinely drained

    def test_exact_budget_finish_is_not_exhausted(self):
        sim = Simulator()
        for t in range(4):
            sim.at(t, lambda: None)
        assert sim.run(max_events=4) == 4
        assert not sim.exhausted

    def test_budget_stop_past_horizon_is_not_exhausted(self):
        sim = Simulator()
        sim.at(1, lambda: None)
        sim.at(50, lambda: None)
        sim.run(until=10, max_events=1)
        # The only remaining event lies beyond the horizon: the run finished
        # its window, it did not starve.
        assert not sim.exhausted

    def test_run_until_exact_event_timestamp_processes_the_event(self):
        sim = Simulator()
        seen = []
        sim.at(20, lambda: seen.append(sim.now))
        sim.at(21, lambda: seen.append(sim.now))
        sim.run(until=20)
        assert seen == [20]  # until= is inclusive of the horizon itself
        assert sim.now == 20

    def test_same_time_events_tie_break_deterministically(self):
        # Priority first, then insertion order — regardless of the order the
        # (priority, insertion) pairs were pushed in.
        sim = Simulator()
        seen = []
        sim.at(5, lambda: seen.append("late-priority"), priority=1)
        sim.at(5, lambda: seen.append("first-inserted"))
        sim.at(5, lambda: seen.append("second-inserted"))
        sim.at(5, lambda: seen.append("negative-priority"), priority=-1)
        sim.run()
        assert seen == [
            "negative-priority",
            "first-inserted",
            "second-inserted",
            "late-priority",
        ]

    def test_scheduling_in_the_past_from_inside_a_callback(self):
        sim = Simulator()
        errors = []

        def tries_to_rewind():
            try:
                sim.at(3, lambda: None)
            except ValueError as error:
                errors.append(str(error))

        sim.at(10, tries_to_rewind)
        sim.run()
        assert len(errors) == 1
        assert "now=10" in errors[0]

    def test_trace_bounds_are_forwarded_to_the_default_recorder(self):
        sim = Simulator(trace_kinds=("tick",), max_trace_events=2)
        for t in range(4):
            sim.at(t, lambda: sim.trace.record(sim.now, source="s", kind="tick"))
            sim.at(t, lambda: sim.trace.record(sim.now, source="s", kind="noise"))
        sim.run()
        assert len(sim.trace) == 2
        assert all(event.kind == "tick" for event in sim.trace)
        assert sim.trace.dropped == 6

    def test_explicit_trace_refuses_bound_kwargs(self):
        from repro.sim import TraceRecorder

        with pytest.raises(ValueError):
            Simulator(trace=TraceRecorder(), max_trace_events=5)

    def test_cancel_scheduled_event(self):
        sim = Simulator()
        seen = []
        handle = sim.at(3, lambda: seen.append("x"))
        sim.cancel(handle)
        sim.run()
        assert seen == []

    def test_trace_recording(self):
        sim = Simulator()
        sim.at(7, lambda: sim.trace.record(sim.now, source="unit", kind="tick"))
        sim.run()
        assert len(sim.trace) == 1
        assert sim.trace.first(kind="tick").time == 7
