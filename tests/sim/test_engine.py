"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import Simulator


class TestSimulator:
    def test_runs_events_in_order_and_advances_clock(self):
        sim = Simulator()
        seen = []
        sim.at(10, lambda: seen.append(("a", sim.now)))
        sim.at(5, lambda: seen.append(("b", sim.now)))
        processed = sim.run()
        assert processed == 2
        assert seen == [("b", 5), ("a", 10)]
        assert sim.now == 10

    def test_after_schedules_relative_delay(self):
        sim = Simulator()
        seen = []
        sim.at(5, lambda: sim.after(7, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [12]

    def test_run_until_horizon(self):
        sim = Simulator()
        seen = []
        sim.at(5, lambda: seen.append(5))
        sim.at(50, lambda: seen.append(50))
        sim.run(until=20)
        assert seen == [5]
        assert sim.now == 20
        sim.run()
        assert seen == [5, 50]

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator()
        sim.at(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(5, lambda: None)
        with pytest.raises(ValueError):
            sim.after(-1, lambda: None)

    def test_stop_from_within_event(self):
        sim = Simulator()
        seen = []
        sim.at(1, lambda: (seen.append(1), sim.stop()))
        sim.at(2, lambda: seen.append(2))
        sim.run()
        assert seen == [1]
        sim.run()
        assert seen == [1, 2]

    def test_max_events_bound(self):
        sim = Simulator()
        for t in range(10):
            sim.at(t, lambda: None)
        assert sim.run(max_events=4) == 4

    def test_cancel_scheduled_event(self):
        sim = Simulator()
        seen = []
        handle = sim.at(3, lambda: seen.append("x"))
        sim.cancel(handle)
        sim.run()
        assert seen == []

    def test_trace_recording(self):
        sim = Simulator()
        sim.at(7, lambda: sim.trace.record(sim.now, source="unit", kind="tick"))
        sim.run()
        assert len(sim.trace) == 1
        assert sim.trace.first(kind="tick").time == 7
