"""Unit tests for the event queue."""

import pytest

from repro.sim.events import EventQueue


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(30, lambda: fired.append("c"))
        queue.push(10, lambda: fired.append("a"))
        queue.push(20, lambda: fired.append("b"))
        while queue:
            queue.pop().action()
        assert fired == ["a", "b", "c"]

    def test_same_time_ordered_by_priority_then_insertion(self):
        queue = EventQueue()
        order = []
        queue.push(5, lambda: order.append("late"), priority=1)
        queue.push(5, lambda: order.append("early"), priority=0)
        queue.push(5, lambda: order.append("late2"), priority=1)
        while queue:
            queue.pop().action()
        assert order == ["early", "late", "late2"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        keep = queue.push(1, lambda: fired.append("keep"))
        cancel = queue.push(2, lambda: fired.append("cancel"))
        queue.cancel(cancel)
        assert len(queue) == 1
        while queue:
            queue.pop().action()
        assert fired == ["keep"]

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(42, lambda: None)
        assert queue.peek_time() == 42

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1, lambda: None)

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None
