"""Unit tests for the simulation clock and trace recorder."""

import pytest

from repro.sim import SimClock, TraceRecorder


class TestSimClock:
    def test_advance_and_read(self):
        clock = SimClock()
        clock.advance_to(17)
        assert clock.now == 17
        assert clock.raw_time == 17

    def test_cannot_move_backwards(self):
        clock = SimClock()
        clock.advance_to(10)
        with pytest.raises(ValueError):
            clock.advance_to(5)

    def test_resolution_quantises_reading(self):
        clock = SimClock(resolution=10)
        clock.advance_to(27)
        assert clock.now == 20

    def test_offset_applied(self):
        clock = SimClock(offset=3)
        clock.advance_to(10)
        assert clock.now == 13

    def test_next_tick_at_or_after(self):
        clock = SimClock(resolution=8)
        assert clock.next_tick_at_or_after(16) == 16
        assert clock.next_tick_at_or_after(17) == 24

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValueError):
            SimClock(resolution=0)


class TestTraceRecorder:
    def test_record_and_filter(self):
        trace = TraceRecorder()
        trace.record(1, source="a", kind="start", value=1)
        trace.record(2, source="b", kind="start")
        trace.record(3, source="a", kind="finish")
        assert len(trace) == 3
        assert len(trace.filter(source="a")) == 2
        assert len(trace.filter(kind="start")) == 2
        assert trace.first(source="a", kind="finish").time == 3
        assert trace.first(kind="missing") is None

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(1, source="a", kind="x")
        trace.clear()
        assert len(trace) == 0

    def test_kinds_filter_drops_other_kinds_at_record_time(self):
        trace = TraceRecorder(kinds=("start",))
        kept = trace.record(1, source="a", kind="start")
        rejected = trace.record(2, source="a", kind="finish")
        assert kept is not None
        assert rejected is None
        assert len(trace) == 1
        assert trace.dropped == 1

    def test_max_events_bounds_memory(self):
        trace = TraceRecorder(max_events=2)
        for t in range(5):
            trace.record(t, source="a", kind="tick")
        assert len(trace) == 2
        assert trace.dropped == 3
        assert [event.time for event in trace] == [0, 1]

    def test_clear_resets_the_bound_and_dropped_counter(self):
        trace = TraceRecorder(max_events=1)
        trace.record(1, source="a", kind="x")
        trace.record(2, source="a", kind="x")
        assert trace.dropped == 1
        trace.clear()
        assert trace.dropped == 0
        assert trace.record(3, source="a", kind="x") is not None

    def test_counts_by_kind(self):
        trace = TraceRecorder()
        trace.record(1, source="a", kind="b-kind")
        trace.record(2, source="a", kind="a-kind")
        trace.record(3, source="a", kind="b-kind")
        assert trace.counts_by_kind() == {"a-kind": 1, "b-kind": 2}

    def test_invalid_max_events_is_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_events=-1)
