"""CampaignSpec: lossless round-trip, content addressing, grid expansion."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign import (
    CAMPAIGN_KIND,
    CAMPAIGN_METRICS,
    CampaignSpec,
    build_campaign,
    create_campaign,
    load_campaign,
)
from repro.core.serialization import PayloadVersionError
from repro.scenario import create_scenario
from repro.service import SchedulerSpec


def sample_spec() -> CampaignSpec:
    return CampaignSpec(
        name="sample",
        description="two presets, two methods",
        scenarios=("paper-default", "short-hyperperiod"),
        methods=("static", "ga:generations=4,population_size=8"),
        n_systems=2,
        utilisations=(0.3, 0.5),
        replications=2,
        metrics=("psi", "schedulable"),
    )


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self):
        spec = sample_spec()
        rebuilt = CampaignSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.content_key() == spec.content_key()
        # And a second round-trip produces identical bytes.
        assert rebuilt.to_json() == spec.to_json()

    def test_envelope_kind_and_version(self):
        payload = sample_spec().to_dict()
        assert payload["kind"] == CAMPAIGN_KIND
        assert payload["version"] == 1

    def test_newer_version_fails_loudly(self):
        payload = sample_spec().to_dict()
        payload["version"] = 99
        with pytest.raises(PayloadVersionError):
            CampaignSpec.from_dict(payload)

    def test_unknown_fields_are_rejected(self):
        payload = sample_spec().to_dict()
        payload["data"]["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            CampaignSpec.from_dict(payload)


class TestContentKey:
    def test_every_field_enters_the_key(self):
        base = sample_spec()
        variants = [
            CampaignSpec(**{**_kwargs(base), "name": "other"}),
            CampaignSpec(**{**_kwargs(base), "description": "changed"}),
            CampaignSpec(**{**_kwargs(base), "scenarios": ("paper-default",)}),
            CampaignSpec(**{**_kwargs(base), "methods": ("static",)}),
            CampaignSpec(**{**_kwargs(base), "n_systems": 3}),
            CampaignSpec(**{**_kwargs(base), "utilisations": (0.3,)}),
            CampaignSpec(**{**_kwargs(base), "replications": 1}),
            CampaignSpec(**{**_kwargs(base), "metrics": ("psi",)}),
        ]
        keys = {base.content_key()} | {variant.content_key() for variant in variants}
        assert len(keys) == len(variants) + 1

    def test_scenario_field_change_changes_the_key(self):
        base = sample_spec()
        tweaked = CampaignSpec(
            **{
                **_kwargs(base),
                "scenarios": (
                    create_scenario("paper-default").with_platform(mesh_width=8),
                    "short-hyperperiod",
                ),
            }
        )
        assert tweaked.content_key() != base.content_key()

    def test_logically_equal_specs_share_a_key(self):
        by_string = CampaignSpec(methods=("ga:b=1,a=2",), scenarios=("paper-default",))
        by_spec = CampaignSpec(
            methods=(SchedulerSpec("ga", {"a": 2, "b": 1}),),
            scenarios=(create_scenario("paper-default"),),
        )
        assert by_string.content_key() == by_spec.content_key()


class TestValidation:
    def test_duplicate_scenario_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            CampaignSpec(scenarios=("paper-default", "paper-default"))

    def test_duplicate_methods_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            CampaignSpec(methods=("static", "static"))

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign metrics"):
            CampaignSpec(metrics=("psi", "speedup"))

    def test_metric_order_is_normalised(self):
        spec = CampaignSpec(metrics=("upsilon", "schedulable", "psi"))
        assert spec.metrics == ("schedulable", "psi", "upsilon")

    @pytest.mark.parametrize("field_name", ["n_systems", "replications"])
    def test_counts_must_be_positive(self, field_name):
        with pytest.raises(ValueError, match=field_name):
            CampaignSpec(**{field_name: 0})

    def test_utilisations_must_be_in_unit_interval(self):
        with pytest.raises(ValueError, match="utilisations"):
            CampaignSpec(utilisations=(1.5,))

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="scenario"):
            CampaignSpec(scenarios=())
        with pytest.raises(ValueError, match="method"):
            CampaignSpec(methods=())


class TestGrid:
    def test_cell_count_and_canonical_order(self):
        spec = sample_spec()
        cells = list(spec.cells())
        assert len(cells) == spec.n_cells == 2 * 2 * 2 * 2 * 2
        assert len({cell.key() for cell in cells}) == len(cells)
        # Scenario-major order: all paper-default cells come first.
        assert [cell.scenario for cell in cells[:16]] == ["paper-default"] * 16

    def test_no_utilisations_means_one_point_per_scenario(self):
        spec = CampaignSpec(scenarios=("paper-default",), methods=("static",))
        cells = list(spec.cells())
        assert len(cells) == 1
        assert cells[0].utilisation is None


class TestResolution:
    def test_create_campaign_accepts_spec_dict_and_json(self):
        spec = sample_spec()
        assert create_campaign(spec) is spec
        assert create_campaign(spec.to_dict()) == spec
        assert create_campaign(spec.to_json()) == spec

    def test_create_campaign_rejects_non_json_strings(self):
        with pytest.raises(ValueError, match="inline"):
            create_campaign("some-name")

    def test_load_campaign_reads_files(self, tmp_path):
        spec = sample_spec()
        path = tmp_path / "campaign.json"
        path.write_text(spec.to_json(indent=2))
        assert load_campaign(str(path)) == spec

    def test_load_campaign_missing_file_is_an_error(self):
        with pytest.raises(ValueError, match="not found"):
            load_campaign("does-not-exist.json")

    def test_build_campaign_defaults(self):
        spec = build_campaign()
        assert spec.metrics == CAMPAIGN_METRICS
        assert [scenario.name for scenario in spec.scenarios] == ["paper-default"]
        assert json.loads(spec.to_json())["kind"] == CAMPAIGN_KIND


_method_strings = st.sampled_from(
    ["static", "gpiocp", "fps-offline", "ga:generations=4,population_size=8"]
)

_campaigns = st.builds(
    CampaignSpec,
    name=st.sampled_from(["alpha", "beta-2", "grid run"]).map(str.strip),
    description=st.sampled_from(["", "a campaign"]),
    scenarios=st.lists(
        st.sampled_from(["paper-default", "short-hyperperiod", "bursty-periods"]),
        min_size=1,
        max_size=3,
        unique=True,
    ).map(tuple),
    methods=st.lists(_method_strings, min_size=1, max_size=3, unique=True).map(tuple),
    n_systems=st.integers(min_value=1, max_value=50),
    utilisations=st.lists(
        st.sampled_from([0.2, 0.35, 0.5, 0.75, 1.0]), max_size=3, unique=True
    ).map(tuple),
    replications=st.integers(min_value=1, max_value=4),
    metrics=st.lists(
        st.sampled_from(CAMPAIGN_METRICS), min_size=1, max_size=6, unique=True
    ).map(tuple),
)


class TestPropertyRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(spec=_campaigns)
    def test_json_round_trip_and_content_key_are_stable(self, spec):
        rebuilt = CampaignSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.content_key() == spec.content_key()
        assert rebuilt.to_json() == spec.to_json()
        cells = list(spec.cells())
        assert len(cells) == spec.n_cells
        assert len({cell.key() for cell in cells}) == len(cells)


def _kwargs(spec: CampaignSpec) -> dict:
    return {
        "name": spec.name,
        "description": spec.description,
        "scenarios": spec.scenarios,
        "methods": spec.methods,
        "n_systems": spec.n_systems,
        "utilisations": spec.utilisations,
        "replications": spec.replications,
        "metrics": spec.metrics,
    }
