"""Sharded campaign execution: partition properties, byte-identical merge."""

import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign import (
    CAMPAIGN_JOURNAL_FILENAME,
    CampaignRunner,
    build_campaign,
    cell_shard,
    find_shard_journals,
    load_campaign_records,
    merge_shard_journals,
    parse_shard,
    run_campaign,
    runtime_cell_shard,
    shard_journal_filename,
    shard_of_key,
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def small_spec(**overrides):
    settings = dict(
        name="shard-test",
        scenarios=("paper-default",),
        methods=("static", "gpiocp"),
        n_systems=2,
        replications=1,
        execution_models=("controller",),
    )
    settings.update(overrides)
    return build_campaign(**settings)


class TestShardOfKey:
    @given(
        key=st.text(alphabet="0123456789abcdef", min_size=16, max_size=16),
        n_shards=st.integers(min_value=1, max_value=64),
    )
    def test_shard_is_in_range(self, key, n_shards):
        assert 0 <= shard_of_key(key, n_shards) < n_shards

    @given(
        keys=st.lists(
            st.text(alphabet="0123456789abcdef", min_size=16, max_size=16),
            min_size=2,
            max_size=20,
        ),
        n_shards=st.integers(min_value=1, max_value=16),
    )
    def test_ranges_are_contiguous(self, keys, n_shards):
        """Key order and shard order agree: shards are keyspace *ranges*."""
        shards = [shard_of_key(key, n_shards) for key in sorted(keys)]
        assert shards == sorted(shards)

    def test_single_shard_owns_everything(self):
        assert shard_of_key("0" * 16, 1) == 0
        assert shard_of_key("f" * 16, 1) == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError, match="n_shards"):
            shard_of_key("0" * 16, 0)
        with pytest.raises(ValueError, match="invalid content key"):
            shard_of_key("not-hex!", 4)
        with pytest.raises(ValueError, match="invalid content key"):
            shard_of_key("abc", 4)


class TestGridPartition:
    @settings(max_examples=15, deadline=None)
    @given(
        n_systems=st.integers(min_value=1, max_value=3),
        replications=st.integers(min_value=1, max_value=2),
        n_utilisations=st.integers(min_value=0, max_value=2),
        n_shards=st.integers(min_value=1, max_value=6),
    )
    def test_shards_partition_any_grid(
        self, n_systems, replications, n_utilisations, n_shards
    ):
        """Every cell of every grid lands in exactly one shard."""
        spec = small_spec(
            n_systems=n_systems,
            replications=replications,
            utilisations=(0.3, 0.5)[:n_utilisations],
        )
        cells = list(spec.cells())
        runtime_cells = list(spec.runtime_cells())
        shard_lists = [
            [c for c in cells if cell_shard(spec, c, n_shards) == index]
            for index in range(n_shards)
        ]
        runtime_shard_lists = [
            [c for c in runtime_cells if runtime_cell_shard(spec, c, n_shards) == index]
            for index in range(n_shards)
        ]
        # Complete: the union, reassembled in order, is the full grid ...
        assert sorted(
            (cell for shard in shard_lists for cell in shard), key=lambda c: c.key()
        ) == sorted(cells, key=lambda c: c.key())
        assert sorted(
            (cell for shard in runtime_shard_lists for cell in shard),
            key=lambda c: c.key(),
        ) == sorted(runtime_cells, key=lambda c: c.key())
        # ... and disjoint: the sizes add up exactly.
        assert sum(len(shard) for shard in shard_lists) == len(cells)
        assert sum(len(s) for s in runtime_shard_lists) == len(runtime_cells)

    def test_runtime_cells_follow_their_schedule_cell(self):
        spec = small_spec()
        for cell in spec.runtime_cells():
            assert runtime_cell_shard(spec, cell, 4) == cell_shard(
                spec, cell.schedule_cell(), 4
            )


class TestParseShard:
    def test_valid(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard(" 2/4 ") == (2, 4)

    @pytest.mark.parametrize("text", ["0/4", "5/4", "0/0", "a/b", "1-4", "1/", "/4"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_shard(text)

    def test_filename_round_trip(self):
        from repro.campaign.runner import SHARD_JOURNAL_RE

        name = shard_journal_filename(3, 8)
        match = SHARD_JOURNAL_RE.match(name)
        assert match and (int(match.group(1)), int(match.group(2))) == (3, 8)


class TestShardedRuns:
    def test_two_shards_merge_byte_identical_to_single_process(self, tmp_path):
        spec = small_spec()
        single = run_campaign(spec, artifact_dir=tmp_path / "single")
        assert single.complete
        reference = (
            tmp_path / "single" / spec.content_key() / CAMPAIGN_JOURNAL_FILENAME
        ).read_bytes()

        sharded_dir = tmp_path / "sharded"
        db = tmp_path / "cache.db"
        results = [
            run_campaign(
                spec,
                artifact_dir=sharded_dir,
                shard=(index, 2),
                cache_backend=f"sqlite:path={db}",
            )
            for index in (1, 2)
        ]
        assert all(result.complete for result in results)
        # The last finishing shard merged automatically.
        assert any(result.merged_journal is not None for result in results)
        merged = (
            sharded_dir / spec.content_key() / CAMPAIGN_JOURNAL_FILENAME
        ).read_bytes()
        assert merged == reference
        # Both runs together covered the grid exactly once.
        assert sum(result.evaluated for result in results) == (
            spec.n_cells + spec.n_runtime_cells
        )
        # And the reports agree too.
        records, runtime_records = load_campaign_records(sharded_dir, spec)
        single_records, single_runtime = load_campaign_records(
            tmp_path / "single", spec
        )
        assert records == single_records
        assert runtime_records == single_runtime

    def test_shard_resume_recomputes_nothing(self, tmp_path):
        spec = small_spec(execution_models=())
        first = run_campaign(spec, artifact_dir=tmp_path, shard=(1, 2))
        again = run_campaign(spec, artifact_dir=tmp_path, shard=(1, 2))
        assert again.evaluated == 0
        assert again.resumed == first.evaluated
        assert again.complete

    def test_incomplete_shards_do_not_merge(self, tmp_path):
        spec = small_spec(execution_models=())
        result = run_campaign(spec, artifact_dir=tmp_path, shard=(1, 2))
        assert result.complete  # this shard is done ...
        assert result.merged_journal is None  # ... but the campaign is not
        directory = tmp_path / spec.content_key()
        assert not (directory / CAMPAIGN_JOURNAL_FILENAME).exists()
        with pytest.raises(ValueError, match="cannot merge"):
            merge_shard_journals(directory, spec)

    def test_shard_requires_artifact_dir(self):
        with pytest.raises(ValueError, match="artifact_dir"):
            CampaignRunner(small_spec(), shard=(1, 2))

    def test_invalid_shard_tuple(self, tmp_path):
        with pytest.raises(ValueError, match="shard"):
            CampaignRunner(small_spec(), artifact_dir=tmp_path, shard=(3, 2))

    def test_cache_dir_and_backend_conflict(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            CampaignRunner(
                small_spec(),
                artifact_dir=tmp_path,
                cache_dir=str(tmp_path / "cache"),
                cache_backend=f"sqlite:path={tmp_path / 'cache.db'}",
            )


class TestFindAndMerge:
    def test_find_shard_journals(self, tmp_path):
        (tmp_path / shard_journal_filename(1, 2)).write_text("")
        (tmp_path / shard_journal_filename(2, 2)).write_text("")
        (tmp_path / CAMPAIGN_JOURNAL_FILENAME).write_text("")  # not a shard
        n_shards, journals = find_shard_journals(tmp_path)
        assert n_shards == 2
        assert sorted(journals) == [1, 2]

    def test_empty_directory(self, tmp_path):
        assert find_shard_journals(tmp_path) == (0, {})
        with pytest.raises(ValueError, match="no shard journals"):
            merge_shard_journals(tmp_path, small_spec())

    def test_mixed_totals_are_rejected(self, tmp_path):
        (tmp_path / shard_journal_filename(1, 2)).write_text("")
        (tmp_path / shard_journal_filename(1, 4)).write_text("")
        with pytest.raises(ValueError, match="mixed shard totals"):
            find_shard_journals(tmp_path)

    def test_explicit_merge_matches_auto_merge(self, tmp_path):
        spec = small_spec(execution_models=())
        for index in (1, 2):
            run_campaign(spec, artifact_dir=tmp_path, shard=(index, 2))
        directory = tmp_path / spec.content_key()
        merged = (directory / CAMPAIGN_JOURNAL_FILENAME).read_bytes()
        target = merge_shard_journals(directory, spec)
        assert target.read_bytes() == merged


class TestShardCli:
    def run_cli(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.campaign", *argv],
            env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_sharded_run_and_merge_subcommand(self, tmp_path):
        base = [
            "run",
            "--name",
            "cli-shard",
            "--scenarios",
            "paper-default",
            "--methods",
            "static",
            "--systems",
            "2",
            "--artifact-dir",
            str(tmp_path / "camp"),
            "--cache-backend",
            f"sqlite:path={tmp_path / 'cache.db'}",
            "--report",
            "none",
        ]
        first = self.run_cli(*base, "--shard", "1/2")
        assert first.returncode == 0, first.stderr
        assert "shard 1/2" in first.stderr
        second = self.run_cli(*base, "--shard", "2/2")
        assert second.returncode == 0, second.stderr
        merge = self.run_cli("merge", "--artifact-dir", str(tmp_path / "camp"))
        assert merge.returncode == 0, merge.stderr
        assert "merged shard journals" in merge.stderr
        report = self.run_cli(
            "report", "--artifact-dir", str(tmp_path / "camp"), "--format", "json"
        )
        assert report.returncode == 0, report.stderr
        assert "warning" not in report.stderr

    def test_shard_without_artifact_dir_is_rejected(self, tmp_path):
        result = self.run_cli(
            "run", "--name", "x", "--shard", "1/2", "--report", "none"
        )
        assert result.returncode == 2
        assert "--shard requires --artifact-dir" in result.stderr

    def test_bad_shard_designator_is_rejected(self, tmp_path):
        result = self.run_cli(
            "run",
            "--name",
            "x",
            "--artifact-dir",
            str(tmp_path),
            "--shard",
            "7",
            "--report",
            "none",
        )
        assert result.returncode == 2
        assert "I/N" in result.stderr
