"""Campaign-over-daemon tests: CampaignRunner riding a warm repro.server."""

import pytest

from repro.campaign import build_campaign
from repro.campaign.runner import CampaignRunner
from repro.scenario import Scenario, WorkloadSpec
from repro.server import (
    RemoteSchedulingService,
    RemoteSimulationService,
    ThreadedServer,
)
from repro.taskgen import GeneratorConfig


def tiny_scenario(name="tiny-server"):
    return Scenario(
        name=name,
        workload=WorkloadSpec(
            utilisation=0.4,
            generator=GeneratorConfig(
                hyperperiod_ms=360, min_period_ms=60, max_period_ms=120
            ),
        ),
    )


@pytest.fixture(scope="module")
def spec():
    return build_campaign(
        name="over-server",
        scenarios=(tiny_scenario(),),
        methods=("static", "gpiocp"),
        execution_models=("dedicated-controller",),
    )


class TestCampaignOverServer:
    def test_remote_run_matches_local_run(self, spec):
        with CampaignRunner(spec) as local_runner:
            local = local_runner.run()
        with ThreadedServer(n_workers=1, port=0) as threaded:
            service = RemoteSchedulingService(threaded.host, threaded.port)
            simulation = RemoteSimulationService(threaded.host, threaded.port)
            try:
                with CampaignRunner(
                    spec, service=service, simulation=simulation
                ) as remote_runner:
                    remote = remote_runner.run()
                stats = service.stats()
            finally:
                simulation.close()
                service.close()
        assert remote.complete and local.complete
        assert remote.records == local.records
        assert remote.runtime_records == local.runtime_records
        # The cells really ran server-side.
        assert stats["schedule"]["computed"] == len(local.records)
        assert stats["simulation"]["computed"] == len(local.runtime_records)

    def test_warm_daemon_resumes_for_free(self, spec, tmp_path):
        with ThreadedServer(n_workers=1, port=0) as threaded:
            for _ in range(2):
                service = RemoteSchedulingService(threaded.host, threaded.port)
                simulation = RemoteSimulationService(threaded.host, threaded.port)
                try:
                    with CampaignRunner(
                        spec, service=service, simulation=simulation
                    ) as runner:
                        result = runner.run()
                    assert result.complete
                finally:
                    simulation.close()
                    service.close()
            with RemoteSchedulingService(threaded.host, threaded.port) as control:
                stats = control.stats()
        # Second campaign run hit the daemon's caches throughout: the
        # compute counters did not move past the first run's cell count.
        assert stats["schedule"]["computed"] == len(result.records)
        assert stats["simulation"]["computed"] == len(result.runtime_records)
        assert stats["schedule"]["cache"]["hits"] >= len(result.records)

    def test_remote_service_reports_daemon_worker_count(self):
        with ThreadedServer(n_workers=2, port=0) as threaded:
            with RemoteSchedulingService(threaded.host, threaded.port) as service:
                assert service.n_workers == 2
