"""Campaign timing sidecars: journal byte-identity, aggregation, the table."""

import json
import math

import pytest

from repro.campaign import build_campaign, run_campaign
from repro.campaign.timings import (
    TIMINGS_FILENAME,
    TimingsWriter,
    format_timings_table,
    read_timing_entries,
    timings_filename,
    timings_rows,
)

SCENARIO = "short-hyperperiod"


def spec(**overrides):
    options = dict(
        name="timed",
        scenarios=(SCENARIO,),
        methods=("static",),
        n_systems=2,
    )
    options.update(overrides)
    return build_campaign(**options)


class TestSidecarWriting:
    def test_run_with_timings_writes_one_line_per_evaluated_cell(self, tmp_path):
        result = run_campaign(spec(), artifact_dir=tmp_path, timings=True)
        directory = tmp_path / spec().content_key()
        entries = read_timing_entries(directory)
        assert len(entries) == len(result.records) == 2
        for entry in entries:
            assert entry["kind"] == "schedule"
            assert entry["sc"] == SCENARIO
            assert entry["cache"] in ("miss", "disabled")
            assert entry["elapsed_ms"] >= 0.0

    def test_runtime_cells_get_their_own_entries(self, tmp_path):
        campaign = spec(execution_models=("dedicated-controller",))
        run_campaign(campaign, artifact_dir=tmp_path, timings=True)
        entries = read_timing_entries(tmp_path / campaign.content_key())
        kinds = sorted({entry["kind"] for entry in entries})
        assert kinds == ["schedule", "simulation"]
        simulated = [entry for entry in entries if entry["kind"] == "simulation"]
        assert all("x" in entry for entry in simulated)

    def test_without_the_flag_no_sidecar_appears(self, tmp_path):
        run_campaign(spec(), artifact_dir=tmp_path)
        directory = tmp_path / spec().content_key()
        assert not list(directory.glob("*.metrics.jsonl"))

    def test_resumed_cells_write_no_timing_lines(self, tmp_path):
        run_campaign(spec(), artifact_dir=tmp_path, timings=True)
        directory = tmp_path / spec().content_key()
        before = len(read_timing_entries(directory))
        result = run_campaign(spec(), artifact_dir=tmp_path, timings=True)
        assert result.evaluated == 0
        assert len(read_timing_entries(directory)) == before

    def test_in_memory_campaign_ignores_timings(self):
        result = run_campaign(spec(), timings=True)
        assert len(result.records) == 2


class TestJournalByteIdentity:
    """Acceptance: the journal's bytes do not depend on the timings flag."""

    def test_journal_identical_with_and_without_timings(self, tmp_path):
        run_campaign(spec(), artifact_dir=tmp_path / "with", timings=True)
        run_campaign(spec(), artifact_dir=tmp_path / "without")
        key = spec().content_key()
        with_timings = (tmp_path / "with" / key / "campaign.jsonl").read_bytes()
        without = (tmp_path / "without" / key / "campaign.jsonl").read_bytes()
        assert with_timings == without

    def test_sidecar_lines_never_reach_the_journal(self, tmp_path):
        run_campaign(spec(), artifact_dir=tmp_path, timings=True)
        journal = tmp_path / spec().content_key() / "campaign.jsonl"
        for line in journal.read_text(encoding="utf-8").splitlines():
            assert "elapsed_ms" not in json.loads(line)


class TestAggregation:
    def entries(self):
        return [
            {"kind": "schedule", "sc": "a", "m": "static", "cache": "miss", "elapsed_ms": 10.0},
            {"kind": "schedule", "sc": "a", "m": "static", "cache": "miss", "elapsed_ms": 30.0},
            {"kind": "schedule", "sc": "a", "m": "static", "cache": "hit", "elapsed_ms": 0.1},
            {"kind": "schedule", "sc": "b", "m": "ga", "cache": "miss", "elapsed_ms": 500.0},
        ]

    def test_rows_group_by_scenario_method_kind(self):
        rows = timings_rows(self.entries())
        assert [(row["scenario"], row["method"]) for row in rows] == [
            ("a", "static"),
            ("b", "ga"),
        ]
        first = rows[0]
        assert first["n"] == 3
        assert first["hits"] == 1
        assert first["p50_ms"] == pytest.approx(20.0)

    def test_hits_are_excluded_from_percentiles(self):
        rows = timings_rows(self.entries())
        assert rows[0]["p50_ms"] > 1.0

    def test_all_hits_yield_nan_percentiles(self):
        rows = timings_rows(
            [{"kind": "schedule", "sc": "a", "m": "s", "cache": "hit", "elapsed_ms": 0.1}]
        )
        assert math.isnan(rows[0]["p50_ms"])

    def test_malformed_entries_are_skipped(self):
        rows = timings_rows([{"kind": "schedule"}, *self.entries()])
        assert len(rows) == 2

    def test_table_renders_columns(self):
        table = format_timings_table(self.entries())
        header = table.splitlines()[0].split()
        assert header == ["scenario", "method", "kind", "n", "hits", "p50_ms", "p95_ms"]

    def test_empty_entries_render_placeholder(self):
        assert "no timing sidecars" in format_timings_table([])


class TestWriterMechanics:
    def test_filename_derivation(self):
        assert timings_filename("campaign.jsonl") == TIMINGS_FILENAME
        assert (
            timings_filename("campaign.shard-1-of-2.jsonl")
            == "campaign.shard-1-of-2.metrics.jsonl"
        )

    def test_disabled_writer_never_touches_disk(self, tmp_path):
        writer = TimingsWriter(tmp_path, "campaign.jsonl", enabled=False)
        writer.write({"elapsed_ms": 1.0})
        writer.close()
        assert not list(tmp_path.iterdir())

    def test_torn_sidecar_lines_are_skipped_on_read(self, tmp_path):
        sidecar = tmp_path / TIMINGS_FILENAME
        sidecar.write_text(
            '{"elapsed_ms": 1.0, "sc": "a", "m": "s", "kind": "schedule", "cache": "miss"}\n'
            '{"elapsed_ms": 2.0, "sc"',  # torn mid-write
            encoding="utf-8",
        )
        entries = read_timing_entries(tmp_path)
        assert len(entries) == 1
