"""Tests for the campaign's run-time section (execution-model grid)."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign import (
    CampaignReport,
    CampaignSpec,
    RuntimeSpec,
    build_campaign,
    load_campaign_records,
    run_campaign,
    runtime_cell_request,
    runtime_label,
)
from repro.campaign.runner import CampaignRunner
from repro.scenario import Scenario, WorkloadSpec
from repro.taskgen import GeneratorConfig


def tiny_scenario(name="tiny"):
    return Scenario(
        name=name,
        workload=WorkloadSpec(
            utilisation=0.4,
            generator=GeneratorConfig(hyperperiod_ms=360, min_period_ms=60, max_period_ms=120),
        ),
    )


@pytest.fixture(scope="module")
def runtime_spec():
    return build_campaign(
        name="rt",
        scenarios=(tiny_scenario(),),
        methods=("static", "gpiocp"),
        execution_models=("dedicated-controller", "cpu-instigated"),
    )


class TestRuntimeSpec:
    def test_models_are_coerced_and_validated(self):
        section = RuntimeSpec(execution_models=("cpu-instigated:jitter_window=2",))
        assert str(section.execution_models[0]) == "cpu-instigated:jitter_window=2"
        with pytest.raises(ValueError, match="unique"):
            RuntimeSpec(execution_models=("cpu-instigated", "cpu-instigated"))
        with pytest.raises(ValueError, match="at least one"):
            RuntimeSpec(execution_models=())

    def test_metrics_are_normalised_to_canonical_order(self):
        section = RuntimeSpec(metrics=("psi", "accuracy"))
        assert section.metrics == ("accuracy", "psi")
        with pytest.raises(ValueError, match="unknown runtime metrics"):
            RuntimeSpec(metrics=("latency",))

    @pytest.mark.parametrize("kwargs", [{"max_events": 0}, {"max_events": -1}])
    def test_bounds_are_validated(self, kwargs):
        with pytest.raises(ValueError):
            RuntimeSpec(**kwargs)

    @settings(max_examples=25, deadline=None)
    @given(
        models=st.lists(
            st.sampled_from(
                ["dedicated-controller", "cpu-instigated", "cpu-instigated-prioritized"]
            ),
            min_size=1,
            max_size=3,
            unique=True,
        ),
        metrics=st.lists(
            st.sampled_from(["accuracy", "psi", "upsilon", "faults_detected", "skipped_jobs"]),
            min_size=1,
            max_size=5,
            unique=True,
        ),
        max_events=st.one_of(st.none(), st.integers(min_value=1, max_value=10**6)),
    )
    def test_campaign_with_runtime_round_trips_losslessly(
        self, models, metrics, max_events
    ):
        spec = CampaignSpec(
            scenarios=(tiny_scenario(),),
            runtime=RuntimeSpec(
                execution_models=tuple(models),
                metrics=tuple(metrics),
                max_events=max_events,
            ),
        )
        recovered = CampaignSpec.from_json(spec.to_json())
        assert recovered == spec
        assert recovered.content_key() == spec.content_key()


class TestVersioning:
    def test_runtime_section_bumps_the_envelope_version(self):
        without = CampaignSpec(scenarios=(tiny_scenario(),))
        with_runtime = CampaignSpec(scenarios=(tiny_scenario(),), runtime=RuntimeSpec())
        assert without.to_dict()["version"] == 1
        assert with_runtime.to_dict()["version"] == 2

    def test_runtime_section_changes_the_content_key(self):
        without = CampaignSpec(scenarios=(tiny_scenario(),))
        with_runtime = CampaignSpec(scenarios=(tiny_scenario(),), runtime=RuntimeSpec())
        assert without.content_key() != with_runtime.content_key()

    def test_report_without_runtime_stays_version_1(self, tmp_path):
        spec = CampaignSpec(scenarios=(tiny_scenario(),))
        report = run_campaign(spec).report()
        payload = report.to_dict()
        assert payload["version"] == 1
        assert "runtime" not in payload["data"]


class TestGrid:
    def test_runtime_cells_multiply_the_schedule_grid(self, runtime_spec):
        assert runtime_spec.n_cells == 2
        assert runtime_spec.n_runtime_cells == 4
        cells = list(runtime_spec.runtime_cells())
        assert len(cells) == 4
        # Models innermost, schedule-cell order preserved.
        assert [c.execution_model for c in cells[:2]] == [
            "dedicated-controller",
            "cpu-instigated",
        ]

    def test_runtime_request_reuses_the_schedule_cache(self, runtime_spec):
        cell = next(iter(runtime_spec.runtime_cells()))
        sim_request = runtime_cell_request(runtime_spec, cell)
        from repro.campaign import cell_request

        schedule_request = cell_request(runtime_spec, cell.schedule_cell())
        assert (
            sim_request.schedule_request().content_key()
            == schedule_request.content_key()
        )

    def test_max_events_never_enters_the_schedule_question(self):
        # The simulation-side bound must not change which schedule is asked
        # for — otherwise runtime cells would stop sharing the campaign's
        # schedule-cache entries.
        bounded = build_campaign(
            name="rt",
            scenarios=(tiny_scenario(),),
            runtime=RuntimeSpec(
                execution_models=("dedicated-controller",), max_events=1000
            ),
        )
        cell = next(iter(bounded.runtime_cells()))
        sim_request = runtime_cell_request(bounded, cell)
        assert sim_request.max_events == 1000
        from repro.campaign import cell_request

        schedule_request = cell_request(bounded, cell.schedule_cell())
        assert (
            sim_request.schedule_request().content_key()
            == schedule_request.content_key()
        )


class TestRunnerIntegration:
    def test_run_evaluates_schedule_and_runtime_cells(self, runtime_spec):
        result = run_campaign(runtime_spec)
        assert result.complete
        assert len(result.records) == 2
        assert len(result.runtime_records) == 4
        assert result.evaluated == 6
        for values in result.runtime_records.values():
            assert set(values) == set(runtime_spec.runtime.metrics)
        # The dedicated controller is exact; CPU-instigated is not.
        for key, values in result.runtime_records.items():
            if key[2] == "dedicated-controller":
                assert values["accuracy"] == 1.0
            else:
                assert values["accuracy"] < 1.0

    def test_resume_recomputes_nothing(self, runtime_spec, tmp_path):
        first = run_campaign(runtime_spec, artifact_dir=tmp_path)
        assert first.evaluated == 6
        second = run_campaign(runtime_spec, artifact_dir=tmp_path)
        assert second.evaluated == 0
        assert second.resumed == 6
        assert second.records == first.records
        assert second.runtime_records == first.runtime_records

    def test_interrupt_mid_runtime_grid_resumes_cleanly(self, runtime_spec, tmp_path):
        partial = run_campaign(runtime_spec, artifact_dir=tmp_path, max_cells=4)
        assert partial.evaluated == 4  # 2 schedule + 2 runtime cells
        assert not partial.complete
        rest = run_campaign(runtime_spec, artifact_dir=tmp_path)
        assert rest.evaluated == 2
        assert rest.complete

    def test_journal_reads_back_both_record_kinds(self, runtime_spec, tmp_path):
        result = run_campaign(runtime_spec, artifact_dir=tmp_path)
        records, runtime_records = load_campaign_records(tmp_path, runtime_spec)
        assert records == result.records
        assert runtime_records == result.runtime_records

    def test_reports_are_byte_identical_at_1_and_4_workers(self, runtime_spec, tmp_path):
        serial = run_campaign(
            runtime_spec, artifact_dir=tmp_path / "serial", n_workers=1
        )
        pooled = run_campaign(
            runtime_spec, artifact_dir=tmp_path / "pooled", n_workers=4
        )
        assert serial.report().to_json() == pooled.report().to_json()
        journal = (
            tmp_path / "serial" / runtime_spec.content_key() / "campaign.jsonl"
        ).read_bytes()
        pooled_journal = (
            tmp_path / "pooled" / runtime_spec.content_key() / "campaign.jsonl"
        ).read_bytes()
        assert journal == pooled_journal

    def test_runner_shares_one_scheduling_service(self, runtime_spec):
        with CampaignRunner(runtime_spec) as runner:
            runner.run()
            # Two schedule cells -> two schedule computations; the four
            # runtime cells hit the schedule cache instead of recomputing.
            assert runner.service.computed == 2


class TestRuntimeReport:
    def test_leaderboard_ranks_method_model_pairs(self, runtime_spec):
        report = run_campaign(runtime_spec).report()
        assert report.has_runtime
        board = report.runtime_leaderboard("accuracy")
        assert len(board) == 4
        top_labels = {label for label, _ in board[:2]}
        assert top_labels == {
            runtime_label("static", "dedicated-controller"),
            runtime_label("gpiocp", "dedicated-controller"),
        }

    def test_report_round_trips_with_runtime_entries(self, runtime_spec):
        report = run_campaign(runtime_spec).report()
        payload = report.to_dict()
        assert payload["version"] == 2
        recovered = CampaignReport.from_dict(json.loads(json.dumps(payload)))
        assert recovered == report

    def test_emitters_cover_runtime_sections(self, runtime_spec):
        report = run_campaign(runtime_spec).report()
        md = report.to_markdown()
        text = report.to_text()
        assert "runtime:accuracy" in md
        assert "method @ execution model" in md
        assert "runtime:accuracy" in text
        assert "4/4 runtime cells" in md
