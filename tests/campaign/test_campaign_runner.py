"""CampaignRunner: resume-after-interrupt, worker invariance, determinism."""

import pytest

from repro.campaign import (
    CAMPAIGN_JOURNAL_FILENAME,
    CampaignRunner,
    CampaignSpec,
    cell_request,
    load_campaign_records,
    run_campaign,
)
from repro.service import SchedulingService, execute_request


@pytest.fixture()
def small_spec() -> CampaignSpec:
    """A 2-scenario x 2-method x 2-system grid (8 fast cells)."""
    return CampaignSpec(
        name="small",
        scenarios=("paper-default", "short-hyperperiod"),
        methods=("static", "gpiocp"),
        n_systems=2,
        utilisations=(0.4,),
    )


class TestRun:
    def test_full_run_covers_the_grid(self, small_spec, tmp_path):
        result = run_campaign(small_spec, artifact_dir=tmp_path)
        assert result.complete
        assert result.evaluated == small_spec.n_cells == 8
        assert result.resumed == 0
        assert set(result.records) == {cell.key() for cell in small_spec.cells()}
        for values in result.records.values():
            assert set(values) == set(small_spec.metrics)

    def test_cells_match_direct_service_execution(self, small_spec, tmp_path):
        result = run_campaign(small_spec, artifact_dir=tmp_path)
        cell = next(small_spec.cells())
        response = execute_request(cell_request(small_spec, cell))
        values = result.records[cell.key()]
        assert values["schedulable"] == response.schedulable
        assert values["psi"] == response.psi
        assert values["upsilon"] == response.upsilon

    def test_in_memory_run_without_artifact_dir(self, small_spec):
        result = run_campaign(small_spec)
        assert result.complete and result.evaluated == 8


class TestResume:
    def test_interrupted_campaign_resumes_with_zero_recompute(
        self, small_spec, tmp_path
    ):
        # Reference: one uninterrupted run in a separate directory.
        reference = run_campaign(small_spec, artifact_dir=tmp_path / "ref")
        reference_json = reference.report().to_json()

        # Interrupt mid-grid after 3 of 8 cells.
        partial = run_campaign(small_spec, artifact_dir=tmp_path / "run", max_cells=3)
        assert not partial.complete
        assert partial.evaluated == 3

        # Resume: exactly the 5 missing cells are computed, nothing twice.
        with CampaignRunner(small_spec, artifact_dir=tmp_path / "run") as runner:
            assert runner.completed_cells == 3
            resumed = runner.run()
            assert resumed.evaluated == 5
            assert resumed.resumed == 3
            assert runner.service.computed == 5
        assert resumed.complete

        # And a third run recomputes zero cells.
        with CampaignRunner(small_spec, artifact_dir=tmp_path / "run") as runner:
            final = runner.run()
            assert final.evaluated == 0
            assert final.resumed == 8
            assert runner.service.computed == 0

        # The report is byte-identical to the uninterrupted run's.
        assert final.report().to_json() == reference_json
        assert resumed.report().to_json() == reference_json

    def test_torn_trailing_journal_line_recomputes_only_that_cell(
        self, small_spec, tmp_path
    ):
        reference = run_campaign(small_spec, artifact_dir=tmp_path / "ref")
        run_campaign(small_spec, artifact_dir=tmp_path / "run")
        journal = tmp_path / "run" / small_spec.content_key() / CAMPAIGN_JOURNAL_FILENAME
        lines = journal.read_text().splitlines()
        # Simulate a write cut short mid-line: partial trailing line, no newline.
        journal.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])

        with CampaignRunner(small_spec, artifact_dir=tmp_path / "run") as runner:
            assert runner.completed_cells == 7
            result = runner.run()
            assert result.evaluated == 1
        assert result.complete

        # The repair truncated the torn fragment before appending, so the
        # journal is healthy again: a further resume recomputes nothing and
        # the journal bytes match an uninterrupted run's exactly.
        with CampaignRunner(small_spec, artifact_dir=tmp_path / "run") as runner:
            final = runner.run()
            assert final.evaluated == 0
            assert final.resumed == 8
        assert journal.read_bytes() == (
            tmp_path / "ref" / small_spec.content_key() / CAMPAIGN_JOURNAL_FILENAME
        ).read_bytes()
        assert final.report().to_json() == reference.report().to_json()

    def test_different_spec_gets_a_different_directory(self, small_spec, tmp_path):
        run_campaign(small_spec, artifact_dir=tmp_path)
        other = CampaignSpec(
            name=small_spec.name,
            scenarios=small_spec.scenarios,
            methods=small_spec.methods,
            n_systems=small_spec.n_systems,
            utilisations=(0.3,),
        )
        with CampaignRunner(other, artifact_dir=tmp_path) as runner:
            assert runner.completed_cells == 0  # no cross-campaign bleed


class TestWorkerInvariance:
    def test_reports_are_byte_identical_at_1_and_4_workers(self, small_spec, tmp_path):
        serial = run_campaign(small_spec, artifact_dir=tmp_path / "w1", n_workers=1)
        parallel = run_campaign(small_spec, artifact_dir=tmp_path / "w4", n_workers=4)
        assert serial.records == parallel.records
        assert serial.report().to_json() == parallel.report().to_json()
        # The journals themselves are byte-identical too (canonical order).
        journal = lambda d: (  # noqa: E731
            d / small_spec.content_key() / CAMPAIGN_JOURNAL_FILENAME
        ).read_bytes()
        assert journal(tmp_path / "w1") == journal(tmp_path / "w4")


class TestReplications:
    def test_stochastic_replications_decorrelate_deterministically(self, tmp_path):
        spec = CampaignSpec(
            name="ga-reps",
            scenarios=("paper-default",),
            methods=("ga:generations=3,population_size=8",),
            n_systems=1,
            utilisations=(0.4,),
            replications=2,
            metrics=("psi", "upsilon"),
        )
        cells = list(spec.cells())
        requests = [cell_request(spec, cell) for cell in cells]
        # Replication 0 is the plain request (shares cache with ad-hoc calls);
        # replication 1 pins a derived seed, giving a different content key.
        assert requests[0].spec.options_dict().get("seed") is None
        assert requests[1].spec.options_dict().get("seed") is not None
        assert requests[0].content_key() != requests[1].content_key()

        # And the whole campaign stays deterministic across runs.
        first = run_campaign(spec, artifact_dir=tmp_path / "a")
        second = run_campaign(spec, artifact_dir=tmp_path / "b")
        assert first.records == second.records

    def test_deterministic_methods_dedup_replications(self, tmp_path):
        spec = CampaignSpec(
            name="det-reps",
            scenarios=("paper-default",),
            methods=("static",),
            n_systems=1,
            utilisations=(0.4,),
            replications=3,
            metrics=("psi",),
        )
        with CampaignRunner(spec, artifact_dir=tmp_path) as runner:
            result = runner.run()
            # 3 grid cells, but only 1 distinct computation (in-batch dedup).
            assert result.evaluated == 3
            assert runner.service.computed == 1
        values = list(result.records.values())
        assert values[0] == values[1] == values[2]


class TestSharedService:
    def test_external_service_is_reused_not_closed(self, small_spec):
        with SchedulingService(n_workers=1) as service:
            first = run_campaign(small_spec, service=service)
            assert service.computed == 8
            # Second campaign over the same service: all cache hits.
            second = run_campaign(small_spec, service=service)
            assert service.computed == 8
            assert first.records == second.records

    def test_load_campaign_records_reads_back_the_journal(self, small_spec, tmp_path):
        result = run_campaign(small_spec, artifact_dir=tmp_path)
        records, runtime_records = load_campaign_records(tmp_path, small_spec)
        assert records == result.records
        assert runtime_records == {}  # no runtime section on this campaign
