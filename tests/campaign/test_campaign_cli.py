"""End-to-end tests of ``python -m repro.campaign`` and the CLI cross-links."""

import json

import pytest

from repro.campaign import CampaignReport, CampaignSpec
from repro.campaign.__main__ import build_parser, main
from repro.experiments.__main__ import main as experiments_main
from repro.service.__main__ import main as service_main

RUN_FLAGS = [
    "--scenarios",
    "paper-default",
    "short-hyperperiod",
    "--methods",
    "static",
    "gpiocp",
    "--systems",
    "1",
    "--utilisations",
    "0.4",
]


def flag_spec() -> CampaignSpec:
    return CampaignSpec(
        name="flags",
        scenarios=("paper-default", "short-hyperperiod"),
        methods=("static", "gpiocp"),
        n_systems=1,
        utilisations=(0.4,),
    )


class TestRun:
    def test_flag_built_run_then_resume_then_report(self, tmp_path, capsys):
        artifact_dir = str(tmp_path / "campaigns")
        args = ["run", "--name", "flags", *RUN_FLAGS, "--artifact-dir", artifact_dir]

        assert main([*args, "--report", "none"]) == 0
        err = capsys.readouterr().err
        assert "4 evaluated, 0 resumed, 4/4 cells done" in err

        # Resume recomputes zero cells.
        assert main([*args, "--resume", "--report", "none"]) == 0
        err = capsys.readouterr().err
        assert "0 evaluated, 4 resumed, 4/4 cells done" in err

        # Report discovers the single campaign in the directory.
        out_path = tmp_path / "report.json"
        assert (
            main(
                [
                    "report",
                    "--artifact-dir",
                    artifact_dir,
                    "--format",
                    "json",
                    "-o",
                    str(out_path),
                ]
            )
            == 0
        )
        report = CampaignReport.from_json(out_path.read_text())
        assert report.complete
        assert report.campaign_key == flag_spec().content_key()

    def test_existing_progress_without_resume_is_an_error(self, tmp_path):
        artifact_dir = str(tmp_path / "campaigns")
        args = ["run", *RUN_FLAGS, "--artifact-dir", artifact_dir, "--report", "none"]
        assert main(args) == 0
        with pytest.raises(SystemExit):
            main(args)

    def test_spec_file_and_builder_flags_are_mutually_exclusive(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(flag_spec().to_json())
        with pytest.raises(SystemExit):
            main(["run", str(path), "--scenarios", "paper-default"])
        with pytest.raises(SystemExit):
            main(["run", str(path), "--name", "renamed"])  # --name is a builder flag too

    def test_spec_file_run_markdown_report(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(flag_spec().to_json())
        assert main(["run", str(path), "--report", "md"]) == 0
        out = capsys.readouterr().out
        assert "# Campaign report — flags" in out
        assert "| rank | method | overall |" in out

    def test_max_cells_interrupts_and_reports_partial(self, tmp_path, capsys):
        artifact_dir = str(tmp_path / "campaigns")
        args = ["run", *RUN_FLAGS, "--artifact-dir", artifact_dir]
        assert main([*args, "--max-cells", "3", "--report", "none"]) == 0
        err = capsys.readouterr().err
        assert "3 evaluated, 0 resumed, 3/4 cells done" in err
        assert "--resume" in err

        # report warns on partial coverage
        assert main(["report", "--artifact-dir", artifact_dir]) == 0
        captured = capsys.readouterr()
        assert "3/4" in captured.err

    def test_report_on_unrun_spec_leaves_no_phantom_directory(self, tmp_path, capsys):
        artifact_dir = tmp_path / "campaigns"
        assert main(["run", *RUN_FLAGS, "--artifact-dir", str(artifact_dir), "--report", "none"]) == 0
        capsys.readouterr()

        # Reporting on a spec that was never executed must not create its
        # artifact directory (which would break auto-discovery forever).
        other = tmp_path / "other.json"
        other.write_text(
            CampaignSpec(name="never-ran", scenarios=("wide-noc",), methods=("static",)).to_json()
        )
        assert main(["report", str(other), "--artifact-dir", str(artifact_dir)]) == 0
        captured = capsys.readouterr()
        assert "0/1" in captured.err
        assert len(list(artifact_dir.iterdir())) == 1  # only the real campaign

        # Auto-discovery still finds exactly one campaign.
        assert main(["report", "--artifact-dir", str(artifact_dir)]) == 0

    def test_invalid_inputs(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", "--workers", "0"])
        with pytest.raises(SystemExit):
            main(["run", "--resume"])  # --resume without --artifact-dir
        with pytest.raises(SystemExit):
            main(["run", "--scenarios", "no-such-scenario"])
        with pytest.raises(SystemExit):
            main(["report", "--artifact-dir", str(tmp_path / "empty")])
        with pytest.raises(SystemExit):
            main([])  # a subcommand is required


class TestListings:
    def test_list_prints_scenarios_with_content_keys_and_methods(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "paper-default" in out
        # Each preset line carries its 16-hex content key.
        from repro.scenario import create_scenario

        assert create_scenario("paper-default").content_key() in out
        assert "static" in out and "gpiocp" in out

    def test_parser_metadata(self):
        assert "repro.campaign" in build_parser().prog


class TestCrossLinks:
    def test_experiments_cli_campaign_flag(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(flag_spec().to_json())
        assert (
            experiments_main(
                ["--campaign", str(path), "--artifact-dir", str(tmp_path / "art")]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "# Campaign report — flags" in captured.out
        assert "4 evaluated" in captured.err

        # Re-running resumes from the artifact dir (zero recompute).
        assert (
            experiments_main(
                ["--campaign", str(path), "--artifact-dir", str(tmp_path / "art")]
            )
            == 0
        )
        assert "0 evaluated, 4 resumed" in capsys.readouterr().err

    def test_experiments_cli_campaign_conflicts(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(flag_spec().to_json())
        with pytest.raises(SystemExit):
            experiments_main(["fig5", "--campaign", str(path)])
        with pytest.raises(SystemExit):
            experiments_main(["--campaign", str(path), "--scenario", "paper-default"])

    def test_service_cli_campaign_batch(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(flag_spec().to_json())
        out_path = tmp_path / "responses.jsonl"
        assert service_main(["--campaign", str(path), "-o", str(out_path)]) == 0
        lines = out_path.read_text().splitlines()
        assert len(lines) == flag_spec().n_cells == 4
        for line in lines:
            payload = json.loads(line)
            assert payload["kind"] == "repro/schedule-response"

    def test_service_cli_campaign_excludes_other_sources(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(flag_spec().to_json())
        with pytest.raises(SystemExit):
            service_main(
                ["--campaign", str(path), "--scenario", "paper-default"]
            )
