"""Opt-in ``cProfile`` wrapper shared by the CLI entry points.

Both ``python -m repro.experiments`` and ``python -m repro.service`` accept a
``--profile [FILE]`` flag; when given, the run executes under ``cProfile``,
the raw stats are dumped to ``FILE`` (loadable with ``pstats`` or snakeviz)
and a top-N cumulative summary goes to stderr — so performance work starts
from data, not guesses.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
from contextlib import contextmanager
from typing import IO, Iterator, Optional

#: Default dump path of ``--profile`` when no file name is given.
DEFAULT_PROFILE_PATH = "repro-profile.pstats"


@contextmanager
def maybe_profile(
    output: Optional[str], *, top: int = 20, stream: Optional[IO[str]] = None
) -> Iterator[Optional[cProfile.Profile]]:
    """Profile the with-block when ``output`` names a dump file; no-op otherwise.

    On exit the profiler state is written to ``output`` as a ``.pstats`` dump
    and the ``top`` functions by cumulative time are printed to ``stream``
    (default stderr).  The summary is emitted even if the block raises, so an
    interrupted sweep still yields usable data.
    """
    if output is None:
        yield None
        return
    stream = stream if stream is not None else sys.stderr
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(output)
        print(
            f"profile written to {output}; top {top} functions by cumulative time:",
            file=stream,
        )
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative")
        stats.print_stats(top)
