"""Core task model for timed I/O scheduling.

This sub-package implements the system and task model of Section II of the
paper: periodic, non-preemptive timed I/O tasks with ideal start times and
quality curves, the jobs they release over a hyper-period, per-device
partitions, explicit offline schedules, and the two I/O-performance metrics
(Psi and Upsilon) used throughout the evaluation.
"""

from repro.core.memo import (
    LRUMemo,
    drain_memo_metrics,
    get_memo,
    memo_stats,
    reset_memos,
)
from repro.core.hyperperiod import hyperperiod, jobs_in_hyperperiod, lcm, lcm_many
from repro.core.metrics import (
    ScheduleMetrics,
    aggregate_psi,
    aggregate_upsilon,
    exact_accurate_jobs,
    mean_absolute_lateness,
    psi,
    schedule_metrics,
    upsilon,
)
from repro.core.partition import (
    partition_by_device,
    partition_jobs_by_device,
    partition_utilisations,
)
from repro.core.quality import LinearQualityCurve, QualityCurve, StepQualityCurve
from repro.core.schedule import (
    Schedule,
    ScheduleEntry,
    ScheduleValidationError,
    SystemSchedule,
    validate_schedule,
)
from repro.core.task import MS, US, IOJob, IOTask, TaskSet, make_task_ms

__all__ = [
    "LRUMemo",
    "get_memo",
    "memo_stats",
    "reset_memos",
    "drain_memo_metrics",
    "IOTask",
    "IOJob",
    "TaskSet",
    "make_task_ms",
    "MS",
    "US",
    "QualityCurve",
    "LinearQualityCurve",
    "StepQualityCurve",
    "Schedule",
    "ScheduleEntry",
    "SystemSchedule",
    "ScheduleValidationError",
    "validate_schedule",
    "hyperperiod",
    "jobs_in_hyperperiod",
    "lcm",
    "lcm_many",
    "partition_by_device",
    "partition_jobs_by_device",
    "partition_utilisations",
    "psi",
    "upsilon",
    "aggregate_psi",
    "aggregate_upsilon",
    "exact_accurate_jobs",
    "mean_absolute_lateness",
    "schedule_metrics",
    "ScheduleMetrics",
]
