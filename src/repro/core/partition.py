"""Per-device partitioning of timed I/O tasks.

The paper assumes a global I/O controller with a *fully-partitioned* I/O
scheduling model: each controller processor is associated with exactly one
I/O device, and pre-loaded I/O tasks are allocated to partitions based on the
device they access (Section III).  Partitioning removes contention between
I/O requests targeting different devices, so every partition can be scheduled
independently.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.core.task import IOJob, IOTask, TaskSet


def partition_by_device(tasks: Iterable[IOTask]) -> Dict[str, TaskSet]:
    """Group tasks into per-device :class:`TaskSet` partitions."""
    groups: Dict[str, List[IOTask]] = {}
    for task in tasks:
        groups.setdefault(task.device, []).append(task)
    return {device: TaskSet(members) for device, members in sorted(groups.items())}


def partition_jobs_by_device(jobs: Iterable[IOJob]) -> Dict[str, List[IOJob]]:
    """Group jobs into per-device lists, each sorted by ideal start time."""
    groups: Dict[str, List[IOJob]] = {}
    for job in jobs:
        groups.setdefault(job.device, []).append(job)
    return {device: sorted(members) for device, members in sorted(groups.items())}


def partition_utilisations(tasks: Iterable[IOTask]) -> Dict[str, float]:
    """Per-device utilisation of the partitioned task set."""
    partitions = partition_by_device(tasks)
    return {device: ts.utilisation for device, ts in partitions.items()}
