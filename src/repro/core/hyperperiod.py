"""Hyper-period arithmetic.

The offline schedules produced by the paper's methods cover exactly one
hyper-period of the pre-loaded I/O task set (Section II).  All time values
are integers (microseconds), so the hyper-period is the least common multiple
of the task periods.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def lcm(a: int, b: int) -> int:
    """Least common multiple of two positive integers."""
    if a <= 0 or b <= 0:
        raise ValueError("lcm is only defined for positive integers")
    return a // math.gcd(a, b) * b


def lcm_many(values: Iterable[int]) -> int:
    """Least common multiple of an iterable of positive integers."""
    result = 1
    seen = False
    for value in values:
        result = lcm(result, int(value))
        seen = True
    if not seen:
        raise ValueError("lcm_many requires at least one value")
    return result


def hyperperiod(periods: Sequence[int]) -> int:
    """Hyper-period (LCM of all periods) of a set of task periods."""
    return lcm_many(periods)


def jobs_in_hyperperiod(period: int, hp: int) -> int:
    """Number of jobs a task with the given period releases in one hyper-period."""
    if hp % period != 0:
        raise ValueError(
            f"hyper-period {hp} is not an integer multiple of period {period}"
        )
    return hp // period
