"""Quality (value) curves for timed I/O jobs.

Section II of the paper defines a timing-accuracy model in which each I/O job
has an ideal start time.  Executing exactly at the ideal start time yields the
maximum quality ``V_max``; executing within the timing boundary
``[ideal - theta, ideal + theta]`` yields a quality that decays with the
distance from the ideal start time; executing outside the boundary (but before
the deadline) yields the minimum quality ``V_min``.

The paper assumes a common *linear* decay curve (Figure 1) and notes that the
exact curve is application-dependent.  :class:`LinearQualityCurve` implements
the paper's curve; :class:`StepQualityCurve` is provided as an alternative
(all-or-nothing accuracy) used in some ablation studies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass


class QualityCurve(ABC):
    """Maps the distance between actual and ideal start time to a quality value."""

    v_max: float
    v_min: float

    @abstractmethod
    def value(self, start_time: int, ideal_start: int, theta: int) -> float:
        """Quality obtained when a job starts at ``start_time``.

        Parameters
        ----------
        start_time:
            Actual start time of the job (microseconds, absolute).
        ideal_start:
            Ideal start time of the job (microseconds, absolute).
        theta:
            Half-width of the timing boundary (microseconds).
        """

    def normalised(self, start_time: int, ideal_start: int, theta: int) -> float:
        """Quality normalised by the maximum achievable quality ``v_max``."""
        if self.v_max == 0:
            return 0.0
        return self.value(start_time, ideal_start, theta) / self.v_max


@dataclass(frozen=True)
class LinearQualityCurve(QualityCurve):
    """The paper's linear quality curve (Figure 1).

    Quality is ``v_max`` at the ideal start time and decays linearly to
    ``v_min`` at the edges of the timing boundary; outside the boundary the
    quality is ``v_min`` (the job is still schedulable, just not beneficial
    beyond the minimum).
    """

    v_max: float
    v_min: float = 1.0

    def __post_init__(self) -> None:
        if self.v_max < self.v_min:
            raise ValueError(
                f"v_max ({self.v_max}) must be >= v_min ({self.v_min})"
            )

    def value(self, start_time: int, ideal_start: int, theta: int) -> float:
        distance = abs(int(start_time) - int(ideal_start))
        if distance == 0:
            return self.v_max
        if theta <= 0 or distance >= theta:
            return self.v_min
        fraction = 1.0 - distance / theta
        return self.v_min + (self.v_max - self.v_min) * fraction


@dataclass(frozen=True)
class StepQualityCurve(QualityCurve):
    """All-or-nothing quality: ``v_max`` inside the boundary, ``v_min`` outside.

    Not used by the paper's headline results but useful for ablations on the
    sensitivity of the schedulers to the curve shape.
    """

    v_max: float
    v_min: float = 1.0

    def __post_init__(self) -> None:
        if self.v_max < self.v_min:
            raise ValueError(
                f"v_max ({self.v_max}) must be >= v_min ({self.v_min})"
            )

    def value(self, start_time: int, ideal_start: int, theta: int) -> float:
        distance = abs(int(start_time) - int(ideal_start))
        if distance <= theta:
            return self.v_max
        return self.v_min
