"""Explicit offline schedules for timed I/O jobs.

A :class:`Schedule` maps every job of a (per-device) partition to an actual
start time ``kappa_i^j`` over one hyper-period.  The paper's schedulers (the
heuristic of Algorithm 1 and the GA search) produce such schedules offline;
the I/O-controller hardware model (``repro.hardware``) later executes them at
run time.

The module also provides schedule validation for the two execution-model
constraints of Section III-B:

* **Constraint 1** — every job starts within its release window and finishes
  before its deadline: ``T_i*j <= kappa_i^j <= T_i*j + D_i - C_i``.
* **Constraint 2** — jobs on the same device never overlap (non-preemptive,
  single execution unit per device).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.task import IOJob


class ScheduleValidationError(Exception):
    """Raised when a schedule violates the execution-model constraints."""


@dataclass(frozen=True)
class ScheduleEntry:
    """One scheduled job: the job plus its assigned start time ``kappa``."""

    job: IOJob
    start: int

    @property
    def finish(self) -> int:
        return self.start + self.job.wcet

    @property
    def is_exact(self) -> bool:
        """Whether the job starts exactly at its ideal start time."""
        return self.start == self.job.ideal_start

    @property
    def lateness(self) -> int:
        """Signed distance from the ideal start time (positive = late)."""
        return self.start - self.job.ideal_start

    @property
    def quality(self) -> float:
        cached = self.__dict__.get("_quality")
        if cached is None:
            cached = self.job.quality(self.start)
            object.__setattr__(self, "_quality", cached)
        return cached


class Schedule:
    """An explicit assignment of start times to jobs on a single I/O device."""

    def __init__(self, entries: Iterable[ScheduleEntry] = (), device: Optional[str] = None):
        self._entries: Dict[Tuple[str, int], ScheduleEntry] = {}
        self._sorted_cache: Optional[List[ScheduleEntry]] = None
        self._idle_cache: Optional[Tuple[int, List[Tuple[int, int]]]] = None
        self.device = device
        for entry in entries:
            self.add(entry)

    # -- construction -----------------------------------------------------

    def add(self, entry: ScheduleEntry) -> None:
        """Add (or replace) the entry for a job."""
        if self.device is None:
            self.device = entry.job.device
        elif entry.job.device != self.device:
            raise ScheduleValidationError(
                f"job {entry.job.name} targets device {entry.job.device!r} but the "
                f"schedule is for device {self.device!r}"
            )
        if self._sorted_cache is not None:
            if entry.job.key in self._entries:
                # Replacing an entry moves it; cheaper to re-sort lazily.
                self._sorted_cache = None
            else:
                insort(self._sorted_cache, entry, key=lambda e: (e.start, e.job.key))
        self._entries[entry.job.key] = entry
        self._idle_cache = None

    def set_start(self, job: IOJob, start: int) -> None:
        """Assign ``start`` as the start time of ``job``."""
        self.add(ScheduleEntry(job=job, start=int(start)))

    @classmethod
    def from_mapping(cls, mapping: Dict[IOJob, int], device: Optional[str] = None) -> "Schedule":
        return cls(
            (ScheduleEntry(job=job, start=int(start)) for job, start in mapping.items()),
            device=device,
        )

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ScheduleEntry]:
        return iter(self.sorted_entries())

    def __contains__(self, job: IOJob) -> bool:
        return job.key in self._entries

    @property
    def entries(self) -> List[ScheduleEntry]:
        return list(self._entries.values())

    def sorted_entries(self) -> List[ScheduleEntry]:
        """Entries ordered by start time (ties broken by job identity)."""
        if self._sorted_cache is None:
            self._sorted_cache = sorted(
                self._entries.values(), key=lambda e: (e.start, e.job.key)
            )
        return list(self._sorted_cache)

    def start_of(self, job: IOJob) -> int:
        """Start time ``kappa`` assigned to ``job``."""
        try:
            return self._entries[job.key].start
        except KeyError:
            raise KeyError(f"job {job.name} is not in the schedule") from None

    def entry_of(self, job: IOJob) -> ScheduleEntry:
        try:
            return self._entries[job.key]
        except KeyError:
            raise KeyError(f"job {job.name} is not in the schedule") from None

    def jobs(self) -> List[IOJob]:
        return [entry.job for entry in self.sorted_entries()]

    @property
    def makespan(self) -> int:
        """Latest finish time across all scheduled jobs (0 for an empty schedule)."""
        if not self._entries:
            return 0
        return max(entry.finish for entry in self._entries.values())

    # -- analysis ----------------------------------------------------------

    def busy_intervals(self) -> List[Tuple[int, int]]:
        """Sorted ``(start, finish)`` intervals during which the device is busy."""
        return [(e.start, e.finish) for e in self.sorted_entries()]

    def idle_intervals(self, horizon: int) -> List[Tuple[int, int]]:
        """Sorted idle (free-slot) intervals in ``[0, horizon)`` around the busy ones."""
        if self._idle_cache is not None and self._idle_cache[0] == horizon:
            return list(self._idle_cache[1])
        idle: List[Tuple[int, int]] = []
        cursor = 0
        for start, finish in self.busy_intervals():
            if start > cursor:
                idle.append((cursor, start))
            cursor = max(cursor, finish)
        if cursor < horizon:
            idle.append((cursor, horizon))
        self._idle_cache = (horizon, idle)
        return list(idle)

    def copy(self) -> "Schedule":
        return Schedule(self._entries.values(), device=self.device)


def validate_schedule(
    schedule: Schedule,
    jobs: Optional[Sequence[IOJob]] = None,
    *,
    raise_on_error: bool = True,
) -> List[str]:
    """Check a schedule against the execution-model constraints.

    Parameters
    ----------
    schedule:
        The schedule to validate.
    jobs:
        If given, the complete set of jobs that *must* appear in the schedule
        (completeness check).  If omitted, only the scheduled jobs are checked.
    raise_on_error:
        If true (default), raise :class:`ScheduleValidationError` describing the
        first group of violations; otherwise return the list of violation
        messages (empty if the schedule is valid).
    """
    violations: List[str] = []

    if jobs is not None:
        scheduled_keys = {entry.job.key for entry in schedule.entries}
        for job in jobs:
            if job.key not in scheduled_keys:
                violations.append(f"job {job.name} is missing from the schedule")

    for entry in schedule.entries:
        job = entry.job
        if entry.start < job.release:
            violations.append(
                f"job {job.name} starts at {entry.start} before its release {job.release}"
            )
        if entry.finish > job.deadline:
            violations.append(
                f"job {job.name} finishes at {entry.finish} after its deadline {job.deadline}"
            )

    ordered = schedule.sorted_entries()
    for previous, current in zip(ordered, ordered[1:]):
        if current.start < previous.finish:
            violations.append(
                f"jobs {previous.job.name} and {current.job.name} overlap: "
                f"[{previous.start}, {previous.finish}) and [{current.start}, {current.finish})"
            )

    if violations and raise_on_error:
        raise ScheduleValidationError("; ".join(violations))
    return violations


class SystemSchedule:
    """A collection of per-device schedules for a fully-partitioned system."""

    def __init__(self, schedules: Optional[Dict[str, Schedule]] = None):
        self._schedules: Dict[str, Schedule] = dict(schedules or {})

    def __getitem__(self, device: str) -> Schedule:
        return self._schedules[device]

    def __setitem__(self, device: str, schedule: Schedule) -> None:
        self._schedules[device] = schedule

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._schedules))

    def __len__(self) -> int:
        return len(self._schedules)

    @property
    def devices(self) -> List[str]:
        return sorted(self._schedules)

    def all_entries(self) -> List[ScheduleEntry]:
        entries: List[ScheduleEntry] = []
        for device in self.devices:
            entries.extend(self._schedules[device].sorted_entries())
        return entries
