"""Timed I/O tasks, jobs and task sets (Section II of the paper).

Each timed I/O task is a 6-tuple ``{C_i, T_i, D_i, P_i, delta_i, theta_i}``:

* ``C_i`` — worst-case computation time of the I/O operation on its device,
* ``T_i`` — period,
* ``D_i`` — deadline (implicit, ``D_i = T_i`` in the paper),
* ``P_i`` — deadline-monotonic priority (a *larger* number means a *higher*
  priority; the paper writes "``D_1 > D_2`` so that ``P_1 < P_2``"),
* ``delta_i`` — ideal start time of the I/O operation relative to each release,
* ``theta_i`` — half-width of the timing boundary around the ideal start.

During execution each task releases a set of jobs over one hyper-period.  Job
``j`` of task ``i`` has ideal start time ``T_i * j + delta_i`` and must be
executed non-preemptively inside its release window
``[T_i * j, T_i * j + D_i]``.

All times are integer microseconds.  The :data:`MS` constant converts from the
paper's milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.hyperperiod import hyperperiod as _hyperperiod
from repro.core.quality import LinearQualityCurve, QualityCurve

#: Microseconds per millisecond — the internal time unit is the microsecond.
MS: int = 1000
#: One microsecond (the base unit), for symmetry with :data:`MS`.
US: int = 1


@dataclass(frozen=True)
class IOTask:
    """A periodic timed I/O task (``tau_i`` in the paper).

    Parameters
    ----------
    name:
        Unique identifier of the task within a :class:`TaskSet`.
    wcet:
        Worst-case computation time ``C_i`` in microseconds (> 0).
    period:
        Period ``T_i`` in microseconds (> 0).
    deadline:
        Relative deadline ``D_i`` in microseconds.  Defaults to the period
        (implicit deadlines, as in the paper).
    priority:
        Deadline-monotonic priority ``P_i``.  Larger values denote higher
        priority.  ``TaskSet.assign_dmpo_priorities`` assigns these
        automatically.
    ideal_offset:
        Relative ideal start time ``delta_i`` in microseconds,
        ``0 <= delta_i <= D_i``.
    theta:
        Timing-boundary half width ``theta_i`` in microseconds.  The paper
        enforces ``theta_i >= C_i``.
    device:
        Identifier of the I/O device this task operates on.  The scheduling
        model is fully partitioned per device.
    v_max / v_min:
        Maximum / minimum quality of the task's quality curve.  The paper's
        experiments use ``v_max = P_i + 1`` and a global ``v_min = 1``.
    offset:
        Release offset of the first job (microseconds).  The paper's main
        experiments use synchronous release (offset 0) but Section III-C notes
        the methods also apply with offsets.
    """

    name: str
    wcet: int
    period: int
    deadline: Optional[int] = None
    priority: int = 0
    ideal_offset: int = 0
    theta: int = 0
    device: str = "dev0"
    v_max: float = 2.0
    v_min: float = 1.0
    offset: int = 0

    def __post_init__(self) -> None:
        deadline = self.period if self.deadline is None else self.deadline
        object.__setattr__(self, "deadline", int(deadline))
        object.__setattr__(self, "wcet", int(self.wcet))
        object.__setattr__(self, "period", int(self.period))
        object.__setattr__(self, "ideal_offset", int(self.ideal_offset))
        object.__setattr__(self, "theta", int(self.theta))
        object.__setattr__(self, "offset", int(self.offset))
        if self.wcet <= 0:
            raise ValueError(f"task {self.name}: wcet must be positive, got {self.wcet}")
        if self.period <= 0:
            raise ValueError(f"task {self.name}: period must be positive, got {self.period}")
        if self.deadline <= 0 or self.deadline > self.period:
            raise ValueError(
                f"task {self.name}: deadline must be in (0, period], got {self.deadline}"
            )
        if self.wcet > self.deadline:
            raise ValueError(
                f"task {self.name}: wcet {self.wcet} exceeds deadline {self.deadline}"
            )
        if not 0 <= self.ideal_offset <= self.deadline:
            raise ValueError(
                f"task {self.name}: ideal_offset must be in [0, deadline], "
                f"got {self.ideal_offset}"
            )
        if self.theta < 0:
            raise ValueError(f"task {self.name}: theta must be non-negative")
        if self.offset < 0:
            raise ValueError(f"task {self.name}: offset must be non-negative")
        if self.v_max < self.v_min:
            raise ValueError(
                f"task {self.name}: v_max ({self.v_max}) must be >= v_min ({self.v_min})"
            )

    def __hash__(self) -> int:
        """Same value as the dataclass-generated hash, computed once.

        Tasks are hashed heavily as parts of memo keys (inside job tuples);
        the field tuple never changes, so neither does the hash.
        """
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(
                (
                    self.name,
                    self.wcet,
                    self.period,
                    self.deadline,
                    self.priority,
                    self.ideal_offset,
                    self.theta,
                    self.device,
                    self.v_max,
                    self.v_min,
                    self.offset,
                )
            )
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self) -> Dict[str, object]:
        """Slim pickles: drop memoised derivatives (hash, quality curve)."""
        state = dict(self.__dict__)
        state.pop("_hash", None)
        state.pop("_quality_curve", None)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)

    @property
    def utilisation(self) -> float:
        """Processor (device) utilisation ``C_i / T_i`` of the task."""
        return self.wcet / self.period

    @property
    def quality_curve(self) -> QualityCurve:
        """The task's quality curve (linear, per the paper's evaluation).

        A pure value of ``(v_max, v_min)``, so it is built once per task and
        cached — metric aggregation queries it for every job.
        """
        curve = self.__dict__.get("_quality_curve")
        if curve is None:
            curve = LinearQualityCurve(v_max=self.v_max, v_min=self.v_min)
            object.__setattr__(self, "_quality_curve", curve)
        return curve

    def with_priority(self, priority: int) -> "IOTask":
        """Return a copy of the task with a different priority."""
        return replace(self, priority=priority)

    def job(self, index: int) -> "IOJob":
        """Construct job ``lambda_i^index`` of this task."""
        if index < 0:
            raise ValueError("job index must be non-negative")
        release = self.offset + self.period * index
        return IOJob(task=self, index=index, release=release)

    def jobs(self, horizon: int) -> List["IOJob"]:
        """All jobs released strictly before ``horizon`` (e.g. one hyper-period)."""
        jobs: List[IOJob] = []
        index = 0
        while self.offset + self.period * index < horizon:
            jobs.append(self.job(index))
            index += 1
        return jobs


@dataclass(frozen=True)
class IOJob:
    """A single release (``lambda_i^j``) of a timed I/O task."""

    task: IOTask
    index: int
    release: int

    @property
    def name(self) -> str:
        """Human-readable job identifier, e.g. ``"tau3[2]"``."""
        return f"{self.task.name}[{self.index}]"

    @property
    def key(self) -> Tuple[str, int]:
        """Hashable identity of the job: ``(task name, job index)``."""
        return (self.task.name, self.index)

    @property
    def wcet(self) -> int:
        return self.task.wcet

    @property
    def priority(self) -> int:
        return self.task.priority

    @property
    def deadline(self) -> int:
        """Absolute deadline of the job."""
        return self.release + self.task.deadline

    @property
    def ideal_start(self) -> int:
        """Absolute ideal start time ``T_i * j + delta_i`` (plus release offset)."""
        return self.release + self.task.ideal_offset

    @property
    def latest_start(self) -> int:
        """Latest start time that still meets the deadline (non-preemptive)."""
        return self.deadline - self.task.wcet

    @property
    def window(self) -> Tuple[int, int]:
        """Timing boundary ``[ideal - theta, ideal + theta]`` clamped to the release window."""
        lo = max(self.release, self.ideal_start - self.task.theta)
        hi = min(self.latest_start, self.ideal_start + self.task.theta)
        return (lo, hi)

    @property
    def device(self) -> str:
        return self.task.device

    def quality(self, start_time: int) -> float:
        """Quality obtained if the job starts executing at ``start_time``."""
        return self.task.quality_curve.value(
            start_time, self.ideal_start, self.task.theta
        )

    def max_quality(self) -> float:
        """Quality obtained at the ideal start time (``V_max``)."""
        cached = self.__dict__.get("_max_quality")
        if cached is None:
            cached = self.task.quality_curve.value(
                self.ideal_start, self.ideal_start, self.task.theta
            )
            object.__setattr__(self, "_max_quality", cached)
        return cached

    def overlaps_ideally_with(self, other: "IOJob") -> bool:
        """Whether the *ideal* executions of the two jobs overlap in time.

        Used to build the dependency graphs of Algorithm 1: two jobs conflict
        if executing both at their ideal start times would overlap on the
        shared I/O device.
        """
        a_start, a_end = self.ideal_start, self.ideal_start + self.wcet
        b_start, b_end = other.ideal_start, other.ideal_start + other.wcet
        return a_start < b_end and b_start < a_end

    def __lt__(self, other: "IOJob") -> bool:
        return (self.ideal_start, self.key) < (other.ideal_start, other.key)

    def __hash__(self) -> int:
        """Same value as the dataclass-generated hash, computed once."""
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.task, self.index, self.release))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self) -> Dict[str, object]:
        """Slim pickles: drop memoised derivatives (hash, max quality)."""
        state = dict(self.__dict__)
        state.pop("_hash", None)
        state.pop("_max_quality", None)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)


class TaskSet:
    """An ordered collection of timed I/O tasks (``Gamma`` in the paper)."""

    def __init__(self, tasks: Iterable[IOTask]):
        self._tasks: List[IOTask] = list(tasks)
        names = [task.name for task in self._tasks]
        if len(names) != len(set(names)):
            raise ValueError("task names within a TaskSet must be unique")
        # The task list never changes after construction, so the per-device
        # partitions and the released-jobs lists (pure functions of the tasks)
        # are computed once and shared by every consumer of this instance.
        self._partition_cache: Optional[Dict[str, "TaskSet"]] = None
        self._jobs_cache: Dict[int, List[IOJob]] = {}

    def __getstate__(self) -> Dict[str, object]:
        """Slim pickles: derived caches are recomputed on demand by receivers."""
        state = dict(self.__dict__)
        state.pop("_partition_cache", None)
        state.pop("_jobs_cache", None)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._partition_cache = None
        self._jobs_cache = {}

    def __iter__(self) -> Iterator[IOTask]:
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __getitem__(self, item: int) -> IOTask:
        return self._tasks[item]

    def __repr__(self) -> str:
        return f"TaskSet({len(self._tasks)} tasks, U={self.utilisation:.3f})"

    @property
    def tasks(self) -> List[IOTask]:
        return list(self._tasks)

    @property
    def utilisation(self) -> float:
        """Total utilisation ``sum C_i / T_i`` across all tasks."""
        return sum(task.utilisation for task in self._tasks)

    @property
    def devices(self) -> List[str]:
        """Sorted list of distinct I/O devices referenced by the tasks."""
        return sorted({task.device for task in self._tasks})

    def by_name(self, name: str) -> IOTask:
        for task in self._tasks:
            if task.name == name:
                return task
        raise KeyError(f"no task named {name!r}")

    def hyperperiod(self) -> int:
        """Hyper-period (LCM of all task periods)."""
        if not self._tasks:
            raise ValueError("hyperperiod of an empty task set is undefined")
        return _hyperperiod([task.period for task in self._tasks])

    def jobs(self, horizon: Optional[int] = None) -> List[IOJob]:
        """All jobs released by all tasks within ``horizon`` (default: one hyper-period)."""
        if horizon is None:
            horizon = self.hyperperiod()
        cached = self._jobs_cache.get(horizon)
        if cached is None:
            jobs: List[IOJob] = []
            for task in self._tasks:
                jobs.extend(task.jobs(horizon))
            # Same order as sorting with IOJob.__lt__, but the sort key is
            # built once per job instead of twice per comparison.
            jobs.sort(key=lambda j: (j.ideal_start, j.key))
            self._jobs_cache[horizon] = cached = jobs
        return list(cached)

    def assign_dmpo_priorities(self) -> "TaskSet":
        """Return a new task set with deadline-monotonic priorities assigned.

        The task with the *shortest* deadline receives the *highest* priority
        (largest number), matching the paper's convention that
        ``D_1 > D_2  =>  P_1 < P_2``.  Ties are broken by task name for
        determinism.
        """
        ordered = sorted(self._tasks, key=lambda t: (-t.deadline, t.name))
        reprioritised = [
            task.with_priority(rank + 1) for rank, task in enumerate(ordered)
        ]
        by_name: Dict[str, IOTask] = {task.name: task for task in reprioritised}
        return TaskSet([by_name[task.name] for task in self._tasks])

    def partition(self) -> Dict[str, "TaskSet"]:
        """Split the task set into per-device partitions (fully-partitioned model)."""
        if self._partition_cache is None:
            groups: Dict[str, List[IOTask]] = {}
            for task in self._tasks:
                groups.setdefault(task.device, []).append(task)
            self._partition_cache = {
                device: TaskSet(tasks) for device, tasks in sorted(groups.items())
            }
        return dict(self._partition_cache)

    def scaled(self, factor: float) -> "TaskSet":
        """Return a copy with all WCETs scaled by ``factor`` (utilisation scaling)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        scaled_tasks = []
        for task in self._tasks:
            new_wcet = max(1, int(round(task.wcet * factor)))
            scaled_tasks.append(replace(task, wcet=new_wcet))
        return TaskSet(scaled_tasks)


def make_task_ms(
    name: str,
    wcet_ms: float,
    period_ms: float,
    *,
    deadline_ms: Optional[float] = None,
    ideal_offset_ms: float = 0.0,
    theta_ms: float = 0.0,
    priority: int = 0,
    device: str = "dev0",
    v_max: float = 2.0,
    v_min: float = 1.0,
    offset_ms: float = 0.0,
) -> IOTask:
    """Convenience constructor taking milliseconds (the paper's unit) as floats."""
    return IOTask(
        name=name,
        wcet=int(round(wcet_ms * MS)),
        period=int(round(period_ms * MS)),
        deadline=None if deadline_ms is None else int(round(deadline_ms * MS)),
        priority=priority,
        ideal_offset=int(round(ideal_offset_ms * MS)),
        theta=int(round(theta_ms * MS)),
        device=device,
        v_max=v_max,
        v_min=v_min,
        offset=int(round(offset_ms * MS)),
    )
