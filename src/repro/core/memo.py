"""Process-local memoisation: bounded LRU caches for warm-worker fast paths.

A long-lived worker process (the service pools, the serving daemon, campaign
runners) answers many requests whose *inputs repeat*: the same scenario
materialised at the same system index, the same job partition pushed through
the heuristic scheduler, the same GA problem compiled again.  Re-deriving that
state is pure — bit-identical every time — which is exactly what makes it safe
to memoise: a warm worker may *skip* a derivation, never change its result.

:class:`LRUMemo` is the one primitive: a thread-safe, bounded,
least-recently-used mapping with hit/miss/eviction counters.  Memos are
registered by name through :func:`get_memo` so that every layer shares one
per-process registry — :func:`memo_stats` snapshots all of them, and
:func:`drain_memo_metrics` ships their counters into a
:class:`~repro.obs.metrics.MetricsRegistry` as *deltas* (counter increments
since the previous drain), which is what lets pool workers report memo
activity through the same snapshot-merge path as every other metric without
double counting.

Capacities bound worker memory and are tunable per memo via
``REPRO_MEMO_CAP_<NAME>`` environment variables (name upper-cased, dashes as
underscores; ``0`` disables the memo entirely).  Memoised values are shared
between callers, so only immutable (or defensively copied) values may be
stored — the call sites document what they cache and why it is safe.

Nothing in this module ever feeds into request envelopes, content keys,
journals or cached payloads: memoisation is invisible except in speed.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional

#: Fallback capacity for memos registered without an explicit default.
DEFAULT_MEMO_CAPACITY = 128


def _env_capacity(name: str, default: int) -> int:
    """Resolve a memo's capacity: ``REPRO_MEMO_CAP_<NAME>`` wins over ``default``."""
    variable = "REPRO_MEMO_CAP_" + name.upper().replace("-", "_")
    raw = os.environ.get(variable)
    if raw is None:
        return int(default)
    try:
        capacity = int(raw)
    except ValueError:
        raise ValueError(f"{variable} must be an integer, got {raw!r}") from None
    if capacity < 0:
        raise ValueError(f"{variable} must be >= 0, got {capacity}")
    return capacity


class LRUMemo:
    """A thread-safe, bounded, least-recently-used memo with counters.

    ``capacity`` bounds the number of stored entries; inserting beyond it
    evicts the least recently *used* entry (lookups refresh recency).  A
    capacity of ``0`` disables storage: every lookup misses, nothing is
    retained — the uniform way to switch a memo off.
    """

    def __init__(self, name: str, capacity: int = DEFAULT_MEMO_CAPACITY):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.name = name
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        # Counter values at the last drain_deltas() call (hits, misses,
        # evictions) — what turns lifetime totals into per-drain increments.
        self._drained = (0, 0, 0)

    # -- the cache surface -------------------------------------------------------

    def get(self, key: Hashable) -> Optional[Any]:
        """The memoised value for ``key`` (refreshing recency), else ``None``."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
            return None

    def put(self, key: Hashable, value: Any) -> Any:
        """Store ``value`` under ``key``; returns the value that is now stored.

        First write wins (a concurrent writer of the same key holds an
        equivalent value — memoised computations are pure), and the insert
        evicts the least recently used entry beyond ``capacity``.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return self._entries[key]
            if self.capacity == 0:
                return value
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            return value

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """The memoised value for ``key``, creating (and storing) it on a miss.

        ``factory`` runs outside the lock: memoised derivations can be slow,
        and they are pure, so two racing threads at worst compute the same
        value twice — first write wins.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
        return self.put(key, factory())

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are lifetime totals)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    # -- introspection -----------------------------------------------------------

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def evictions(self) -> int:
        with self._lock:
            return self._evictions

    def stats(self) -> Dict[str, int]:
        """Lifetime counters plus current size and capacity."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def drain_deltas(self) -> Dict[str, int]:
        """Counter increments since the previous drain (resets the watermark).

        This is what feeds the metrics registry: increments — not absolute
        totals — survive the snapshot *merge* of pooled execution without
        double counting, because each worker's registry carries only what that
        worker did since it last shipped a snapshot.
        """
        with self._lock:
            hits, misses, evictions = self._drained
            deltas = {
                "hit": self._hits - hits,
                "miss": self._misses - misses,
                "evict": self._evictions - evictions,
            }
            self._drained = (self._hits, self._misses, self._evictions)
            return deltas


# -- the per-process memo registry -------------------------------------------------

_MEMOS: Dict[str, LRUMemo] = {}
_MEMOS_LOCK = threading.Lock()


def get_memo(name: str, capacity: int = DEFAULT_MEMO_CAPACITY) -> LRUMemo:
    """The process-wide memo registered under ``name`` (created on first use).

    ``capacity`` is the default cap, overridable via the
    ``REPRO_MEMO_CAP_<NAME>`` environment variable (read at creation time);
    later calls with a different default reuse the existing memo unchanged.
    """
    with _MEMOS_LOCK:
        memo = _MEMOS.get(name)
        if memo is None:
            memo = LRUMemo(name, _env_capacity(name, capacity))
            _MEMOS[name] = memo
        return memo


def memo_stats() -> Dict[str, Dict[str, int]]:
    """Stats of every registered memo, by name (sorted)."""
    with _MEMOS_LOCK:
        memos = sorted(_MEMOS.items())
    return {name: memo.stats() for name, memo in memos}


def reset_memos() -> None:
    """Drop every registered memo entirely (entries *and* counters).

    Test isolation and cold-path benchmarking only — production code never
    needs to forget pure derivations.
    """
    with _MEMOS_LOCK:
        _MEMOS.clear()


def drain_memo_metrics(registry) -> None:
    """Ship every memo's counter deltas into ``registry``.

    Emits ``repro_memo_ops_total{memo=<name>, op=hit|miss|evict}`` counter
    increments.  Call once per unit of shipped work (a worker chunk, a serial
    batch): each drain moves the watermark, so merging the resulting snapshots
    reconstructs exact per-process totals.
    """
    # Imported here so repro.core stays import-light; repro.obs does not
    # import this module, so there is no cycle either way.
    from repro.obs.metrics import MEMO_OPS_TOTAL

    with _MEMOS_LOCK:
        memos = sorted(_MEMOS.items())
    for name, memo in memos:
        for op, delta in memo.drain_deltas().items():
            if delta:
                registry.counter_inc(
                    MEMO_OPS_TOTAL,
                    delta,
                    help="Per-worker memo-cache operations by memo name and op.",
                    memo=name,
                    op=op,
                )
