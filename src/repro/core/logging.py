"""Structured stderr logging for the CLIs and the serving daemon.

One module-level threshold, set from the ``--log-level`` flag every CLI
carries; below it, :func:`log` costs a dict lookup and returns.  Lines are
``key=value`` pairs on stderr::

    level=info event=server-started host=127.0.0.1 port=46121 workers=2

Values that are not bare words are quoted as JSON strings, so the lines stay
machine-splittable no matter what lands in them.  The default level is
``off`` — batch CLIs are silent unless asked — and logging never writes to
stdout, which belongs to the JSONL/report payloads.
"""

from __future__ import annotations

import json
import re
import sys
from typing import Any

#: Recognised levels, most to least verbose.  ``off`` disables everything.
LEVELS = ("debug", "info", "warning", "error", "off")

_RANK = {name: rank for rank, name in enumerate(LEVELS)}
_BARE_WORD = re.compile(r"^[A-Za-z0-9_.:/@+-]+$")

_threshold = _RANK["off"]


def configure(level: str) -> None:
    """Set the global threshold (one of :data:`LEVELS`)."""
    global _threshold
    if level not in _RANK:
        raise ValueError(f"unknown log level {level!r}; expected one of {LEVELS}")
    _threshold = _RANK[level]


def enabled(level: str) -> bool:
    """Whether a :func:`log` call at ``level`` would emit anything."""
    return _RANK.get(level, -1) >= _threshold and level != "off"


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    if _BARE_WORD.match(text):
        return text
    return json.dumps(text)


def log(level: str, event: str, **fields: Any) -> None:
    """Emit one structured line to stderr when ``level`` clears the threshold."""
    if not enabled(level):
        return
    parts = [f"level={level}", f"event={_format_value(event)}"]
    parts.extend(f"{key}={_format_value(value)}" for key, value in fields.items())
    print(" ".join(parts), file=sys.stderr, flush=True)


def debug(event: str, **fields: Any) -> None:
    log("debug", event, **fields)


def info(event: str, **fields: Any) -> None:
    log("info", event, **fields)


def warning(event: str, **fields: Any) -> None:
    log("warning", event, **fields)


def error(event: str, **fields: Any) -> None:
    log("error", event, **fields)


def add_log_level_argument(parser, default: str = "off") -> None:
    """Attach the shared ``--log-level`` flag to an argparse parser."""
    parser.add_argument(
        "--log-level",
        choices=LEVELS,
        default=default,
        help=f"structured key=value diagnostics on stderr (default: {default})",
    )


def configure_from_args(args) -> None:
    """Apply a parsed ``--log-level`` flag (no-op when the parser lacks one)."""
    level = getattr(args, "log_level", None)
    if level is not None:
        configure(level)
