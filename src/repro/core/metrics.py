"""I/O-performance metrics Psi and Upsilon (Section III of the paper).

* ``Psi = |E| / |lambda|`` — the fraction of jobs that start *exactly* at
  their ideal start time (Equation (1)).
* ``Upsilon = sum V(kappa) / sum V(ideal)`` — the total obtained quality
  normalised by the maximum achievable quality (Equation (2)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.schedule import Schedule, ScheduleEntry, validate_schedule
from repro.core.task import IOJob


def exact_accurate_jobs(schedule: Schedule) -> List[ScheduleEntry]:
    """The set ``E`` of exactly timing-accurate jobs (Equation (1))."""
    return [entry for entry in schedule.entries if entry.is_exact]


def psi(schedule: Schedule) -> float:
    """Fraction of exactly timing-accurate jobs, ``Psi = |E| / |lambda|``."""
    total = len(schedule)
    if total == 0:
        return 1.0
    return len(exact_accurate_jobs(schedule)) / total


def upsilon(schedule: Schedule) -> float:
    """Normalised total quality, ``Upsilon`` (Equation (2))."""
    entries = schedule.entries
    if not entries:
        return 1.0
    obtained = sum(entry.quality for entry in entries)
    ideal = sum(entry.job.max_quality() for entry in entries)
    if ideal == 0:
        return 1.0
    return obtained / ideal


def mean_absolute_lateness(schedule: Schedule) -> float:
    """Mean absolute distance between actual and ideal start times (microseconds).

    Not a paper metric, but a useful diagnostic for timing accuracy.
    """
    entries = schedule.entries
    if not entries:
        return 0.0
    return sum(abs(entry.lateness) for entry in entries) / len(entries)


@dataclass(frozen=True)
class ScheduleMetrics:
    """Summary of a schedule's timing-accuracy performance."""

    schedulable: bool
    psi: float
    upsilon: float
    n_jobs: int
    n_exact: int
    mean_abs_lateness_us: float

    @classmethod
    def infeasible(cls, n_jobs: int = 0) -> "ScheduleMetrics":
        """Metrics object representing an unschedulable system."""
        return cls(
            schedulable=False,
            psi=0.0,
            upsilon=0.0,
            n_jobs=n_jobs,
            n_exact=0,
            mean_abs_lateness_us=float("inf"),
        )


def schedule_metrics(
    schedule: Schedule,
    jobs: Optional[Sequence[IOJob]] = None,
    *,
    strict: bool = True,
) -> ScheduleMetrics:
    """Compute the full metric summary for a schedule.

    If ``jobs`` is given, the schedule is also checked for completeness and
    constraint violations.  With ``strict`` (the default) a violating schedule
    is reported as unschedulable with zeroed quality metrics; with
    ``strict=False`` the quality metrics (Psi, Upsilon, lateness) are still
    computed from the schedule as produced — useful for measuring the timing
    accuracy of baselines such as GPIOCP even when they miss deadlines.
    """
    violations = validate_schedule(schedule, jobs, raise_on_error=False)
    if violations and strict:
        return ScheduleMetrics.infeasible(n_jobs=len(jobs) if jobs else len(schedule))
    exact = exact_accurate_jobs(schedule)
    return ScheduleMetrics(
        schedulable=not violations,
        psi=psi(schedule),
        upsilon=upsilon(schedule),
        n_jobs=len(schedule),
        n_exact=len(exact),
        mean_abs_lateness_us=mean_absolute_lateness(schedule),
    )


def aggregate_psi(schedules: Iterable[Schedule]) -> float:
    """System-wide Psi across several per-device schedules (job-weighted)."""
    total_jobs = 0
    total_exact = 0
    for schedule in schedules:
        total_jobs += len(schedule)
        total_exact += len(exact_accurate_jobs(schedule))
    if total_jobs == 0:
        return 1.0
    return total_exact / total_jobs


def aggregate_upsilon(schedules: Iterable[Schedule]) -> float:
    """System-wide Upsilon across several per-device schedules (quality-weighted)."""
    obtained = 0.0
    ideal = 0.0
    for schedule in schedules:
        for entry in schedule.entries:
            obtained += entry.quality
            ideal += entry.job.max_quality()
    if ideal == 0:
        return 1.0
    return obtained / ideal
