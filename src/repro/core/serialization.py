"""JSON (de)serialisation of task sets and schedules.

Offline schedules are computed on a host and then loaded into the I/O
controller (Phase 2 of the paper); in practice that means task sets and
scheduling decisions need a stable on-disk/exchange format.  The format is
deliberately plain JSON so that host tooling in any language can produce or
consume it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from repro.core.schedule import Schedule, ScheduleEntry
from repro.core.task import IOTask, TaskSet

_TASK_FIELDS = (
    "name",
    "wcet",
    "period",
    "deadline",
    "priority",
    "ideal_offset",
    "theta",
    "device",
    "v_max",
    "v_min",
    "offset",
)


def task_to_dict(task: IOTask) -> Dict[str, Any]:
    """Plain-dict representation of one task (all times in microseconds)."""
    return {field: getattr(task, field) for field in _TASK_FIELDS}


def task_from_dict(data: Dict[str, Any]) -> IOTask:
    """Inverse of :func:`task_to_dict`; unknown keys are rejected."""
    unknown = set(data) - set(_TASK_FIELDS)
    if unknown:
        raise ValueError(f"unknown task fields: {sorted(unknown)}")
    return IOTask(**data)


def taskset_to_dict(task_set: TaskSet) -> Dict[str, Any]:
    return {"tasks": [task_to_dict(task) for task in task_set]}


def taskset_from_dict(data: Dict[str, Any]) -> TaskSet:
    return TaskSet([task_from_dict(entry) for entry in data["tasks"]])


def taskset_to_json(task_set: TaskSet, *, indent: int = 2) -> str:
    return json.dumps(taskset_to_dict(task_set), indent=indent)


def taskset_from_json(text: str) -> TaskSet:
    return taskset_from_dict(json.loads(text))


def schedule_to_dict(schedule: Schedule, task_set: TaskSet) -> Dict[str, Any]:
    """Schedule as ``{device, entries: [{task, job, start}]}`` (tasks by name)."""
    return {
        "device": schedule.device,
        "entries": [
            {
                "task": entry.job.task.name,
                "job": entry.job.index,
                "start": entry.start,
            }
            for entry in schedule.sorted_entries()
        ],
    }


def schedule_from_dict(data: Dict[str, Any], task_set: TaskSet) -> Schedule:
    """Rebuild a schedule against the given task set (tasks looked up by name)."""
    schedule = Schedule(device=data.get("device"))
    for entry in data["entries"]:
        task = task_set.by_name(entry["task"])
        schedule.add(ScheduleEntry(job=task.job(int(entry["job"])), start=int(entry["start"])))
    return schedule


def schedule_to_json(schedule: Schedule, task_set: TaskSet, *, indent: int = 2) -> str:
    return json.dumps(schedule_to_dict(schedule, task_set), indent=indent)


def schedule_from_json(text: str, task_set: TaskSet) -> Schedule:
    return schedule_from_dict(json.loads(text), task_set)


# -- versioned payloads and content hashing ------------------------------------
#
# Experiment artifacts (sweep results, cached evaluation cells) are persisted
# across runs and possibly across versions of this package, so every on-disk
# payload carries an explicit ``kind`` and integer ``version``.  Readers check
# both and fail loudly on mismatch instead of silently misinterpreting stale
# files.  Content keys (cache directories) are derived from the canonical JSON
# form so that logically-equal configurations hash identically regardless of
# dict ordering.


class PayloadVersionError(ValueError):
    """A payload was written by a newer format version than this reader.

    Distinct from generic ``ValueError`` corruption so callers that fall back
    to recomputing on unreadable data can still fail loudly here — silently
    recomputing (and overwriting) a *newer* artifact would destroy it.
    """


def versioned_payload(kind: str, version: int, data: Any) -> Dict[str, Any]:
    """Wrap ``data`` in the standard ``{kind, version, data}`` envelope."""
    return {"kind": kind, "version": int(version), "data": data}


def parse_versioned_payload(
    payload: Dict[str, Any], kind: str, *, max_version: int
) -> Tuple[int, Any]:
    """Validate a versioned envelope; returns ``(version, data)``.

    Raises ``ValueError`` when the kind does not match or the version is newer
    than this reader understands (older versions are the caller's business —
    that is what the returned version number is for).
    """
    found_kind = payload.get("kind")
    if found_kind != kind:
        raise ValueError(f"expected payload kind {kind!r}, found {found_kind!r}")
    version = payload.get("version")
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"invalid payload version {version!r} for kind {kind!r}")
    if version > max_version:
        raise PayloadVersionError(
            f"payload kind {kind!r} has version {version}, "
            f"but this reader only understands versions <= {max_version}"
        )
    return version, payload.get("data")


def atomic_write_json(
    path: Union[str, Path],
    payload: Any,
    *,
    indent: Union[int, None] = None,
    sort_keys: bool = True,
) -> Path:
    """Write ``payload`` as JSON to ``path`` atomically (temp file + rename).

    Every writer goes through its own unique temp file in the destination
    directory, so concurrent processes sharing one directory can never read a
    torn/partial file: readers see either the old content or the new content,
    and the last complete writer wins.  Used by every persistent store in the
    repository (the schedule cache, experiment artifacts, campaign reports).
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=indent, sort_keys=sort_keys)
            handle.write("\n")
        # mkstemp creates 0600 files; widen to the umask-governed mode a
        # plain open() would have produced, so shared artifact directories
        # stay readable by other users/groups.
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_name, 0o666 & ~umask)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text (sorted keys, no whitespace) for hashing."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_hash(obj: Any, *, length: int = 16) -> str:
    """Hex digest of the canonical JSON form of ``obj`` (content cache key)."""
    digest = hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()
    return digest[:length]
