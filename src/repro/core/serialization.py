"""JSON (de)serialisation of task sets and schedules.

Offline schedules are computed on a host and then loaded into the I/O
controller (Phase 2 of the paper); in practice that means task sets and
scheduling decisions need a stable on-disk/exchange format.  The format is
deliberately plain JSON so that host tooling in any language can produce or
consume it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Union

from repro.core.schedule import Schedule, ScheduleEntry
from repro.core.task import IOTask, TaskSet

_TASK_FIELDS = (
    "name",
    "wcet",
    "period",
    "deadline",
    "priority",
    "ideal_offset",
    "theta",
    "device",
    "v_max",
    "v_min",
    "offset",
)


def task_to_dict(task: IOTask) -> Dict[str, Any]:
    """Plain-dict representation of one task (all times in microseconds)."""
    return {field: getattr(task, field) for field in _TASK_FIELDS}


def task_from_dict(data: Dict[str, Any]) -> IOTask:
    """Inverse of :func:`task_to_dict`; unknown keys are rejected."""
    unknown = set(data) - set(_TASK_FIELDS)
    if unknown:
        raise ValueError(f"unknown task fields: {sorted(unknown)}")
    return IOTask(**data)


def taskset_to_dict(task_set: TaskSet) -> Dict[str, Any]:
    return {"tasks": [task_to_dict(task) for task in task_set]}


def taskset_from_dict(data: Dict[str, Any]) -> TaskSet:
    return TaskSet([task_from_dict(entry) for entry in data["tasks"]])


def taskset_to_json(task_set: TaskSet, *, indent: int = 2) -> str:
    return json.dumps(taskset_to_dict(task_set), indent=indent)


def taskset_from_json(text: str) -> TaskSet:
    return taskset_from_dict(json.loads(text))


def schedule_to_dict(schedule: Schedule, task_set: TaskSet) -> Dict[str, Any]:
    """Schedule as ``{device, entries: [{task, job, start}]}`` (tasks by name)."""
    return {
        "device": schedule.device,
        "entries": [
            {
                "task": entry.job.task.name,
                "job": entry.job.index,
                "start": entry.start,
            }
            for entry in schedule.sorted_entries()
        ],
    }


def schedule_from_dict(data: Dict[str, Any], task_set: TaskSet) -> Schedule:
    """Rebuild a schedule against the given task set (tasks looked up by name)."""
    schedule = Schedule(device=data.get("device"))
    for entry in data["entries"]:
        task = task_set.by_name(entry["task"])
        schedule.add(ScheduleEntry(job=task.job(int(entry["job"])), start=int(entry["start"])))
    return schedule


def schedule_to_json(schedule: Schedule, task_set: TaskSet, *, indent: int = 2) -> str:
    return json.dumps(schedule_to_dict(schedule, task_set), indent=indent)


def schedule_from_json(text: str, task_set: TaskSet) -> Schedule:
    return schedule_from_dict(json.loads(text), task_set)
