"""The GA-based I/O scheduler: wraps the NSGA-II search behind the Scheduler API.

The scheduler optimises ``(Psi, Upsilon)`` for one per-device partition and
returns, besides a preferred schedule, the full Pareto front found during the
search.  As in the paper's evaluation, the best-Psi and best-Upsilon points of
the front are exposed (``info["best_psi_schedule"]`` / ``info["best_upsilon_schedule"]``)
so that Figures 6 and 7 can report the best value per objective.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.memo import get_memo
from repro.core.schedule import Schedule
from repro.core.task import IOJob
from repro.scheduling.base import Scheduler, ScheduleResult
from repro.scheduling.ga.encoding import GAProblem
from repro.scheduling.ga.nsga2 import NSGA2, ParetoArchive
from repro.scheduling.ga.reconfiguration import evaluate_batch as evaluate_genes_batch
from repro.scheduling.heuristic import HeuristicScheduler
from repro.scheduling.registry import register_scheduler

#: Population size and iteration count used by the paper's evaluation.
PAPER_POPULATION_SIZE = 300
PAPER_GENERATIONS = 500


@dataclass(frozen=True)
class GAConfig:
    """Configuration of the GA search.

    The defaults are deliberately smaller than the paper's (population 300,
    500 generations) so that unit tests and benchmarks complete quickly; the
    experiment harness can request the full budget via
    ``GAConfig.paper_scale()``.
    """

    population_size: int = 60
    generations: int = 40
    crossover_probability: float = 0.9
    gene_mutation_probability: Optional[float] = None
    #: Seed the initial population with the heuristic (Algorithm 1) solution
    #: and the all-ideal-start vector.  Keeps the GA's schedulability at least
    #: as good as the static method, as observed in Figure 5.
    seed_with_heuristic: bool = True
    seed: Optional[int] = None

    @classmethod
    def paper_scale(cls, **overrides) -> "GAConfig":
        """The paper's search budget (population 300, 500 generations)."""
        params = dict(
            population_size=PAPER_POPULATION_SIZE,
            generations=PAPER_GENERATIONS,
        )
        params.update(overrides)
        return cls(**params)


@register_scheduler("ga")
class GAScheduler(Scheduler):
    """Multi-objective GA-based I/O scheduling (Section III-B)."""

    name = "ga"

    def __init__(self, config: Optional[GAConfig] = None, **overrides):
        """``overrides`` are :class:`GAConfig` fields applied on top of ``config``.

        They exist so the scheduler registry (and spec strings such as
        ``"ga:generations=50"``) can configure the search without constructing
        a ``GAConfig`` first; an unknown field raises ``TypeError`` listing the
        valid ones.
        """
        base = config or GAConfig()
        if overrides:
            valid = {f.name for f in dataclasses.fields(GAConfig)}
            unknown = sorted(set(overrides) - valid)
            if unknown:
                raise TypeError(
                    f"unknown GAConfig override(s) {unknown}; "
                    f"valid fields: {', '.join(sorted(valid))}"
                )
            base = dataclasses.replace(base, **overrides)
        self.config = base

    def schedule_jobs(self, jobs: Sequence[IOJob], horizon: int) -> ScheduleResult:
        jobs = list(jobs)
        if not jobs:
            return ScheduleResult.from_schedule(Schedule(), jobs)

        # Compiling the partition (gene bounds, release/deadline arrays) is a
        # pure function of (jobs, horizon) and the problem is read-only during
        # the search, so warm workers share one pre-compiled instance per
        # partition content.
        problem = get_memo("ga-problem", 64).get_or_create(
            (horizon, tuple(jobs)), lambda: self._build_problem(jobs, horizon)
        )
        rng = np.random.default_rng(self.config.seed)
        seeds = self._build_seeds(problem, jobs, horizon)

        # The batch evaluator scores a whole (pop, n_genes) matrix per call.
        # Archive payloads are the repaired start-time rows — Schedule objects
        # are only materialised for the handful of entries reported below.
        def evaluate_batch(genes_matrix: np.ndarray):
            objectives, starts, feasible = evaluate_genes_batch(problem, genes_matrix)
            payloads = [
                starts[row] if feasible[row] else None
                for row in range(genes_matrix.shape[0])
            ]
            return objectives, payloads

        search = NSGA2(
            problem,
            evaluate_batch=evaluate_batch,
            population_size=self.config.population_size,
            generations=self.config.generations,
            crossover_probability=self.config.crossover_probability,
            gene_mutation_probability=self.config.gene_mutation_probability,
            rng=rng,
            seeds=seeds,
        )
        outcome = search.run()
        archive = outcome.archive

        info = {
            "n_input_jobs": len(jobs),
            "generations_run": outcome.generations_run,
            "evaluations": outcome.evaluations,
            "pareto_size": len(archive),
            "pareto_front": [entry.objectives for entry in archive],
        }

        if len(archive) == 0:
            return ScheduleResult.infeasible(n_jobs=len(jobs), **info)

        best_psi = archive.best_by(0)
        best_upsilon = archive.best_by(1)
        info["best_psi"] = best_psi.objectives[0]
        info["best_psi_upsilon"] = best_psi.objectives[1]
        info["best_upsilon"] = best_upsilon.objectives[1]
        info["best_upsilon_psi"] = best_upsilon.objectives[0]
        info["best_psi_schedule"] = self._schedule_from_starts(problem, best_psi.payload)
        info["best_upsilon_schedule"] = self._schedule_from_starts(
            problem, best_upsilon.payload
        )

        # The preferred single schedule balances both objectives: the archive
        # entry with the largest objective sum (a simple knee-point proxy).
        preferred = max(archive.entries, key=lambda entry: sum(entry.objectives))
        return ScheduleResult.from_schedule(
            self._schedule_from_starts(problem, preferred.payload), jobs, **info
        )

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _build_problem(jobs: List[IOJob], horizon: int) -> GAProblem:
        problem = GAProblem(jobs=jobs, horizon=horizon)
        problem.compiled()  # pre-warm so every search on this memo entry shares it
        return problem

    @staticmethod
    def _schedule_from_starts(problem: GAProblem, starts: np.ndarray) -> Schedule:
        """Materialise a Schedule from a repaired start-time row.

        Entries are inserted in execution order (repaired starts never
        overlap, so ascending start *is* the execution order) — the same
        insertion order the scalar repair produced, keeping the metrics'
        float accumulation identical.
        """
        order = np.argsort(np.asarray(starts), kind="stable")
        schedule = Schedule()
        for index in order:
            schedule.set_start(problem.jobs[int(index)], int(starts[int(index)]))
        return schedule

    def _build_seeds(
        self, problem: GAProblem, jobs: Sequence[IOJob], horizon: int
    ) -> List[np.ndarray]:
        seeds: List[np.ndarray] = [problem.ideal_genes()]
        if not self.config.seed_with_heuristic:
            return seeds
        heuristic = HeuristicScheduler()
        # Seed from the heuristic result for the caller's job order (not the
        # problem's canonical order): the start-time mapping is identical
        # either way — the heuristic canonicalises internally — and using the
        # caller's order shares the per-worker memo entry with a plain
        # "static" run of the same partition.
        result = heuristic.schedule_jobs(jobs, horizon)
        if result.schedulable and result.schedule is not None:
            starts_by_key = {
                entry.job.key: entry.start for entry in result.schedule.entries
            }
            seeds.append(problem.genes_from_schedule_mapping(starts_by_key))
        return seeds
