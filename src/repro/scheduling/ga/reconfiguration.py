"""Reconfiguration (repair) function of the GA (Section III-B).

Applied to every individual before the objective functions, the
reconfiguration resolves execution conflicts while preserving the execution
order implied by the genes, and opportunistically snaps jobs back to their
ideal start times when doing so causes no conflict:

1. order jobs by their encoded start times (ties: higher priority first, as
   footnote 2 of the paper specifies);
2. assign realised start times sequentially, delaying a job just enough to
   clear the previous job's execution (and never before its release);
3. for each job, if the device is idle around its ideal start time and the
   ideal start lies inside its release window, move it there;
4. if any job now misses its deadline the individual is infeasible and both
   objectives evaluate to -1.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.schedule import Schedule
from repro.core.task import IOJob


def reconfigure(
    jobs: Sequence[IOJob],
    genes: Sequence[int],
) -> Optional[Schedule]:
    """Repair a gene vector into a conflict-free schedule, or ``None`` if infeasible."""
    if len(jobs) != len(genes):
        raise ValueError("genes and jobs must have the same length")
    if not jobs:
        return Schedule()

    # Execution order implied by the genes; same start time -> higher priority first.
    order = sorted(
        range(len(jobs)),
        key=lambda i: (int(genes[i]), -jobs[i].priority, jobs[i].key),
    )

    starts: List[Tuple[IOJob, int]] = []
    device_free_at = 0
    for index in order:
        job = jobs[index]
        desired = int(genes[index])
        start = max(desired, device_free_at, job.release)
        starts.append((job, start))
        device_free_at = start + job.wcet

    # Opportunistic snap-to-ideal: a job may move to its ideal start time if the
    # move keeps it inside its release window and clear of its neighbours.
    for position, (job, start) in enumerate(starts):
        ideal = job.ideal_start
        if start == ideal:
            continue
        if not (job.release <= ideal <= job.deadline - job.wcet):
            continue
        previous_finish = 0
        if position > 0:
            prev_job, prev_start = starts[position - 1]
            previous_finish = prev_start + prev_job.wcet
        next_start = None
        if position + 1 < len(starts):
            next_start = starts[position + 1][1]
        if ideal < previous_finish:
            continue
        if next_start is not None and ideal + job.wcet > next_start:
            continue
        starts[position] = (job, ideal)

    schedule = Schedule()
    for job, start in starts:
        if start + job.wcet > job.deadline:
            return None
        schedule.set_start(job, start)
    return schedule


def evaluate(
    jobs: Sequence[IOJob],
    genes: Sequence[int],
) -> Tuple[float, float, Optional[Schedule]]:
    """Objectives ``(Psi, Upsilon)`` of an individual after reconfiguration.

    Infeasible individuals (a deadline miss survives the repair) score -1 on
    both objectives, exactly as the paper prescribes.
    """
    from repro.core.metrics import psi as _psi
    from repro.core.metrics import upsilon as _upsilon

    schedule = reconfigure(jobs, genes)
    if schedule is None:
        return -1.0, -1.0, None
    return _psi(schedule), _upsilon(schedule), schedule
