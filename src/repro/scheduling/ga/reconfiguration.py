"""Reconfiguration (repair) function of the GA (Section III-B).

Applied to every individual before the objective functions, the
reconfiguration resolves execution conflicts while preserving the execution
order implied by the genes, and opportunistically snaps jobs back to their
ideal start times when doing so causes no conflict:

1. order jobs by their encoded start times (ties: higher priority first, as
   footnote 2 of the paper specifies);
2. assign realised start times sequentially, delaying a job just enough to
   clear the previous job's execution (and never before its release);
3. for each job, if the device is idle around its ideal start time and the
   ideal start lies inside its release window, move it there;
4. if any job now misses its deadline the individual is infeasible and both
   objectives evaluate to -1.

Two implementations coexist:

* the scalar :func:`reconfigure` / :func:`evaluate` pair, operating on one
  individual and producing :class:`~repro.core.schedule.Schedule` objects —
  the readable reference, still used by unit tests and one-off callers;
* the batched :func:`reconfigure_batch` / :func:`evaluate_batch` pair,
  repairing and scoring a whole ``(pop, n_genes)`` population matrix at once
  through :class:`~repro.scheduling.ga.encoding.CompiledPartition` arrays.
  The forward conflict-resolution scan is expressed as a running maximum
  (``start_k = W_{k-1} + max_{j<=k}(base_j - W_{j-1})`` with ``W`` the
  cumulative WCET), so only the order-dependent snap-to-ideal pass iterates
  over job positions — vectorized across the population at each position.
  Both pairs produce bit-identical objectives for every individual (property
  tested), down to floating-point summation order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.schedule import Schedule
from repro.core.task import IOJob
from repro.scheduling.ga.encoding import CompiledPartition, GAProblem

#: Sentinel "no next job" start used by the vectorized snap pass; large enough
#: to exceed any real start time, small enough that ``ideal + wcet`` cannot
#: overflow when compared against it.
_NO_NEXT = np.iinfo(np.int64).max // 4


def reconfigure(
    jobs: Sequence[IOJob],
    genes: Sequence[int],
) -> Optional[Schedule]:
    """Repair a gene vector into a conflict-free schedule, or ``None`` if infeasible."""
    if len(jobs) != len(genes):
        raise ValueError("genes and jobs must have the same length")
    if not jobs:
        return Schedule()

    # Execution order implied by the genes; same start time -> higher priority first.
    order = sorted(
        range(len(jobs)),
        key=lambda i: (int(genes[i]), -jobs[i].priority, jobs[i].key),
    )

    starts: List[Tuple[IOJob, int]] = []
    device_free_at = 0
    for index in order:
        job = jobs[index]
        desired = int(genes[index])
        start = max(desired, device_free_at, job.release)
        starts.append((job, start))
        device_free_at = start + job.wcet

    # Opportunistic snap-to-ideal: a job may move to its ideal start time if the
    # move keeps it inside its release window and clear of its neighbours.
    for position, (job, start) in enumerate(starts):
        ideal = job.ideal_start
        if start == ideal:
            continue
        if not (job.release <= ideal <= job.deadline - job.wcet):
            continue
        previous_finish = 0
        if position > 0:
            prev_job, prev_start = starts[position - 1]
            previous_finish = prev_start + prev_job.wcet
        next_start = None
        if position + 1 < len(starts):
            next_start = starts[position + 1][1]
        if ideal < previous_finish:
            continue
        if next_start is not None and ideal + job.wcet > next_start:
            continue
        starts[position] = (job, ideal)

    schedule = Schedule()
    for job, start in starts:
        if start + job.wcet > job.deadline:
            return None
        schedule.set_start(job, start)
    return schedule


def evaluate(
    jobs: Sequence[IOJob],
    genes: Sequence[int],
) -> Tuple[float, float, Optional[Schedule]]:
    """Objectives ``(Psi, Upsilon)`` of an individual after reconfiguration.

    Infeasible individuals (a deadline miss survives the repair) score -1 on
    both objectives, exactly as the paper prescribes.
    """
    from repro.core.metrics import psi as _psi
    from repro.core.metrics import upsilon as _upsilon

    schedule = reconfigure(jobs, genes)
    if schedule is None:
        return -1.0, -1.0, None
    return _psi(schedule), _upsilon(schedule), schedule


# -- batched implementation ---------------------------------------------------


def _repair_batch(
    compiled: CompiledPartition, genes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared batched repair: ``(order, starts_sorted, wcet_sorted, feasible)``.

    ``order`` is the execution-order permutation per row; ``starts_sorted``
    the realised start times in that order (strictly increasing, since
    executions never overlap).
    """
    n_rows, n = genes.shape

    # Execution order implied by the genes; same start -> higher priority first
    # (the composite key folds the (-priority, key) tie-break into the value).
    composite = genes * np.int64(n) + compiled.order_tiebreak
    order = np.argsort(composite, axis=1, kind="stable")

    desired = np.take_along_axis(genes, order, axis=1)
    release = compiled.release[order]
    wcet = compiled.wcet[order]
    deadline = compiled.deadline[order]
    ideal = compiled.ideal[order]

    # Forward scan: start_k = max(desired_k, release_k, finish_{k-1}) becomes a
    # prefix maximum over base_j - W_{j-1} (W = cumulative WCET).
    base = np.maximum(desired, release)
    cum_wcet = np.cumsum(wcet, axis=1)
    cum_before = cum_wcet - wcet
    starts = cum_before + np.maximum.accumulate(base - cum_before, axis=1)

    # Opportunistic snap-to-ideal.  Eligibility against the *pre-snap* next
    # start is vectorized; the dependency on the (post-snap) previous finish
    # runs position by position, vectorized across the population.
    next_start = np.empty_like(starts)
    next_start[:, :-1] = starts[:, 1:]
    next_start[:, -1] = _NO_NEXT
    eligible = (
        (starts != ideal)
        & (release <= ideal)
        & (ideal <= deadline - wcet)
        & (ideal + wcet <= next_start)
    )
    any_eligible = eligible.any(axis=0)
    prev_finish = np.zeros(n_rows, dtype=np.int64)
    for position in range(n):
        column = starts[:, position]
        wcet_col = wcet[:, position]
        if any_eligible[position]:
            ideal_col = ideal[:, position]
            snap = eligible[:, position] & (ideal_col >= prev_finish)
            column = np.where(snap, ideal_col, column)
            starts[:, position] = column
        prev_finish = column + wcet_col

    feasible = ~((starts + wcet > deadline).any(axis=1))
    return order, starts, wcet, feasible


def _validate_matrix(compiled: CompiledPartition, genes_matrix: np.ndarray) -> np.ndarray:
    genes = np.ascontiguousarray(np.asarray(genes_matrix, dtype=np.int64))
    if genes.ndim != 2 or genes.shape[1] != compiled.n_jobs:
        raise ValueError(
            f"expected a (pop, {compiled.n_jobs}) gene matrix, got {genes.shape}"
        )
    return genes


def reconfigure_batch(
    problem: GAProblem, genes_matrix: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Repair a whole population matrix at once.

    Returns ``(starts, feasible)`` where ``starts`` is a ``(pop, n_genes)``
    int64 matrix of realised start times in problem job order and ``feasible``
    a ``(pop,)`` bool vector.  Rows flagged infeasible still carry the
    repaired start times (useful for diagnostics) but violate a deadline.
    """
    compiled = problem.compiled()
    genes = _validate_matrix(compiled, genes_matrix)
    if genes.shape[1] == 0:
        return genes.copy(), np.ones(genes.shape[0], dtype=bool)
    order, starts, _, feasible = _repair_batch(compiled, genes)
    job_starts = np.empty_like(starts)
    np.put_along_axis(job_starts, order, starts, axis=1)
    return job_starts, feasible


def evaluate_batch(
    problem: GAProblem, genes_matrix: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Objectives ``(Psi, Upsilon)`` of a whole population matrix.

    Returns ``(objectives, starts, feasible)``: a ``(pop, 2)`` float64
    objective matrix (``-1`` rows for infeasible individuals, exactly as the
    scalar :func:`evaluate`), the repaired ``(pop, n_genes)`` start times in
    problem job order, and the feasibility vector.

    Quality sums accumulate sequentially (``np.cumsum``) in execution order —
    the same associativity as the scalar metrics path — so the objectives are
    bit-identical to per-individual evaluation.
    """
    compiled = problem.compiled()
    genes = _validate_matrix(compiled, genes_matrix)
    n_rows, n = genes.shape
    objectives = np.full((n_rows, 2), -1.0, dtype=np.float64)
    if n == 0:
        objectives[:] = 1.0
        return objectives, genes.copy(), np.ones(n_rows, dtype=bool)

    order, starts_sorted, _, feasible = _repair_batch(compiled, genes)
    job_starts = np.empty_like(starts_sorted)
    np.put_along_axis(job_starts, order, starts_sorted, axis=1)

    ideal_sorted = compiled.ideal[order]
    theta_sorted = compiled.theta[order]
    v_max_sorted = compiled.v_max[order]
    v_min_sorted = compiled.v_min[order]

    # Psi: the fraction of exactly timing-accurate jobs.
    exact = starts_sorted == ideal_sorted
    psi = exact.sum(axis=1) / n

    # Upsilon: linear quality curve, evaluated element-wise exactly as
    # LinearQualityCurve.value does (same operations, same order).
    distance = np.abs(starts_sorted - ideal_sorted)
    safe_theta = np.where(theta_sorted > 0, theta_sorted, 1)
    fraction = 1.0 - distance / safe_theta
    decayed = v_min_sorted + (v_max_sorted - v_min_sorted) * fraction
    quality = np.where(
        exact, v_max_sorted,
        np.where((theta_sorted <= 0) | (distance >= theta_sorted), v_min_sorted, decayed),
    )
    obtained = np.cumsum(quality, axis=1)[:, -1]
    ideal_total = np.cumsum(v_max_sorted, axis=1)[:, -1]
    with np.errstate(divide="ignore", invalid="ignore"):
        upsilon = np.where(ideal_total == 0, 1.0, obtained / ideal_total)

    objectives[feasible, 0] = psi[feasible]
    objectives[feasible, 1] = upsilon[feasible]
    return objectives, job_starts, feasible
