"""Variation operators for the GA search: initialisation, crossover, mutation.

Genes are integer start times.  Initialisation and mutation sample uniformly
inside each job's timing boundary (per the paper); crossover is uniform, which
suits the job-wise independent structure of the chromosome.

The batch operators (:func:`initial_population_matrix`,
:func:`tournament_winners`, :func:`batch_uniform_crossover`,
:func:`batch_mutate`) act on a whole ``(pop, n_genes)`` population matrix
with a fixed number of fixed-shape draws from one ``numpy.random.Generator``,
which makes the GA's RNG stream a pure function of the seed — the per-
generation draw order is documented in :class:`~repro.scheduling.ga.nsga2.NSGA2`.
The scalar operators are retained as the readable single-individual
reference implementations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.scheduling.ga.encoding import GAProblem

#: Fraction of mutations that snap the gene to the job's ideal start time
#: instead of a uniform resample (see :func:`mutate`).
SNAP_TO_IDEAL_PROBABILITY = 0.2


def initial_population(
    problem: GAProblem,
    size: int,
    rng: np.random.Generator,
    seeds: Optional[Sequence[np.ndarray]] = None,
) -> List[np.ndarray]:
    """Random initial population as a list of gene vectors (reference API).

    Kept for single-individual callers and tests; the GA itself uses
    :func:`initial_population_matrix`.
    """
    return list(initial_population_matrix(problem, size, rng, seeds=seeds))


def initial_population_matrix(
    problem: GAProblem,
    size: int,
    rng: np.random.Generator,
    seeds: Optional[Sequence[np.ndarray]] = None,
) -> np.ndarray:
    """Random initial ``(size, n_genes)`` population matrix, optionally seeded.

    Seeds (e.g. the heuristic scheduler's solution, or the all-ideal-start
    vector) are clamped into the Constraint-1 windows and inserted first; the
    remainder of the population is drawn uniformly inside the timing
    boundaries in a single batched draw.
    """
    if size <= 0:
        raise ValueError("population size must be positive")
    seed_rows = [problem.clamp(np.asarray(seed, dtype=np.int64)) for seed in (seeds or [])]
    seed_rows = seed_rows[:size]
    n_random = size - len(seed_rows)
    random_rows = problem.random_population(n_random, rng) if n_random else None
    population = np.empty((size, problem.n_genes), dtype=np.int64)
    for row, seed in enumerate(seed_rows):
        population[row] = seed
    if random_rows is not None:
        population[len(seed_rows):] = random_rows
    return population


def uniform_crossover(
    parent_a: np.ndarray,
    parent_b: np.ndarray,
    rng: np.random.Generator,
    *,
    swap_probability: float = 0.5,
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniform crossover: each gene is swapped between the parents with probability ``swap_probability``."""
    mask = rng.random(parent_a.shape[0]) < swap_probability
    child_a = np.where(mask, parent_b, parent_a).astype(np.int64)
    child_b = np.where(mask, parent_a, parent_b).astype(np.int64)
    return child_a, child_b


def single_point_crossover(
    parent_a: np.ndarray,
    parent_b: np.ndarray,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Classic single-point crossover on the gene vector."""
    n = parent_a.shape[0]
    if n < 2:
        return parent_a.copy(), parent_b.copy()
    point = int(rng.integers(1, n))
    child_a = np.concatenate([parent_a[:point], parent_b[point:]]).astype(np.int64)
    child_b = np.concatenate([parent_b[:point], parent_a[point:]]).astype(np.int64)
    return child_a, child_b


def mutate(
    problem: GAProblem,
    genes: np.ndarray,
    rng: np.random.Generator,
    *,
    gene_mutation_probability: float,
    snap_to_ideal_probability: float = SNAP_TO_IDEAL_PROBABILITY,
) -> np.ndarray:
    """Per-gene mutation: resample inside the timing boundary (reference).

    A fraction of mutations snap the gene to the job's ideal start time
    instead of a uniform resample — a small exploitation bias that speeds up
    convergence towards exactly-accurate placements without changing the
    search space.
    """
    mutated = genes.astype(np.int64, copy=True)
    for index in range(problem.n_genes):
        if rng.random() >= gene_mutation_probability:
            continue
        lo, hi = problem.gene_bounds(index)
        if rng.random() < snap_to_ideal_probability:
            ideal = problem.jobs[index].ideal_start
            mutated[index] = min(max(ideal, lo), hi)
        else:
            mutated[index] = rng.integers(lo, hi + 1)
    return mutated


# -- batch operators ----------------------------------------------------------


def tournament_winners(
    rng: np.random.Generator,
    rank: np.ndarray,
    crowding: np.ndarray,
    n_winners: int,
) -> np.ndarray:
    """Binary tournaments on (rank, crowding): ``n_winners`` population indices.

    Draws one ``(n_winners, 2)`` index matrix; each row is an ``(a, b)``
    tournament decided like the scalar loop — lower rank wins, ties go to the
    larger crowding distance, with ``a`` favoured on exact ties.
    """
    n = rank.shape[0]
    candidates = rng.integers(0, n, size=(n_winners, 2))
    a, b = candidates[:, 0], candidates[:, 1]
    b_wins = (rank[b] < rank[a]) | ((rank[b] == rank[a]) & (crowding[b] > crowding[a]))
    return np.where(b_wins, b, a)


def batch_uniform_crossover(
    rng: np.random.Generator,
    parents: np.ndarray,
    crossover_probability: float,
    *,
    swap_probability: float = 0.5,
) -> np.ndarray:
    """Uniform crossover over consecutive parent pairs of a ``(2k, genes)`` matrix.

    Two fixed-shape draws: a ``(k,)`` coin vector deciding which pairs cross
    over, then a ``(k, genes)`` swap-mask matrix (drawn for every pair so the
    stream shape does not depend on the coins).  Children of non-crossing
    pairs are copies of their parents.
    """
    n_children, n_genes = parents.shape
    pairs = n_children // 2
    coins = rng.random(pairs) < crossover_probability
    masks = rng.random((pairs, n_genes)) < swap_probability
    swap = masks & coins[:, None]
    parent_a = parents[0::2]
    parent_b = parents[1::2]
    children = np.empty_like(parents)
    children[0::2] = np.where(swap, parent_b, parent_a)
    children[1::2] = np.where(swap, parent_a, parent_b)
    return children


def batch_mutate(
    problem: GAProblem,
    children: np.ndarray,
    rng: np.random.Generator,
    *,
    gene_mutation_probability: float,
    snap_to_ideal_probability: float = SNAP_TO_IDEAL_PROBABILITY,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized per-gene mutation of a whole ``(pop, genes)`` matrix.

    Three fixed-shape draws: a mutation-coin matrix, a snap-coin matrix and a
    bounded resample matrix (all ``(pop, genes)``).  Returns ``(mutated,
    changed)`` where ``changed`` marks the genes whose value actually moved —
    the dirty mask driving the incremental re-scoring path.
    """
    compiled = problem.compiled()
    pop, n_genes = children.shape
    if n_genes == 0:
        return children.copy(), np.zeros_like(children, dtype=bool)
    mutating = rng.random((pop, n_genes)) < gene_mutation_probability
    snapping = rng.random((pop, n_genes)) < snap_to_ideal_probability
    resampled = rng.integers(
        compiled.lo, compiled.hi + 1, size=(pop, n_genes), dtype=np.int64
    )
    replacement = np.where(snapping, compiled.ideal_clamped, resampled)
    mutated = np.where(mutating, replacement, children)
    changed = mutating & (mutated != children)
    return mutated, changed
