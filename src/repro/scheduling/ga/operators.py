"""Variation operators for the GA search: initialisation, crossover, mutation.

Genes are integer start times.  Initialisation and mutation sample uniformly
inside each job's timing boundary (per the paper); crossover is uniform, which
suits the job-wise independent structure of the chromosome.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.scheduling.ga.encoding import GAProblem


def initial_population(
    problem: GAProblem,
    size: int,
    rng: np.random.Generator,
    seeds: Optional[Sequence[np.ndarray]] = None,
) -> List[np.ndarray]:
    """Random initial population, optionally seeded with known-good individuals.

    Seeds (e.g. the heuristic scheduler's solution, or the all-ideal-start
    vector) are clamped into the Constraint-1 windows and inserted first;
    the remainder of the population is drawn uniformly inside the timing
    boundaries as the paper specifies.
    """
    if size <= 0:
        raise ValueError("population size must be positive")
    population: List[np.ndarray] = []
    for seed in seeds or []:
        if len(population) >= size:
            break
        population.append(problem.clamp(np.asarray(seed, dtype=np.int64)))
    while len(population) < size:
        population.append(problem.random_genes(rng))
    return population


def uniform_crossover(
    parent_a: np.ndarray,
    parent_b: np.ndarray,
    rng: np.random.Generator,
    *,
    swap_probability: float = 0.5,
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniform crossover: each gene is swapped between the parents with probability ``swap_probability``."""
    mask = rng.random(parent_a.shape[0]) < swap_probability
    child_a = np.where(mask, parent_b, parent_a).astype(np.int64)
    child_b = np.where(mask, parent_a, parent_b).astype(np.int64)
    return child_a, child_b


def single_point_crossover(
    parent_a: np.ndarray,
    parent_b: np.ndarray,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Classic single-point crossover on the gene vector."""
    n = parent_a.shape[0]
    if n < 2:
        return parent_a.copy(), parent_b.copy()
    point = int(rng.integers(1, n))
    child_a = np.concatenate([parent_a[:point], parent_b[point:]]).astype(np.int64)
    child_b = np.concatenate([parent_b[:point], parent_a[point:]]).astype(np.int64)
    return child_a, child_b


def mutate(
    problem: GAProblem,
    genes: np.ndarray,
    rng: np.random.Generator,
    *,
    gene_mutation_probability: float,
    snap_to_ideal_probability: float = 0.2,
) -> np.ndarray:
    """Per-gene mutation: resample inside the timing boundary.

    A fraction of mutations snap the gene to the job's ideal start time
    instead of a uniform resample — a small exploitation bias that speeds up
    convergence towards exactly-accurate placements without changing the
    search space.
    """
    mutated = genes.astype(np.int64, copy=True)
    for index in range(problem.n_genes):
        if rng.random() >= gene_mutation_probability:
            continue
        lo, hi = problem.gene_bounds(index)
        if rng.random() < snap_to_ideal_probability:
            ideal = problem.jobs[index].ideal_start
            mutated[index] = min(max(ideal, lo), hi)
        else:
            mutated[index] = rng.integers(lo, hi + 1)
    return mutated
