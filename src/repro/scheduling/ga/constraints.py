"""The GA formulation's constraints (Section III-B).

* **Constraint 1** — every job executes inside its release window:
  ``T_i*j <= kappa_i^j <= T_i*j + D_i - C_i``.
* **Constraint 2** — the executions of two jobs never overlap:
  ``kappa_i^j + C_i <= kappa_x^q`` or ``kappa_i^j >= kappa_x^q + C_x``.
* **Constraint 2*** — the refinement of Constraint 2 to the bounded set of
  jobs of other tasks that can actually be released during the window of
  ``lambda_i^j`` (Equations (4) and (5) bound the first and last interfering
  job index of each other task).

The scalar predicates operate on one job or one pair; the ``*_batch``
kernels check whole ``(pop, n_jobs)`` start-time matrices at once against a
:class:`~repro.scheduling.ga.encoding.CompiledPartition`, returning per-row
counts that agree exactly with the scalar loop (property tested).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.core.task import IOJob, IOTask
from repro.scheduling.ga.encoding import CompiledPartition


def satisfies_constraint1(job: IOJob, start: int) -> bool:
    """Constraint 1: the job starts in its release window and meets its deadline."""
    return job.release <= start <= job.deadline - job.wcet


def satisfies_constraint2(job_a: IOJob, start_a: int, job_b: IOJob, start_b: int) -> bool:
    """Constraint 2: the two executions do not overlap."""
    return start_a + job_a.wcet <= start_b or start_a >= start_b + job_b.wcet


def first_interfering_job_index(job: IOJob, other: IOTask) -> int:
    """Equation (4): index of the first job of ``other`` that can interfere.

    ``alpha = max(floor(T_i * j / T_x) - 1, 0)``.
    """
    return max(job.release // other.period - 1, 0)


def last_interfering_job_index(job: IOJob, other: IOTask) -> int:
    """Equation (5): index of the last job of ``other`` that can interfere.

    ``beta = ceil((T_i * j + D_i) / T_x)``.
    """
    return -(-job.deadline // other.period)


def interfering_jobs(job: IOJob, others: Iterable[IOTask], horizon: int) -> List[IOJob]:
    """Constraint 2*: the jobs of other tasks that may overlap ``job``'s window.

    Only jobs released before ``horizon`` are returned (the offline schedule
    covers exactly one hyper-period).
    """
    interfering: List[IOJob] = []
    for other in others:
        if other.name == job.task.name:
            continue
        alpha = first_interfering_job_index(job, other)
        beta = last_interfering_job_index(job, other)
        for index in range(alpha, beta + 1):
            release = other.offset + other.period * index
            if release >= horizon:
                break
            interfering.append(other.job(index))
    return interfering


def count_conflicts(jobs: Sequence[IOJob], starts: Sequence[int]) -> int:
    """Number of overlapping job pairs in a candidate assignment (diagnostic)."""
    order = sorted(range(len(jobs)), key=lambda i: starts[i])
    conflicts = 0
    for a, b in zip(order, order[1:]):
        if starts[a] + jobs[a].wcet > starts[b]:
            conflicts += 1
    return conflicts


def violations(jobs: Sequence[IOJob], starts: Sequence[int]) -> Dict[str, int]:
    """Summary of constraint violations of a candidate assignment (diagnostic)."""
    c1 = sum(
        0 if satisfies_constraint1(job, start) else 1
        for job, start in zip(jobs, starts)
    )
    return {"constraint1": c1, "constraint2": count_conflicts(jobs, starts)}


# -- batched kernels ----------------------------------------------------------


def constraint1_matrix(
    compiled: CompiledPartition, starts_matrix: np.ndarray
) -> np.ndarray:
    """Constraint-1 satisfaction of every (row, job) start in one comparison.

    Returns a ``(pop, n_jobs)`` bool matrix: ``True`` where the start lies in
    the job's release window ``[release, deadline - wcet]``.
    """
    starts = np.asarray(starts_matrix, dtype=np.int64)
    return (starts >= compiled.release) & (starts <= compiled.latest)


def count_conflicts_batch(
    compiled: CompiledPartition, starts_matrix: np.ndarray
) -> np.ndarray:
    """Per-row overlapping-pair counts of a start-time matrix (Constraint 2).

    Matches :func:`count_conflicts` row by row: jobs are ordered by start
    (stable, ties by job index) and adjacent overlaps counted.
    """
    starts = np.asarray(starts_matrix, dtype=np.int64)
    n_rows, n = starts.shape
    if n < 2:
        return np.zeros(n_rows, dtype=np.int64)
    order = np.argsort(starts, axis=1, kind="stable")
    ordered_starts = np.take_along_axis(starts, order, axis=1)
    ordered_wcet = compiled.wcet[order]
    overlaps = ordered_starts[:, :-1] + ordered_wcet[:, :-1] > ordered_starts[:, 1:]
    return overlaps.sum(axis=1).astype(np.int64)


def violations_batch(
    compiled: CompiledPartition, starts_matrix: np.ndarray
) -> Dict[str, np.ndarray]:
    """Per-row violation counts of a start-time matrix (batched :func:`violations`)."""
    c1 = (~constraint1_matrix(compiled, starts_matrix)).sum(axis=1).astype(np.int64)
    return {
        "constraint1": c1,
        "constraint2": count_conflicts_batch(compiled, starts_matrix),
    }
