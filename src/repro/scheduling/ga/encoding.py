"""Chromosome encoding of the GA scheduling problem.

One individual encodes the start time ``kappa_i^j`` of every job of the
partition as a vector of integers, in a fixed job order.  Genes are
initialised and mutated inside the timing boundary
``[ideal - theta, ideal + theta]`` (clamped to the release window), as the
paper specifies; the reconfiguration function may push the realised start
times outside the boundary to resolve conflicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.task import IOJob


@dataclass
class GAProblem:
    """The per-partition scheduling problem the GA optimises."""

    jobs: List[IOJob]
    horizon: int

    def __post_init__(self) -> None:
        self.jobs = sorted(self.jobs, key=lambda j: (j.release, j.key))
        devices = {job.device for job in self.jobs}
        if len(devices) > 1:
            raise ValueError(
                f"a GAProblem covers a single device partition, got {sorted(devices)}"
            )

    @property
    def n_genes(self) -> int:
        return len(self.jobs)

    def gene_bounds(self, index: int) -> Tuple[int, int]:
        """Initialisation/mutation bounds: the timing boundary, clamped to the window."""
        job = self.jobs[index]
        lo, hi = job.window
        if hi < lo:
            # Degenerate boundary (theta smaller than needed); fall back to the
            # full release window so the gene stays well-defined.
            return self.full_bounds(index)
        return lo, hi

    def full_bounds(self, index: int) -> Tuple[int, int]:
        """Constraint-1 bounds: the full release window ``[release, deadline - C]``."""
        job = self.jobs[index]
        return job.release, job.deadline - job.wcet

    def ideal_genes(self) -> np.ndarray:
        """Gene vector with every job at its ideal start time."""
        return np.array([job.ideal_start for job in self.jobs], dtype=np.int64)

    def genes_from_starts(self, starts: Sequence[int]) -> np.ndarray:
        """Gene vector from an explicit list of start times (job order preserved)."""
        if len(starts) != self.n_genes:
            raise ValueError(
                f"expected {self.n_genes} start times, got {len(starts)}"
            )
        return np.array([int(s) for s in starts], dtype=np.int64)

    def genes_from_schedule_mapping(self, starts_by_key) -> np.ndarray:
        """Gene vector from a ``{job key: start}`` mapping (e.g. another scheduler's output)."""
        return np.array(
            [int(starts_by_key[job.key]) for job in self.jobs], dtype=np.int64
        )

    def random_genes(self, rng: np.random.Generator) -> np.ndarray:
        """Random gene vector drawn uniformly inside the timing boundaries."""
        genes = np.empty(self.n_genes, dtype=np.int64)
        for index in range(self.n_genes):
            lo, hi = self.gene_bounds(index)
            genes[index] = rng.integers(lo, hi + 1)
        return genes

    def clamp(self, genes: np.ndarray) -> np.ndarray:
        """Clamp a gene vector into the Constraint-1 windows (in place safe copy)."""
        clamped = genes.astype(np.int64, copy=True)
        for index in range(self.n_genes):
            lo, hi = self.full_bounds(index)
            clamped[index] = min(max(int(clamped[index]), lo), hi)
        return clamped
