"""Chromosome encoding of the GA scheduling problem.

One individual encodes the start time ``kappa_i^j`` of every job of the
partition as a vector of integers, in a fixed job order.  Genes are
initialised and mutated inside the timing boundary
``[ideal - theta, ideal + theta]`` (clamped to the release window), as the
paper specifies; the reconfiguration function may push the realised start
times outside the boundary to resolve conflicts.

Populations are array-encoded: a population is a ``(pop, n_genes)`` int64
matrix whose rows are individuals.  :class:`CompiledPartition` precomputes
every per-job quantity the vectorized operators and the batched fitness
evaluation need (release windows, timing boundaries, quality-curve
parameters, sort tie-breaks) as flat numpy arrays in problem job order, so
the whole GA inner loop runs without touching :class:`IOJob` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.task import IOJob


@dataclass(frozen=True)
class CompiledPartition:
    """Per-job arrays of one GA partition, in problem job order.

    All integer arrays are int64 (microseconds); quality parameters are
    float64.  ``order_tiebreak`` ranks the jobs by ``(-priority, key)`` so the
    repair function's execution-order sort ``(gene, -priority, key)`` reduces
    to one integer composite key ``gene * n_jobs + order_tiebreak``.
    """

    n_jobs: int
    release: np.ndarray
    wcet: np.ndarray
    deadline: np.ndarray
    latest: np.ndarray  # deadline - wcet (Constraint-1 upper bound)
    ideal: np.ndarray
    theta: np.ndarray
    v_max: np.ndarray
    v_min: np.ndarray
    lo: np.ndarray  # initialisation/mutation lower bounds (timing boundary)
    hi: np.ndarray  # initialisation/mutation upper bounds
    ideal_clamped: np.ndarray  # ideal start clamped into [lo, hi] (mutation snap target)
    order_tiebreak: np.ndarray

    @classmethod
    def from_jobs(cls, jobs: Sequence[IOJob], bounds: Sequence[Tuple[int, int]]) -> "CompiledPartition":
        n = len(jobs)
        release = np.array([j.release for j in jobs], dtype=np.int64)
        wcet = np.array([j.wcet for j in jobs], dtype=np.int64)
        deadline = np.array([j.deadline for j in jobs], dtype=np.int64)
        ideal = np.array([j.ideal_start for j in jobs], dtype=np.int64)
        theta = np.array([j.task.theta for j in jobs], dtype=np.int64)
        v_max = np.array([j.task.v_max for j in jobs], dtype=np.float64)
        v_min = np.array([j.task.v_min for j in jobs], dtype=np.float64)
        lo = np.array([b[0] for b in bounds], dtype=np.int64)
        hi = np.array([b[1] for b in bounds], dtype=np.int64)
        # Rank of (-priority, key): position in the repair's tie-break order.
        by_tiebreak = sorted(range(n), key=lambda i: (-jobs[i].priority, jobs[i].key))
        order_tiebreak = np.empty(n, dtype=np.int64)
        order_tiebreak[by_tiebreak] = np.arange(n, dtype=np.int64)
        return cls(
            n_jobs=n,
            release=release,
            wcet=wcet,
            deadline=deadline,
            latest=deadline - wcet,
            ideal=ideal,
            theta=theta,
            v_max=v_max,
            v_min=v_min,
            lo=lo,
            hi=hi,
            ideal_clamped=np.clip(ideal, lo, hi),
            order_tiebreak=order_tiebreak,
        )


@dataclass
class GAProblem:
    """The per-partition scheduling problem the GA optimises."""

    jobs: List[IOJob]
    horizon: int

    def __post_init__(self) -> None:
        self.jobs = sorted(self.jobs, key=lambda j: (j.release, j.key))
        devices = {job.device for job in self.jobs}
        if len(devices) > 1:
            raise ValueError(
                f"a GAProblem covers a single device partition, got {sorted(devices)}"
            )
        self._compiled: Optional[CompiledPartition] = None

    @property
    def n_genes(self) -> int:
        return len(self.jobs)

    def gene_bounds(self, index: int) -> Tuple[int, int]:
        """Initialisation/mutation bounds: the timing boundary, clamped to the window."""
        job = self.jobs[index]
        lo, hi = job.window
        if hi < lo:
            # Degenerate boundary (theta smaller than needed); fall back to the
            # full release window so the gene stays well-defined.
            return self.full_bounds(index)
        return lo, hi

    def full_bounds(self, index: int) -> Tuple[int, int]:
        """Constraint-1 bounds: the full release window ``[release, deadline - C]``."""
        job = self.jobs[index]
        return job.release, job.deadline - job.wcet

    def ideal_genes(self) -> np.ndarray:
        """Gene vector with every job at its ideal start time."""
        return np.array([job.ideal_start for job in self.jobs], dtype=np.int64)

    def genes_from_starts(self, starts: Sequence[int]) -> np.ndarray:
        """Gene vector from an explicit list of start times (job order preserved)."""
        if len(starts) != self.n_genes:
            raise ValueError(
                f"expected {self.n_genes} start times, got {len(starts)}"
            )
        return np.array([int(s) for s in starts], dtype=np.int64)

    def genes_from_schedule_mapping(self, starts_by_key) -> np.ndarray:
        """Gene vector from a ``{job key: start}`` mapping (e.g. another scheduler's output)."""
        return np.array(
            [int(starts_by_key[job.key]) for job in self.jobs], dtype=np.int64
        )

    def random_genes(self, rng: np.random.Generator) -> np.ndarray:
        """Random gene vector drawn uniformly inside the timing boundaries."""
        return self.random_population(1, rng)[0]

    def random_population(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Random ``(size, n_genes)`` population matrix, one batched draw.

        The bounded-integer values for the whole matrix are drawn in a single
        ``Generator.integers`` call (row-major), so the result is a pure
        function of the generator state regardless of population size.
        """
        compiled = self.compiled()
        if self.n_genes == 0:
            return np.empty((size, 0), dtype=np.int64)
        return rng.integers(
            compiled.lo, compiled.hi + 1, size=(size, self.n_genes), dtype=np.int64
        )

    def clamp(self, genes: np.ndarray) -> np.ndarray:
        """Clamp a gene vector into the Constraint-1 windows (in place safe copy)."""
        compiled = self.compiled()
        clamped = np.asarray(genes).astype(np.int64, copy=True)
        np.clip(clamped, compiled.release, compiled.latest, out=clamped)
        return clamped

    def compiled(self) -> CompiledPartition:
        """The partition's per-job arrays (computed once, then cached)."""
        if self._compiled is None:
            bounds = [self.gene_bounds(index) for index in range(self.n_genes)]
            self._compiled = CompiledPartition.from_jobs(self.jobs, bounds)
        return self._compiled
