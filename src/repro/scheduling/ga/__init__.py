"""Multi-objective GA-based I/O scheduling (Section III-B of the paper).

The search optimises the job start times ``kappa_i^j`` of one per-device
partition for two objectives simultaneously — ``Psi`` (fraction of exactly
timing-accurate jobs) and ``Upsilon`` (normalised total quality) — subject to
Constraint 1 (release/deadline windows) and Constraint 2/2* (non-overlapping
executions), using an NSGA-II style evolutionary algorithm with a
reconfiguration (repair) function.
"""

from repro.scheduling.ga.constraints import (
    constraint1_matrix,
    count_conflicts_batch,
    first_interfering_job_index,
    interfering_jobs,
    last_interfering_job_index,
    satisfies_constraint1,
    satisfies_constraint2,
    violations_batch,
)
from repro.scheduling.ga.encoding import CompiledPartition, GAProblem
from repro.scheduling.ga.nsga2 import (
    NSGA2,
    crowding_distance,
    domination_matrix,
    fast_non_dominated_sort,
)
from repro.scheduling.ga.reconfiguration import (
    evaluate_batch,
    reconfigure,
    reconfigure_batch,
)
from repro.scheduling.ga.scheduler import GAConfig, GAScheduler

__all__ = [
    "CompiledPartition",
    "GAProblem",
    "GAConfig",
    "GAScheduler",
    "NSGA2",
    "reconfigure",
    "reconfigure_batch",
    "evaluate_batch",
    "fast_non_dominated_sort",
    "crowding_distance",
    "domination_matrix",
    "satisfies_constraint1",
    "satisfies_constraint2",
    "constraint1_matrix",
    "count_conflicts_batch",
    "violations_batch",
    "interfering_jobs",
    "first_interfering_job_index",
    "last_interfering_job_index",
]
