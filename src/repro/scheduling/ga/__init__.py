"""Multi-objective GA-based I/O scheduling (Section III-B of the paper).

The search optimises the job start times ``kappa_i^j`` of one per-device
partition for two objectives simultaneously — ``Psi`` (fraction of exactly
timing-accurate jobs) and ``Upsilon`` (normalised total quality) — subject to
Constraint 1 (release/deadline windows) and Constraint 2/2* (non-overlapping
executions), using an NSGA-II style evolutionary algorithm with a
reconfiguration (repair) function.
"""

from repro.scheduling.ga.constraints import (
    first_interfering_job_index,
    interfering_jobs,
    last_interfering_job_index,
    satisfies_constraint1,
    satisfies_constraint2,
)
from repro.scheduling.ga.encoding import GAProblem
from repro.scheduling.ga.nsga2 import NSGA2, crowding_distance, fast_non_dominated_sort
from repro.scheduling.ga.reconfiguration import reconfigure
from repro.scheduling.ga.scheduler import GAConfig, GAScheduler

__all__ = [
    "GAProblem",
    "GAConfig",
    "GAScheduler",
    "NSGA2",
    "reconfigure",
    "fast_non_dominated_sort",
    "crowding_distance",
    "satisfies_constraint1",
    "satisfies_constraint2",
    "interfering_jobs",
    "first_interfering_job_index",
    "last_interfering_job_index",
]
