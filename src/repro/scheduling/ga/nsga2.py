"""A compact NSGA-II implementation for the two-objective I/O scheduling search.

The paper formulates the search as a two-objective maximisation of
``(Psi, Upsilon)`` over the job start times.  This module provides the generic
evolutionary machinery: fast non-dominated sorting, crowding distance,
binary-tournament selection on (rank, crowding), elitist environmental
selection, and an external archive of all feasible non-dominated individuals
encountered during the run (the paper returns "all the non-dominated solutions
being found during the search").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.scheduling.ga.encoding import GAProblem
from repro.scheduling.ga.operators import initial_population, mutate, uniform_crossover

Objectives = Tuple[float, ...]


def dominates(a: Objectives, b: Objectives) -> bool:
    """Pareto dominance for maximisation: ``a`` is no worse everywhere and better somewhere."""
    at_least_as_good = all(x >= y for x, y in zip(a, b))
    strictly_better = any(x > y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


def fast_non_dominated_sort(objectives: Sequence[Objectives]) -> List[List[int]]:
    """Deb's fast non-dominated sort; returns fronts as lists of indices (front 0 first)."""
    n = len(objectives)
    domination_count = [0] * n
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    fronts: List[List[int]] = [[]]

    for p in range(n):
        for q in range(n):
            if p == q:
                continue
            if dominates(objectives[p], objectives[q]):
                dominated_by[p].append(q)
            elif dominates(objectives[q], objectives[p]):
                domination_count[p] += 1
        if domination_count[p] == 0:
            fronts[0].append(p)

    current = 0
    while fronts[current]:
        next_front: List[int] = []
        for p in fronts[current]:
            for q in dominated_by[p]:
                domination_count[q] -= 1
                if domination_count[q] == 0:
                    next_front.append(q)
        current += 1
        fronts.append(next_front)
    fronts.pop()  # the last front is always empty
    return fronts


def crowding_distance(objectives: Sequence[Objectives], front: Sequence[int]) -> Dict[int, float]:
    """Crowding distance of the individuals in one front."""
    distances: Dict[int, float] = {index: 0.0 for index in front}
    if not front:
        return distances
    n_objectives = len(objectives[front[0]])
    for m in range(n_objectives):
        ordered = sorted(front, key=lambda index: objectives[index][m])
        lo = objectives[ordered[0]][m]
        hi = objectives[ordered[-1]][m]
        distances[ordered[0]] = float("inf")
        distances[ordered[-1]] = float("inf")
        if hi == lo:
            continue
        for position in range(1, len(ordered) - 1):
            previous = objectives[ordered[position - 1]][m]
            following = objectives[ordered[position + 1]][m]
            distances[ordered[position]] += (following - previous) / (hi - lo)
    return distances


@dataclass
class ArchiveEntry:
    """A feasible non-dominated individual retained in the external archive."""

    genes: np.ndarray
    objectives: Objectives
    payload: object = None


class ParetoArchive:
    """External archive of feasible non-dominated solutions found so far."""

    def __init__(self) -> None:
        self._entries: List[ArchiveEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def entries(self) -> List[ArchiveEntry]:
        return list(self._entries)

    def add(self, genes: np.ndarray, objectives: Objectives, payload: object = None) -> bool:
        """Insert a candidate; returns True if it enters the archive."""
        for existing in self._entries:
            if dominates(existing.objectives, objectives) or existing.objectives == objectives:
                return False
        self._entries = [
            entry for entry in self._entries if not dominates(objectives, entry.objectives)
        ]
        self._entries.append(ArchiveEntry(genes=genes.copy(), objectives=objectives, payload=payload))
        return True

    def best_by(self, objective_index: int) -> Optional[ArchiveEntry]:
        """Archive entry with the best value of one objective (ties: best other objectives)."""
        if not self._entries:
            return None
        return max(
            self._entries,
            key=lambda entry: (
                entry.objectives[objective_index],
                sum(entry.objectives),
            ),
        )


@dataclass
class NSGA2Result:
    """Outcome of one NSGA-II run."""

    archive: ParetoArchive
    generations_run: int
    evaluations: int


class NSGA2:
    """Elitist non-dominated-sorting GA over a :class:`GAProblem`."""

    def __init__(
        self,
        problem: GAProblem,
        evaluate: Callable[[np.ndarray], Tuple[Objectives, object]],
        *,
        population_size: int = 100,
        generations: int = 100,
        crossover_probability: float = 0.9,
        gene_mutation_probability: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
        seeds: Optional[Sequence[np.ndarray]] = None,
    ):
        if population_size < 4:
            raise ValueError("population size must be at least 4")
        self.problem = problem
        self.evaluate = evaluate
        self.population_size = population_size
        self.generations = generations
        self.crossover_probability = crossover_probability
        if gene_mutation_probability is None:
            gene_mutation_probability = 1.0 / max(1, problem.n_genes)
        self.gene_mutation_probability = gene_mutation_probability
        self.rng = rng if rng is not None else np.random.default_rng()
        self.seeds = list(seeds or [])

    # -- main loop ---------------------------------------------------------

    def run(self) -> NSGA2Result:
        archive = ParetoArchive()
        evaluations = 0

        population = initial_population(
            self.problem, self.population_size, self.rng, seeds=self.seeds
        )
        objectives, payloads = self._evaluate_all(population, archive)
        evaluations += len(population)

        generations_run = 0
        for _ in range(self.generations):
            generations_run += 1
            offspring = self._make_offspring(population, objectives)
            offspring_objectives, offspring_payloads = self._evaluate_all(offspring, archive)
            evaluations += len(offspring)

            population, objectives = self._environmental_selection(
                population + offspring, objectives + offspring_objectives
            )

        return NSGA2Result(
            archive=archive, generations_run=generations_run, evaluations=evaluations
        )

    # -- internals -----------------------------------------------------------

    def _evaluate_all(
        self, population: Sequence[np.ndarray], archive: ParetoArchive
    ) -> Tuple[List[Objectives], List[object]]:
        objectives: List[Objectives] = []
        payloads: List[object] = []
        for genes in population:
            objs, payload = self.evaluate(genes)
            objectives.append(objs)
            payloads.append(payload)
            if payload is not None and all(value >= 0 for value in objs):
                archive.add(genes, objs, payload)
        return objectives, payloads

    def _make_offspring(
        self, population: Sequence[np.ndarray], objectives: Sequence[Objectives]
    ) -> List[np.ndarray]:
        fronts = fast_non_dominated_sort(objectives)
        rank: Dict[int, int] = {}
        crowding: Dict[int, float] = {}
        for front_index, front in enumerate(fronts):
            distances = crowding_distance(objectives, front)
            for index in front:
                rank[index] = front_index
                crowding[index] = distances[index]

        def tournament() -> int:
            a = int(self.rng.integers(0, len(population)))
            b = int(self.rng.integers(0, len(population)))
            if rank[a] != rank[b]:
                return a if rank[a] < rank[b] else b
            return a if crowding[a] >= crowding[b] else b

        offspring: List[np.ndarray] = []
        while len(offspring) < self.population_size:
            parent_a = population[tournament()]
            parent_b = population[tournament()]
            if self.rng.random() < self.crossover_probability:
                child_a, child_b = uniform_crossover(parent_a, parent_b, self.rng)
            else:
                child_a, child_b = parent_a.copy(), parent_b.copy()
            child_a = mutate(
                self.problem, child_a, self.rng,
                gene_mutation_probability=self.gene_mutation_probability,
            )
            child_b = mutate(
                self.problem, child_b, self.rng,
                gene_mutation_probability=self.gene_mutation_probability,
            )
            offspring.append(child_a)
            if len(offspring) < self.population_size:
                offspring.append(child_b)
        return offspring

    def _environmental_selection(
        self,
        combined: Sequence[np.ndarray],
        combined_objectives: Sequence[Objectives],
    ) -> Tuple[List[np.ndarray], List[Objectives]]:
        fronts = fast_non_dominated_sort(combined_objectives)
        selected: List[int] = []
        for front in fronts:
            if len(selected) + len(front) <= self.population_size:
                selected.extend(front)
                continue
            distances = crowding_distance(combined_objectives, front)
            remaining = sorted(front, key=lambda index: -distances[index])
            selected.extend(remaining[: self.population_size - len(selected)])
            break
        population = [combined[index] for index in selected]
        objectives = [combined_objectives[index] for index in selected]
        return population, objectives
