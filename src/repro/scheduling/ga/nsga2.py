"""A compact NSGA-II implementation for the two-objective I/O scheduling search.

The paper formulates the search as a two-objective maximisation of
``(Psi, Upsilon)`` over the job start times.  This module provides the generic
evolutionary machinery: fast non-dominated sorting, crowding distance,
binary-tournament selection on (rank, crowding), elitist environmental
selection, and an external archive of all feasible non-dominated individuals
encountered during the run (the paper returns "all the non-dominated solutions
being found during the search").

The inner loops are vectorized over a ``(pop, n_genes)`` population matrix:

* :func:`domination_matrix` builds the full pairwise Pareto-domination matrix
  by broadcasting, and :func:`fast_non_dominated_sort` peels fronts off its
  column sums — producing fronts in exactly the order the scalar algorithm
  (kept as :func:`_reference_fast_non_dominated_sort`) emits them;
* :func:`crowding_distance` replaces the per-front Python sort with stable
  argsorts and a sliced gap sum, bit-identical to
  :func:`_reference_crowding_distance`;
* fitness is evaluated per *matrix* through a batch evaluator, fronted by a
  row-level cache keyed on the gene bytes, so offspring whose genes did not
  change (crossover coin came up tails and no gene mutated — the common case
  under the ``1/n`` mutation rate) are never re-scored;
* :class:`ParetoArchive` remembers every objective vector it has rejected.
  Dominance is transitive and entries are only ever displaced by dominators,
  so a rejected vector stays rejected forever — re-encounters short-circuit
  without re-comparing against the archive.

Determinism contract: each generation consumes a documented, fixed-shape
sequence of draws from the single ``numpy.random.Generator`` (see
:meth:`NSGA2._make_offspring`), so the whole run is a pure function of the
seed, the problem, and the search parameters — independent of worker count or
host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.scheduling.ga.encoding import GAProblem
from repro.scheduling.ga.operators import (
    batch_mutate,
    batch_uniform_crossover,
    initial_population_matrix,
    tournament_winners,
)

Objectives = Tuple[float, ...]

#: Row-cache size cap; the cache resets (rather than evicts) beyond this, which
#: keeps paper-scale runs (300 x 500 = 150k offspring) bounded in memory.
_EVAL_CACHE_LIMIT = 200_000


def dominates(a: Objectives, b: Objectives) -> bool:
    """Pareto dominance for maximisation: ``a`` is no worse everywhere and better somewhere."""
    at_least_as_good = all(x >= y for x, y in zip(a, b))
    strictly_better = any(x > y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


def domination_matrix(objectives: np.ndarray) -> np.ndarray:
    """Pairwise domination matrix by broadcasting: ``D[p, q]`` iff ``p`` dominates ``q``.

    Maximisation semantics, identical to :func:`dominates` applied pairwise.
    """
    obj = np.asarray(objectives, dtype=np.float64)
    a = obj[:, None, :]
    b = obj[None, :, :]
    return (a >= b).all(axis=2) & (a > b).any(axis=2)


def fast_non_dominated_sort(objectives: Sequence[Objectives]) -> List[List[int]]:
    """Deb's fast non-dominated sort; returns fronts as lists of indices (front 0 first).

    Vectorized: domination counts come from the broadcast domination matrix
    and each front is peeled off in one step.  The indices within each front
    are ordered exactly as the scalar reference emits them — front 0
    ascending, later fronts by (position of the last dominator in the previous
    front, index) — so downstream tie-breaks are unchanged.
    """
    obj = np.asarray(objectives, dtype=np.float64)
    n = obj.shape[0]
    if n == 0:
        return []
    dom = domination_matrix(obj)
    count = dom.sum(axis=0).astype(np.int64)

    fronts: List[List[int]] = []
    current = np.flatnonzero(count == 0)
    while current.size:
        fronts.append([int(index) for index in current])
        freed_by_front = dom[current]
        freed_counts = freed_by_front.sum(axis=0)
        count -= freed_counts
        newly_free = np.flatnonzero((count == 0) & (freed_counts > 0))
        if newly_free.size == 0:
            break
        # The scalar loop appends q the moment its *last* dominator in the
        # current front is processed; reproduce that order.
        positions = np.arange(current.size, dtype=np.int64)[:, None]
        last_dominator = np.where(freed_by_front[:, newly_free], positions, -1).max(axis=0)
        current = newly_free[np.lexsort((newly_free, last_dominator))]
    return fronts


def crowding_distance(
    objectives: Sequence[Objectives], front: Sequence[int]
) -> Dict[int, float]:
    """Crowding distance of the individuals in one front.

    Vectorized with stable argsorts; bit-identical to the scalar reference
    (same float operations in the same order, per objective).
    """
    front = list(front)
    if not front:
        return {}
    obj = np.asarray(objectives, dtype=np.float64)[front]
    size, n_objectives = obj.shape
    distance = np.zeros(size, dtype=np.float64)
    for m in range(n_objectives):
        values = obj[:, m]
        order = np.argsort(values, kind="stable")
        lo = values[order[0]]
        hi = values[order[-1]]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if hi == lo:
            continue
        if size > 2:
            ordered_values = values[order]
            distance[order[1:-1]] += (ordered_values[2:] - ordered_values[:-2]) / (hi - lo)
    return {int(index): float(distance[i]) for i, index in enumerate(front)}


# -- scalar reference implementations ----------------------------------------
#
# The original per-element versions, retained verbatim as oracles: the
# property tests assert the vectorized kernels above return *exactly* equal
# results on arbitrary objective sets (duplicates and degenerate fronts
# included).


def _reference_fast_non_dominated_sort(
    objectives: Sequence[Objectives],
) -> List[List[int]]:
    """Scalar fast non-dominated sort (reference oracle)."""
    n = len(objectives)
    domination_count = [0] * n
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    fronts: List[List[int]] = [[]]

    for p in range(n):
        for q in range(n):
            if p == q:
                continue
            if dominates(objectives[p], objectives[q]):
                dominated_by[p].append(q)
            elif dominates(objectives[q], objectives[p]):
                domination_count[p] += 1
        if domination_count[p] == 0:
            fronts[0].append(p)

    current = 0
    while fronts[current]:
        next_front: List[int] = []
        for p in fronts[current]:
            for q in dominated_by[p]:
                domination_count[q] -= 1
                if domination_count[q] == 0:
                    next_front.append(q)
        current += 1
        fronts.append(next_front)
    fronts.pop()  # the last front is always empty
    return fronts


def _reference_crowding_distance(
    objectives: Sequence[Objectives], front: Sequence[int]
) -> Dict[int, float]:
    """Scalar crowding distance (reference oracle)."""
    distances: Dict[int, float] = {index: 0.0 for index in front}
    if not front:
        return distances
    n_objectives = len(objectives[front[0]])
    for m in range(n_objectives):
        ordered = sorted(front, key=lambda index: objectives[index][m])
        lo = objectives[ordered[0]][m]
        hi = objectives[ordered[-1]][m]
        distances[ordered[0]] = float("inf")
        distances[ordered[-1]] = float("inf")
        if hi == lo:
            continue
        for position in range(1, len(ordered) - 1):
            previous = objectives[ordered[position - 1]][m]
            following = objectives[ordered[position + 1]][m]
            distances[ordered[position]] += (following - previous) / (hi - lo)
    return distances


@dataclass
class ArchiveEntry:
    """A feasible non-dominated individual retained in the external archive."""

    genes: np.ndarray
    objectives: Objectives
    payload: object = None


class ParetoArchive:
    """External archive of feasible non-dominated solutions found so far.

    Candidate objective vectors are screened against the archive's objective
    matrix in one vectorized comparison.  Every rejected vector is remembered:
    rejection means some entry dominates-or-equals it, entries are only ever
    displaced by their own dominators, and dominance is transitive — so a
    rejected vector can never enter later, and re-encounters (frequent once
    the search converges) skip the comparison entirely.
    """

    def __init__(self) -> None:
        self._entries: List[ArchiveEntry] = []
        self._matrix: Optional[np.ndarray] = None
        self._rejected: Set[Objectives] = set()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def entries(self) -> List[ArchiveEntry]:
        return list(self._entries)

    def add(self, genes: np.ndarray, objectives: Objectives, payload: object = None) -> bool:
        """Insert a candidate; returns True if it enters the archive."""
        objectives = tuple(objectives)
        if objectives in self._rejected:
            return False
        candidate = np.asarray(objectives, dtype=np.float64)
        if self._matrix is not None and self._matrix.size:
            # Some entry >= candidate everywhere <=> it dominates or equals it.
            if (self._matrix >= candidate).all(axis=1).any():
                self._rejected.add(objectives)
                return False
            displaced = (candidate >= self._matrix).all(axis=1) & (
                candidate > self._matrix
            ).any(axis=1)
            if displaced.any():
                kept = ~displaced
                self._entries = [
                    entry for entry, keep in zip(self._entries, kept) if keep
                ]
                self._matrix = self._matrix[kept]
            self._matrix = np.vstack([self._matrix, candidate[None, :]])
        else:
            self._matrix = candidate[None, :].copy()
        self._entries.append(
            ArchiveEntry(genes=genes.copy(), objectives=objectives, payload=payload)
        )
        return True

    def best_by(self, objective_index: int) -> Optional[ArchiveEntry]:
        """Archive entry with the best value of one objective (ties: best other objectives)."""
        if not self._entries:
            return None
        return max(
            self._entries,
            key=lambda entry: (
                entry.objectives[objective_index],
                sum(entry.objectives),
            ),
        )


@dataclass
class NSGA2Result:
    """Outcome of one NSGA-II run."""

    archive: ParetoArchive
    generations_run: int
    evaluations: int


#: Batch evaluator signature: ``(pop, n_genes) matrix -> ((pop, m) objective
#: matrix, payload list)``.  Payload ``None`` marks an infeasible row.
BatchEvaluator = Callable[[np.ndarray], Tuple[np.ndarray, List[object]]]


class NSGA2:
    """Elitist non-dominated-sorting GA over a :class:`GAProblem`.

    The population lives as a ``(pop, n_genes)`` int64 matrix; one generation
    consumes exactly six fixed-shape draws from the run's single
    ``numpy.random.Generator`` (see :meth:`_make_offspring`), which pins the
    RNG stream to the seed regardless of how fitness is computed or cached.

    ``evaluate`` is the per-individual callable
    (``genes -> (objectives, payload)``); pass ``evaluate_batch`` instead to
    score whole matrices at once (the GA wraps a scalar ``evaluate`` into a
    row loop when only that is given).
    """

    def __init__(
        self,
        problem: GAProblem,
        evaluate: Optional[Callable[[np.ndarray], Tuple[Objectives, object]]] = None,
        *,
        evaluate_batch: Optional[BatchEvaluator] = None,
        population_size: int = 100,
        generations: int = 100,
        crossover_probability: float = 0.9,
        gene_mutation_probability: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
        seeds: Optional[Sequence[np.ndarray]] = None,
    ):
        if population_size < 4:
            raise ValueError("population size must be at least 4")
        if evaluate is None and evaluate_batch is None:
            raise ValueError("provide evaluate or evaluate_batch")
        self.problem = problem
        self.evaluate = evaluate
        self.evaluate_batch = (
            evaluate_batch if evaluate_batch is not None else self._rowwise(evaluate)
        )
        self.population_size = population_size
        self.generations = generations
        self.crossover_probability = crossover_probability
        if gene_mutation_probability is None:
            gene_mutation_probability = 1.0 / max(1, problem.n_genes)
        self.gene_mutation_probability = gene_mutation_probability
        self.rng = rng if rng is not None else np.random.default_rng()
        self.seeds = list(seeds or [])
        self._cache: Dict[bytes, Tuple[np.ndarray, object]] = {}

    @staticmethod
    def _rowwise(
        evaluate: Callable[[np.ndarray], Tuple[Objectives, object]],
    ) -> BatchEvaluator:
        def batch(matrix: np.ndarray) -> Tuple[np.ndarray, List[object]]:
            objectives: List[Objectives] = []
            payloads: List[object] = []
            for row in matrix:
                objs, payload = evaluate(row)
                objectives.append(tuple(objs))
                payloads.append(payload)
            return np.asarray(objectives, dtype=np.float64), payloads

        return batch

    # -- main loop ---------------------------------------------------------

    def run(self) -> NSGA2Result:
        archive = ParetoArchive()
        evaluations = 0

        population = initial_population_matrix(
            self.problem, self.population_size, self.rng, seeds=self.seeds
        )
        objectives, _ = self._evaluate_matrix(population, archive)
        evaluations += population.shape[0]

        generations_run = 0
        for _ in range(self.generations):
            generations_run += 1
            offspring = self._make_offspring(population, objectives)
            offspring_objectives, _ = self._evaluate_matrix(offspring, archive)
            evaluations += offspring.shape[0]

            population, objectives = self._environmental_selection(
                np.vstack([population, offspring]),
                np.vstack([objectives, offspring_objectives]),
            )

        return NSGA2Result(
            archive=archive, generations_run=generations_run, evaluations=evaluations
        )

    # -- internals -----------------------------------------------------------

    def _evaluate_matrix(
        self, population: np.ndarray, archive: ParetoArchive
    ) -> Tuple[np.ndarray, List[object]]:
        """Score a population matrix through the cache; archive fresh feasible rows.

        Rows already scored this run (unchanged offspring, re-discovered
        individuals) come from the cache; only genuinely new rows reach the
        batch evaluator and the archive — a duplicate's objectives are exactly
        equal to its first occurrence's, so the archive would reject it
        anyway.
        """
        if len(self._cache) > _EVAL_CACHE_LIMIT:
            self._cache.clear()
        n_rows = population.shape[0]
        keys = [population[i].tobytes() for i in range(n_rows)]
        fresh: Dict[bytes, int] = {}
        for i, key in enumerate(keys):
            if key not in self._cache and key not in fresh:
                fresh[key] = i
        if fresh:
            rows = np.fromiter(fresh.values(), dtype=np.int64, count=len(fresh))
            fresh_objectives, fresh_payloads = self.evaluate_batch(population[rows])
            fresh_objectives = np.asarray(fresh_objectives, dtype=np.float64)
            for j, i in enumerate(rows):
                objective_row = fresh_objectives[j]
                payload = fresh_payloads[j]
                self._cache[keys[i]] = (objective_row, payload)
                if payload is not None and (objective_row >= 0.0).all():
                    archive.add(
                        population[i],
                        tuple(float(v) for v in objective_row),
                        payload,
                    )
        objectives = np.stack([self._cache[key][0] for key in keys])
        payloads = [self._cache[key][1] for key in keys]
        return objectives, payloads

    def _rank_and_crowding(
        self, objectives: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        fronts = fast_non_dominated_sort(objectives)
        rank = np.empty(objectives.shape[0], dtype=np.int64)
        crowding = np.empty(objectives.shape[0], dtype=np.float64)
        for front_index, front in enumerate(fronts):
            distances = crowding_distance(objectives, front)
            for index in front:
                rank[index] = front_index
                crowding[index] = distances[index]
        return rank, crowding

    def _make_offspring(
        self, population: np.ndarray, objectives: np.ndarray
    ) -> np.ndarray:
        """One generation of variation.  Fixed per-generation RNG draw order:

        1. tournament candidate indices — ``integers(0, pop, size=(2k, 2))``
           with ``k = (population_size + 1) // 2``;
        2. crossover coins — ``random(k)``;
        3. crossover swap masks — ``random((k, n_genes))``;
        4. mutation coins — ``random((2k, n_genes))``;
        5. snap-to-ideal coins — ``random((2k, n_genes))``;
        6. mutation resamples — ``integers(lo, hi + 1, size=(2k, n_genes))``.

        Every shape depends only on the search parameters, never on the coin
        outcomes, so the stream is reproducible by construction.  The last
        child is dropped when ``population_size`` is odd.
        """
        rank, crowding = self._rank_and_crowding(objectives)
        n_children = 2 * ((self.population_size + 1) // 2)
        winners = tournament_winners(self.rng, rank, crowding, n_children)
        children = batch_uniform_crossover(
            self.rng, population[winners], self.crossover_probability
        )
        mutated, _changed = batch_mutate(
            self.problem,
            children,
            self.rng,
            gene_mutation_probability=self.gene_mutation_probability,
        )
        return mutated[: self.population_size]

    def _environmental_selection(
        self,
        combined: np.ndarray,
        combined_objectives: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        fronts = fast_non_dominated_sort(combined_objectives)
        selected: List[int] = []
        for front in fronts:
            if len(selected) + len(front) <= self.population_size:
                selected.extend(front)
                continue
            distances = crowding_distance(combined_objectives, front)
            remaining = sorted(front, key=lambda index: -distances[index])
            selected.extend(remaining[: self.population_size - len(selected)])
            break
        chosen = np.asarray(selected, dtype=np.int64)
        return combined[chosen], combined_objectives[chosen]
