"""Free-slot computation for the LCC-D allocation phase of Algorithm 1.

A *free slot* is a maximal idle interval on the I/O device, given the jobs
already placed in a (partial) schedule.  The LCC-D allocator of the paper
identifies the free slots between the exactly-accurate jobs and packs the
sacrificed jobs into them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.schedule import Schedule
from repro.core.task import IOJob


@dataclass(frozen=True)
class FreeSlot:
    """A maximal idle interval ``[start, end)`` on the device."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"slot end {self.end} precedes start {self.start}")

    @property
    def capacity(self) -> int:
        return self.end - self.start

    def overlap(self, window_start: int, window_end: int) -> "Optional[FreeSlot]":
        """Intersection of the slot with a time window, or ``None`` if empty."""
        lo = max(self.start, window_start)
        hi = min(self.end, window_end)
        if hi <= lo:
            return None
        return FreeSlot(lo, hi)

    def can_fit(self, job: IOJob) -> bool:
        """Whether the job can be fully executed inside the slot within its release window."""
        # Pure arithmetic (no intermediate FreeSlot): this predicate runs tens
        # of thousands of times per LCC-D allocation.
        lo = self.start if self.start >= job.release else job.release
        hi = self.end if self.end <= job.deadline else job.deadline
        return hi > lo and hi - lo >= job.wcet

    def fit_start(self, job: IOJob, *, prefer_ideal: bool = False) -> Optional[int]:
        """Start time for the job inside this slot, or ``None`` if it does not fit.

        With ``prefer_ideal`` the start closest to the job's ideal start time
        is chosen; otherwise the earliest feasible start in the slot is used
        (pure schedulability-driven placement, as in the paper's static method).
        """
        earliest = self.start if self.start >= job.release else job.release
        hi = self.end if self.end <= job.deadline else job.deadline
        if hi <= earliest or hi - earliest < job.wcet:
            return None
        if not prefer_ideal:
            return earliest
        latest = hi - job.wcet
        return min(max(job.ideal_start, earliest), latest)


def free_slots(schedule: Schedule, horizon: int) -> List[FreeSlot]:
    """Maximal idle intervals of ``schedule`` over ``[0, horizon)``."""
    return [FreeSlot(start, end) for start, end in schedule.idle_intervals(horizon)]


def slots_within_window(
    slots: Sequence[FreeSlot], window_start: int, window_end: int
) -> List[FreeSlot]:
    """Clip a list of slots to a time window, dropping empty intersections."""
    clipped: List[FreeSlot] = []
    for slot in slots:
        overlap = slot.overlap(window_start, window_end)
        if overlap is not None:
            clipped.append(overlap)
    return clipped


def total_capacity(slots: Sequence[FreeSlot]) -> int:
    """Sum of the capacities of the given slots."""
    return sum(slot.capacity for slot in slots)
