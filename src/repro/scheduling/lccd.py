"""Least Contention and Capacity Decreasing (LCC-D) allocation (phase 3 of Algorithm 1).

After graph decomposition, the surviving jobs (``lambda*``) are placed at their
ideal start times and the sacrificed jobs (``lambda¬``) must be packed into the
remaining free slots so that every job still meets its deadline.  The paper's
LCC-D rule handles each sacrificed job, highest priority first, in two cases:

1. *Direct fit* — one or more free slots inside the job's release window can
   hold the whole job.  The job goes to the slot usable by the **fewest** other
   pending jobs (least contention); ties are broken towards the slot with the
   **least capacity** (capacity decreasing, in the spirit of Best-Fit).
2. *Fit by shifting* — no single slot fits, but the total free capacity inside
   the window suffices.  The allocator picks the consecutive group of slots
   whose in-between jobs contain the fewest exactly-accurate jobs, shifts those
   in-between jobs (left or right, within their own release windows) to merge
   the capacity, and places the job in the merged gap.

If neither case applies the allocation — and hence the heuristic schedule —
is declared infeasible (the paper explicitly stops here rather than searching
for re-allocations of already-placed jobs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.schedule import Schedule, ScheduleEntry
from repro.core.task import IOJob
from repro.scheduling.slots import FreeSlot, free_slots, slots_within_window, total_capacity


@dataclass
class AllocationReport:
    """Diagnostics of an LCC-D allocation run."""

    allocated_direct: int = 0
    allocated_by_shift: int = 0
    failed_job: Optional[str] = None

    @property
    def feasible(self) -> bool:
        return self.failed_job is None


class LCCDAllocator:
    """Packs sacrificed jobs into the free slots left by the exact jobs."""

    def __init__(self, prefer_ideal_placement: bool = False):
        #: If true, a directly-fitting job is placed as close to its ideal
        #: start as the slot allows (improves Upsilon); the paper's static
        #: method is purely schedulability-driven, so the default is False.
        self.prefer_ideal_placement = prefer_ideal_placement

    # -- public API ---------------------------------------------------------

    def allocate(
        self,
        kept: Sequence[IOJob],
        sacrificed: Sequence[IOJob],
        horizon: int,
    ) -> Tuple[Optional[Schedule], AllocationReport]:
        """Build a complete schedule, or return ``(None, report)`` if infeasible."""
        schedule = Schedule()
        for job in kept:
            schedule.set_start(job, job.ideal_start)

        report = AllocationReport()
        # Highest priority first (the paper's "largest P_i first").
        pending = sorted(sacrificed, key=lambda j: (-j.priority, j.ideal_start, j.key))
        # Per-job window arrays: the direct-fit contention check compares every
        # candidate slot against every still-pending job in one broadcast.
        releases = np.array([j.release for j in pending], dtype=np.int64)
        deadlines = np.array([j.deadline for j in pending], dtype=np.int64)
        wcets = np.array([j.wcet for j in pending], dtype=np.int64)
        for index, job in enumerate(pending):
            if self._allocate_direct(
                schedule,
                job,
                releases[index + 1:],
                deadlines[index + 1:],
                wcets[index + 1:],
                horizon,
            ):
                report.allocated_direct += 1
                continue
            if self._allocate_by_shifting(schedule, job, horizon):
                report.allocated_by_shift += 1
                continue
            report.failed_job = job.name
            return None, report
        return schedule, report

    # -- case 1: direct fit ---------------------------------------------------

    def _allocate_direct(
        self,
        schedule: Schedule,
        job: IOJob,
        remaining_releases: np.ndarray,
        remaining_deadlines: np.ndarray,
        remaining_wcets: np.ndarray,
        horizon: int,
    ) -> bool:
        intervals = schedule.idle_intervals(horizon)
        if not intervals:
            return False
        starts = np.fromiter((lo for lo, _ in intervals), dtype=np.int64, count=len(intervals))
        ends = np.fromiter((hi for _, hi in intervals), dtype=np.int64, count=len(intervals))
        usable_lo = np.maximum(starts, job.release)
        usable_hi = np.minimum(ends, job.deadline)
        fits = (usable_hi > usable_lo) & (usable_hi - usable_lo >= job.wcet)
        if not fits.any():
            return False
        fit_starts = starts[fits]
        fit_ends = ends[fits]
        # Least contention first: how many still-pending jobs could also use
        # each candidate slot (one broadcast instead of a slot x job loop).
        if remaining_releases.size:
            lo = np.maximum(fit_starts[:, None], remaining_releases[None, :])
            hi = np.minimum(fit_ends[:, None], remaining_deadlines[None, :])
            contention = ((hi > lo) & (hi - lo >= remaining_wcets)).sum(axis=1)
        else:
            contention = np.zeros(fit_starts.size, dtype=np.int64)
        capacities = fit_ends - fit_starts
        chosen = min(
            range(fit_starts.size),
            key=lambda i: (contention[i], capacities[i], fit_starts[i]),
        )
        slot = FreeSlot(int(fit_starts[chosen]), int(fit_ends[chosen]))
        start = slot.fit_start(job, prefer_ideal=self.prefer_ideal_placement)
        assert start is not None  # guaranteed by the fit mask
        schedule.set_start(job, start)
        return True

    @staticmethod
    def _contention(slot: FreeSlot, remaining: Sequence[IOJob]) -> int:
        """Number of still-pending jobs that could also use this slot (reference)."""
        return sum(1 for other in remaining if slot.can_fit(other))

    # -- case 2: fit by shifting ----------------------------------------------

    def _allocate_by_shifting(self, schedule: Schedule, job: IOJob, horizon: int) -> bool:
        slots = free_slots(schedule, horizon)
        window_slots = slots_within_window(slots, job.release, job.deadline)
        if total_capacity(window_slots) < job.wcet:
            return False

        runs = self._candidate_runs(schedule, slots, job)
        for _, _, run_slots, between in runs:
            if self._try_pack(schedule, job, run_slots, between, pack_left=True):
                return True
            if self._try_pack(schedule, job, run_slots, between, pack_left=False):
                return True
        return False

    def _candidate_runs(
        self,
        schedule: Schedule,
        slots: Sequence[FreeSlot],
        job: IOJob,
    ) -> List[Tuple[int, int, List[FreeSlot], List[ScheduleEntry]]]:
        """Consecutive slot groups whose merged capacity could hold the job.

        Each run is annotated with (#exactly-accurate in-between jobs,
        #in-between jobs) and the runs are returned best-first.
        """
        runs: List[Tuple[int, int, List[FreeSlot], List[ScheduleEntry]]] = []
        n = len(slots)
        if n == 0:
            return runs
        # Each run starts at slot i and extends to the first slot j whose
        # cumulative window-clipped capacity reaches the job's WCET (extending
        # further only adds more disturbance).  Finding every (i, j) pair is a
        # prefix-sum + binary search instead of the O(n^2) slot scan.
        slot_starts = np.fromiter((s.start for s in slots), dtype=np.int64, count=n)
        slot_ends = np.fromiter((s.end for s in slots), dtype=np.int64, count=n)
        clipped = np.minimum(slot_ends, job.deadline) - np.maximum(slot_starts, job.release)
        cum = np.cumsum(np.maximum(clipped, 0))
        targets = job.wcet + np.concatenate((np.zeros(1, dtype=np.int64), cum[:-1]))
        run_ends = np.maximum(np.searchsorted(cum, targets, side="left"), np.arange(n))

        entries = schedule.sorted_entries()
        entry_starts = np.fromiter((e.start for e in entries), dtype=np.int64, count=len(entries))
        entry_finishes = np.fromiter(
            (e.finish for e in entries), dtype=np.int64, count=len(entries)
        )
        entry_exact = np.fromiter(
            (e.start == e.job.ideal_start for e in entries), dtype=bool, count=len(entries)
        )
        for i in np.nonzero(run_ends < n)[0]:
            j = int(run_ends[i])
            run_slots = list(slots[i:j + 1])
            lo, hi = run_slots[0].start, run_slots[-1].end
            inside = np.nonzero((entry_starts >= lo) & (entry_finishes <= hi))[0]
            between = [entries[k] for k in inside]
            exact_between = int(np.count_nonzero(entry_exact[inside]))
            runs.append((exact_between, len(between), run_slots, between))
        runs.sort(key=lambda r: (r[0], r[1], r[2][0].start))
        return runs

    def _try_pack(
        self,
        schedule: Schedule,
        job: IOJob,
        run_slots: Sequence[FreeSlot],
        between: Sequence[ScheduleEntry],
        *,
        pack_left: bool,
    ) -> bool:
        """Shift the in-between jobs towards one end of the run and insert ``job``.

        Packing left pushes the in-between jobs as early as their releases
        allow, opening a gap at the end of the run; packing right pushes them
        as late as their deadlines allow, opening a gap at the start.  The
        shifts are applied only if the resulting gap can hold the new job
        inside its own release window.
        """
        region_start = run_slots[0].start
        region_end = run_slots[-1].end
        ordered = sorted(between, key=lambda e: e.start)

        new_starts: List[Tuple[IOJob, int]] = []
        if pack_left:
            cursor = region_start
            for entry in ordered:
                start = max(entry.job.release, cursor)
                if start + entry.job.wcet > entry.job.deadline:
                    return False
                new_starts.append((entry.job, start))
                cursor = start + entry.job.wcet
            gap_start, gap_end = cursor, region_end
        else:
            cursor = region_end
            for entry in reversed(ordered):
                finish = min(entry.job.deadline, cursor)
                start = finish - entry.job.wcet
                if start < entry.job.release:
                    return False
                new_starts.append((entry.job, start))
                cursor = start
            gap_start, gap_end = region_start, cursor

        usable = FreeSlot(gap_start, gap_end).overlap(job.release, job.deadline)
        if usable is None or usable.capacity < job.wcet:
            return False

        for shifted_job, start in new_starts:
            schedule.set_start(shifted_job, start)
        placement = usable.fit_start(job, prefer_ideal=self.prefer_ideal_placement)
        assert placement is not None
        schedule.set_start(job, placement)
        return True
