"""Scheduler interface and result types shared by all scheduling methods."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.metrics import ScheduleMetrics, aggregate_psi, aggregate_upsilon, schedule_metrics
from repro.core.schedule import Schedule, SystemSchedule
from repro.core.task import IOJob, TaskSet


@dataclass
class ScheduleResult:
    """Outcome of scheduling the jobs of a single per-device partition."""

    schedulable: bool
    schedule: Optional[Schedule]
    metrics: ScheduleMetrics
    #: Scheduler-specific diagnostics (e.g. number of sacrificed jobs, GA
    #: generations executed, Pareto-front size).
    info: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def infeasible(cls, n_jobs: int = 0, **info: Any) -> "ScheduleResult":
        return cls(
            schedulable=False,
            schedule=None,
            metrics=ScheduleMetrics.infeasible(n_jobs=n_jobs),
            info=dict(info),
        )

    @classmethod
    def from_schedule(
        cls, schedule: Schedule, jobs: Sequence[IOJob], **info: Any
    ) -> "ScheduleResult":
        """Build a result from a complete schedule, validating it against ``jobs``.

        The quality metrics (Psi, Upsilon) are computed from the schedule even
        when it violates a deadline — the ``schedulable`` flag records the
        violation — so that the timing accuracy of non-guaranteeing baselines
        (FIFO/GPIOCP) remains measurable, as in Figures 6-7 of the paper.
        """
        metrics = schedule_metrics(schedule, jobs, strict=False)
        return cls(
            schedulable=metrics.schedulable,
            schedule=schedule,
            metrics=metrics,
            info=dict(info),
        )

    @property
    def psi(self) -> float:
        return self.metrics.psi

    @property
    def upsilon(self) -> float:
        return self.metrics.upsilon


@dataclass
class SystemScheduleResult:
    """Outcome of scheduling a full (possibly multi-device) system."""

    schedulable: bool
    per_device: Dict[str, ScheduleResult]

    @property
    def schedules(self) -> SystemSchedule:
        system = SystemSchedule()
        for device, result in self.per_device.items():
            if result.schedule is not None:
                system[device] = result.schedule
        return system

    @property
    def psi(self) -> float:
        """System-wide Psi (job-weighted across devices) of the produced schedules.

        Computed even when a deadline is violated (see the ``schedulable`` flag),
        so that baselines without timing guarantees remain measurable.
        """
        return aggregate_psi(
            result.schedule for result in self.per_device.values() if result.schedule
        )

    @property
    def upsilon(self) -> float:
        """System-wide Upsilon of the produced schedules (see :attr:`psi`)."""
        return aggregate_upsilon(
            result.schedule for result in self.per_device.values() if result.schedule
        )


class Scheduler(ABC):
    """Base class for offline, per-partition I/O job schedulers."""

    #: Short identifier used by the experiment harness and result tables.
    name: str = "scheduler"

    @abstractmethod
    def schedule_jobs(self, jobs: Sequence[IOJob], horizon: int) -> ScheduleResult:
        """Schedule the jobs of one per-device partition over ``[0, horizon)``.

        All jobs must target the same I/O device.  Implementations must return
        a complete, constraint-respecting schedule or an infeasible result —
        they must not raise for unschedulable inputs.
        """

    def schedule_taskset(self, task_set: TaskSet, horizon: Optional[int] = None) -> SystemScheduleResult:
        """Partition a task set by device and schedule every partition.

        The system is schedulable iff every partition is.
        """
        if len(task_set) == 0:
            return SystemScheduleResult(schedulable=True, per_device={})
        if horizon is None:
            horizon = task_set.hyperperiod()
        per_device: Dict[str, ScheduleResult] = {}
        all_ok = True
        for device, partition in task_set.partition().items():
            jobs = partition.jobs(horizon)
            result = self.schedule_jobs(jobs, horizon)
            per_device[device] = result
            all_ok = all_ok and result.schedulable
        return SystemScheduleResult(schedulable=all_ok, per_device=per_device)


def schedule_system(
    scheduler: Scheduler, task_set: TaskSet, horizon: Optional[int] = None
) -> SystemScheduleResult:
    """Convenience function mirroring :meth:`Scheduler.schedule_taskset`."""
    return scheduler.schedule_taskset(task_set, horizon)
