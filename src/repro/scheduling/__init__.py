"""Offline scheduling methods for timed I/O jobs (Section III of the paper).

Schedulers provided:

* :class:`FPSOfflineScheduler` — offline non-preemptive fixed-priority
  scheduling (the paper's "FPS-offline" baseline).
* :class:`GPIOCPScheduler` — the FIFO execution model of GPIOCP
  (Jiang & Audsley, DATE 2017), the paper's state-of-the-art baseline.
* :class:`HeuristicScheduler` — the paper's Algorithm 1 ("static"):
  dependency-graph decomposition plus LCC-D allocation, maximising Psi.
* :class:`GAScheduler` — the paper's multi-objective genetic-algorithm search,
  maximising both Psi and Upsilon.
* :class:`FPSOnlineSchedulabilityMethod` — the analytical "FPS-online"
  schedulability test adapted to the scheduler API (produces no schedule).
"""

from repro.scheduling.base import (
    Scheduler,
    ScheduleResult,
    SystemScheduleResult,
    schedule_system,
)
from repro.scheduling.dependency_graph import (
    DependencyGraphs,
    build_dependency_graphs,
    decompose_graphs,
)
from repro.scheduling.registry import (
    available_schedulers,
    create_scheduler,
    format_scheduler_listing,
    get_scheduler_factory,
    list_schedulers,
    register_scheduler,
    scheduler_registered,
    unregister_scheduler,
)
from repro.scheduling.fps import FPSOfflineScheduler
from repro.scheduling.gpiocp import GPIOCPScheduler
from repro.scheduling.heuristic import HeuristicScheduler
from repro.scheduling.online import FPSOnlineSchedulabilityMethod
from repro.scheduling.lccd import LCCDAllocator
from repro.scheduling.slots import FreeSlot, free_slots, slots_within_window
from repro.scheduling.ga import GAScheduler, GAConfig

__all__ = [
    "Scheduler",
    "ScheduleResult",
    "SystemScheduleResult",
    "schedule_system",
    "FPSOfflineScheduler",
    "FPSOnlineSchedulabilityMethod",
    "GPIOCPScheduler",
    "HeuristicScheduler",
    "GAScheduler",
    "GAConfig",
    "register_scheduler",
    "unregister_scheduler",
    "create_scheduler",
    "get_scheduler_factory",
    "list_schedulers",
    "format_scheduler_listing",
    "scheduler_registered",
    "available_schedulers",
    "LCCDAllocator",
    "FreeSlot",
    "free_slots",
    "slots_within_window",
    "DependencyGraphs",
    "build_dependency_graphs",
    "decompose_graphs",
]
