"""Dependency-graph formation and decomposition (phases 1-2 of Algorithm 1).

Two jobs *conflict* if their ideal executions — each starting at its ideal
start time ``T_i * j + delta_i`` and lasting ``C_i`` — overlap on the shared
I/O device.  The dependency graphs are the connected components of the
conflict graph (Figure 2 of the paper).

Graph decomposition repeatedly removes (sacrifices) the job with the highest
penalty weight ``psi_i^j`` — its degree, i.e. the number of jobs whose exact
timing accuracy it would destroy — breaking ties towards the lowest-priority
job, until no conflicts remain.  The surviving jobs can all be executed
exactly at their ideal start times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

import networkx as nx

from repro.core.task import IOJob


@dataclass
class DependencyGraphs:
    """The conflict graph of a job set together with its connected components."""

    graph: nx.Graph
    jobs: List[IOJob]

    @property
    def components(self) -> List[Set[Tuple[str, int]]]:
        """Connected components, each a set of job keys."""
        return [set(component) for component in nx.connected_components(self.graph)]

    def penalty_weight(self, job: IOJob) -> int:
        """Penalty weight ``psi`` of a job: its degree in the conflict graph."""
        return int(self.graph.degree(job.key))

    def job_by_key(self, key: Tuple[str, int]) -> IOJob:
        return self.graph.nodes[key]["job"]

    def conflicting_pairs(self) -> List[Tuple[IOJob, IOJob]]:
        """All pairs of jobs whose ideal executions overlap."""
        return [
            (self.graph.nodes[a]["job"], self.graph.nodes[b]["job"])
            for a, b in self.graph.edges
        ]


def build_dependency_graphs(jobs: Sequence[IOJob]) -> DependencyGraphs:
    """Phase 1 of Algorithm 1: build the conflict graph of the ideal executions.

    Nodes are jobs; an edge links two jobs whose ideal executions overlap.
    Connected components correspond to the dependency graphs ``G_1 … G_n`` of
    the paper.
    """
    graph = nx.Graph()
    ordered = sorted(jobs, key=lambda j: (j.ideal_start, j.key))
    for job in ordered:
        graph.add_node(job.key, job=job)
    # Sweep over jobs ordered by ideal start: only nearby jobs can overlap, so
    # the inner loop stops as soon as the next job starts after the current
    # job's ideal finish.
    for i, job in enumerate(ordered):
        ideal_finish = job.ideal_start + job.wcet
        for other in ordered[i + 1:]:
            if other.ideal_start >= ideal_finish:
                break
            graph.add_edge(job.key, other.key)
    return DependencyGraphs(graph=graph, jobs=list(ordered))


def decompose_graphs(graphs: DependencyGraphs) -> Tuple[List[IOJob], List[IOJob]]:
    """Phase 2 of Algorithm 1: sacrifice high-penalty jobs until no conflicts remain.

    Returns ``(kept, sacrificed)``:

    * ``kept`` (the paper's ``lambda*``) — jobs that will execute exactly at
      their ideal start times;
    * ``sacrificed`` (the paper's ``lambda¬``) — jobs removed from the graphs,
      to be re-allocated into free slots by LCC-D.

    Within each component the job with the highest penalty weight (degree) is
    removed first; ties are broken towards the lowest priority (the paper notes
    a lower-priority job has a wider release window, hence more free slots for
    re-allocation), then towards the later ideal start for determinism.

    The selection loop runs on a plain adjacency dict rather than a mutable
    networkx copy — the victim choice is identical (the final ``key``
    tie-break makes it unique regardless of iteration order) and the
    per-round cost drops to dict/set operations.
    """
    adjacency: Dict[Tuple[str, int], Set[Tuple[str, int]]] = {
        key: set(graphs.graph[key]) for key in graphs.graph.nodes
    }
    job_of: Dict[Tuple[str, int], IOJob] = {
        key: graphs.graph.nodes[key]["job"] for key in graphs.graph.nodes
    }
    sacrificed: List[IOJob] = []
    edges_remaining = sum(len(neighbours) for neighbours in adjacency.values()) // 2

    while edges_remaining:
        # Pick the node with the highest degree; tie-break by lowest priority,
        # then latest ideal start, then job key (full determinism).
        victim_key = max(
            (key for key, neighbours in adjacency.items() if neighbours),
            key=lambda key: (
                len(adjacency[key]),
                -job_of[key].priority,
                job_of[key].ideal_start,
                key,
            ),
        )
        neighbours = adjacency.pop(victim_key)
        for other in neighbours:
            adjacency[other].discard(victim_key)
        edges_remaining -= len(neighbours)
        sacrificed.append(job_of[victim_key])

    kept = sorted(
        (job_of[key] for key in adjacency),
        key=lambda j: (j.ideal_start, j.key),
    )
    sacrificed.sort(key=lambda j: (-j.priority, j.ideal_start, j.key))
    return kept, sacrificed
