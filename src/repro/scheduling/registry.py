"""Scheduler registry — pluggable lookup of scheduling methods by name.

The experiment harness refers to scheduling methods by short string names
("fps-offline", "gpiocp", "static", "ga", ...).  Historically the runner
hard-coded the mapping from those names to scheduler classes; the registry
inverts the dependency: every scheduler module registers its own factory with
:func:`register_scheduler`, and the harness instantiates methods through
:func:`create_scheduler` without importing (or even knowing about) the
concrete classes.  New methods therefore plug into every sweep, benchmark and
CLI entry point by registering themselves — no runner changes required.

A *factory* is any callable returning a scheduler-like object (something with
a ``schedule_taskset(task_set)`` method).  Factories may accept one optional
positional ``config`` argument (e.g. :class:`~repro.scheduling.ga.GAConfig`
for the GA); :func:`create_scheduler` only forwards ``config`` when the caller
provides one, so config-free schedulers can ignore the concern entirely.
Keyword arguments given to :func:`create_scheduler` are forwarded to the
factory as overrides (this is what spec strings such as
``"ga:generations=50"`` resolve through); a keyword the factory does not
accept raises a ``TypeError`` naming the offending factory.
"""

from __future__ import annotations

import inspect

from typing import Any, Callable, Dict, Optional, Sequence, Tuple

#: name -> factory.  Aliases map to the same factory object.
_REGISTRY: Dict[str, Callable[..., Any]] = {}

_MISSING = object()


def register_scheduler(
    name: str,
    factory: Optional[Callable[..., Any]] = None,
    *,
    aliases: Sequence[str] = (),
    overwrite: bool = False,
):
    """Register a scheduler factory under ``name`` (plus optional aliases).

    Usable both as a class decorator::

        @register_scheduler("static")
        class HeuristicScheduler(Scheduler): ...

    and as a direct call for ad-hoc factories::

        register_scheduler("fps-online", FPSOnlineSchedulabilityMethod)

    Duplicate names raise ``ValueError`` unless ``overwrite=True`` — silent
    re-registration almost always indicates two methods fighting over a name.
    """

    def _register(target: Callable[..., Any]) -> Callable[..., Any]:
        keys = (name, *aliases)
        # Validate every key before touching the registry, so a conflicting
        # alias cannot leave a half-registered entry behind.
        if not overwrite:
            for key in keys:
                if key in _REGISTRY and _REGISTRY[key] is not target:
                    raise ValueError(
                        f"scheduler {key!r} is already registered "
                        f"(to {_REGISTRY[key]!r}); pass overwrite=True to replace it"
                    )
        for key in keys:
            _REGISTRY[key] = target
        return target

    if factory is not None:
        return _register(factory)
    return _register


def unregister_scheduler(name: str) -> None:
    """Remove ``name`` from the registry (aliases must be removed separately)."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown scheduler {name!r}")
    del _REGISTRY[name]


def scheduler_registered(name: str) -> bool:
    """Whether ``name`` resolves to a registered factory."""
    return name in _REGISTRY


def available_schedulers() -> Tuple[str, ...]:
    """Sorted names (including aliases) of every registered scheduler."""
    return tuple(sorted(_REGISTRY))


def list_schedulers() -> Dict[str, str]:
    """Every registered scheduler name mapped to its factory's identity.

    Aliases appear as their own entries (pointing at the same factory), so the
    mapping answers both "what can I pass as a method?" and "which of these
    are the same thing?".  This is what the CLIs print for ``--list-methods``.
    """
    return {name: _describe_factory(_REGISTRY[name]) for name in available_schedulers()}


def format_scheduler_listing() -> str:
    """The ``--list-methods`` text both CLIs print: one ``name  factory`` line each."""
    return "\n".join(f"{name:<16} {factory}" for name, factory in list_schedulers().items())


def get_scheduler_factory(name: str) -> Callable[..., Any]:
    """The raw factory registered under ``name`` (for introspection/tests)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; registered: {', '.join(available_schedulers())}"
        ) from None


def _describe_factory(factory: Callable[..., Any]) -> str:
    """Human-readable identity of a factory for error messages."""
    qualname = getattr(factory, "__qualname__", None) or getattr(
        factory, "__name__", None
    )
    if qualname is None:
        return repr(factory)
    module = getattr(factory, "__module__", None)
    return f"{module}.{qualname}" if module else qualname


def _check_overrides(
    name: str, factory: Callable[..., Any], args: Tuple[Any, ...], overrides: Dict[str, Any]
) -> None:
    """Reject keyword overrides the factory's signature cannot bind.

    Raises a ``TypeError`` that names both the registry entry and the factory,
    so a typo in a spec string points straight at the culprit.  Factories
    whose signature cannot be introspected (some builtins) are given the
    benefit of the doubt and called directly.
    """
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return
    try:
        signature.bind(*args, **overrides)
    except TypeError as error:
        accepted = ", ".join(signature.parameters) or "<none>"
        raise TypeError(
            f"scheduler {name!r} (factory {_describe_factory(factory)}) rejected "
            f"keyword overrides {sorted(overrides)}: {error}; "
            f"accepted parameters: {accepted}"
        ) from None


def create_scheduler(name: str, config: Any = _MISSING, **overrides: Any) -> Any:
    """Instantiate the scheduler registered under ``name``.

    ``config`` (when given) is forwarded as the factory's single positional
    argument; omitted otherwise, so factories without configuration knobs need
    not declare a parameter for it.  Keyword ``overrides`` are forwarded to
    the factory verbatim — this is the hook spec strings such as
    ``"ga:generations=50,population_size=40"`` resolve through.  An override
    the factory rejects raises ``TypeError`` naming the factory.
    """
    factory = get_scheduler_factory(name)
    args = () if config is _MISSING else (config,)
    if overrides:
        _check_overrides(name, factory, args, overrides)
        try:
            return factory(*args, **overrides)
        except TypeError as error:
            # The signature bound but the factory still rejected a keyword at
            # construction time (e.g. an unknown config field): re-raise with
            # the factory named so spec-string callers can locate the typo.
            raise TypeError(
                f"scheduler {name!r} (factory {_describe_factory(factory)}) rejected "
                f"keyword overrides {sorted(overrides)}: {error}"
            ) from error
    return factory(*args)
