"""GPIOCP baseline: FIFO-ordered execution of timed I/O requests.

GPIOCP (Jiang & Audsley, DATE 2017 — the paper's reference [2]) pre-loads
timed I/O commands into a co-processor and specifies the exact start time of
each command, but orders execution solely with FIFO queues: a request fired at
its desired time instant is queued, and executes when it reaches the head of
the queue and the device is free.  Under light load this is close to exact
timing accuracy; under intensive I/O the queueing delay destroys both accuracy
and schedulability, which is what Figures 5-7 of the paper show.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.schedule import Schedule
from repro.core.task import IOJob
from repro.scheduling.base import Scheduler, ScheduleResult
from repro.scheduling.registry import register_scheduler


@register_scheduler("gpiocp")
class GPIOCPScheduler(Scheduler):
    """FIFO execution model of the GPIOCP co-processor."""

    name = "gpiocp"

    def schedule_jobs(self, jobs: Sequence[IOJob], horizon: int) -> ScheduleResult:
        jobs = list(jobs)
        schedule = Schedule()
        if not jobs:
            return ScheduleResult.from_schedule(schedule, jobs)

        # Requests are fired at their ideal start times and enter a FIFO queue;
        # ties are broken by priority then job identity for determinism.
        arrival_order: List[IOJob] = sorted(
            jobs, key=lambda j: (j.ideal_start, -j.priority, j.key)
        )
        device_free_at = 0
        queue_delayed = 0
        for job in arrival_order:
            start = max(job.ideal_start, device_free_at)
            if start > job.ideal_start:
                queue_delayed += 1
            schedule.set_start(job, start)
            device_free_at = start + job.wcet

        return ScheduleResult.from_schedule(
            schedule, jobs, queue_delayed=queue_delayed
        )
