"""The "fps-online" method: analytical schedulability behind the Scheduler API.

The paper's FPS-online baseline (Figure 5) is not a scheduler at all — it is
the worst-case response-time *analysis* of :mod:`repro.analysis` — but every
consumer (sweeps, the scheduling service, CLIs) wants to drive all methods
through one ``schedule_taskset`` interface.  This adapter bridges the two and
registers itself with the scheduler registry, so
``create_scheduler("fps-online")`` works anywhere the scheduling package is
importable, without dragging in the experiments harness.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis import FPSOnlineTest
from repro.core.task import TaskSet
from repro.scheduling.base import SystemScheduleResult
from repro.scheduling.registry import register_scheduler


@register_scheduler("fps-online")
class FPSOnlineSchedulabilityMethod:
    """Adapter exposing the FPS-online analysis through the scheduler API.

    The analytical test decides schedulability without producing a schedule,
    so the adapter returns an empty per-device map and flags itself with
    ``produces_schedule = False`` (consumers then record Psi/Upsilon as 0).
    """

    name = "fps-online"
    produces_schedule = False

    def schedule_taskset(
        self, task_set: TaskSet, horizon: Optional[int] = None
    ) -> SystemScheduleResult:
        """Decide schedulability analytically; ``horizon`` is irrelevant here."""
        schedulable = bool(FPSOnlineTest().is_schedulable(task_set))
        return SystemScheduleResult(schedulable=schedulable, per_device={})
