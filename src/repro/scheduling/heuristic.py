"""The paper's heuristic ("static") I/O scheduler — Algorithm 1.

The scheduler maximises ``Psi``, the fraction of jobs executed exactly at
their ideal start times, in three phases:

1. build the dependency (conflict) graphs of the ideal job executions,
2. decompose the graphs by sacrificing the jobs with the highest penalty
   weight until no conflicts remain,
3. re-allocate the sacrificed jobs into free slots with the LCC-D rule so
   that every job still meets its deadline.

If the LCC-D phase cannot place a sacrificed job the whole partition is
reported unschedulable (the paper deliberately does not search further).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.memo import get_memo
from repro.core.task import IOJob
from repro.scheduling.base import Scheduler, ScheduleResult
from repro.scheduling.dependency_graph import build_dependency_graphs, decompose_graphs
from repro.scheduling.lccd import LCCDAllocator
from repro.scheduling.registry import register_scheduler


@register_scheduler("static", aliases=("heuristic",))
class HeuristicScheduler(Scheduler):
    """Job-level static I/O scheduling for maximising Psi (Algorithm 1)."""

    name = "static"

    def __init__(self, prefer_ideal_placement: bool = False):
        #: Passed through to :class:`LCCDAllocator`; the paper's method places
        #: sacrificed jobs purely for schedulability, which is the default.
        self.allocator = LCCDAllocator(prefer_ideal_placement=prefer_ideal_placement)

    def schedule_jobs(self, jobs: Sequence[IOJob], horizon: int) -> ScheduleResult:
        jobs = list(jobs)
        if not jobs:
            from repro.core.schedule import Schedule

            return ScheduleResult.from_schedule(Schedule(), jobs)

        # The whole pipeline is a pure function of (jobs, horizon, placement
        # policy), and the same partition is scheduled repeatedly within a
        # process (cache misses on a warm worker, GA heuristic seeding), so
        # the result is memoised per worker.  Jobs are frozen values, so the
        # key compares by content, and callers get a fresh Schedule copy to
        # keep the stored entry pristine.
        memo = get_memo("heuristic")
        key = (horizon, self.allocator.prefer_ideal_placement, tuple(jobs))
        result = memo.get(key)
        if result is None:
            result = memo.put(key, self._schedule_jobs_uncached(jobs, horizon))
        return ScheduleResult(
            schedulable=result.schedulable,
            schedule=result.schedule.copy() if result.schedule is not None else None,
            metrics=result.metrics,
            info=dict(result.info),
        )

    def _schedule_jobs_uncached(self, jobs: List[IOJob], horizon: int) -> ScheduleResult:
        graphs = build_dependency_graphs(jobs)
        kept, sacrificed = decompose_graphs(graphs)
        schedule, report = self.allocator.allocate(kept, sacrificed, horizon)

        info = {
            "n_input_jobs": len(jobs),
            "n_kept": len(kept),
            "n_sacrificed": len(sacrificed),
            "n_dependency_graphs": len(graphs.components),
            "allocated_direct": report.allocated_direct,
            "allocated_by_shift": report.allocated_by_shift,
            "failed_job": report.failed_job,
        }
        if schedule is None:
            return ScheduleResult.infeasible(n_jobs=len(jobs), **info)
        return ScheduleResult.from_schedule(schedule, jobs, **info)
