"""Offline non-preemptive fixed-priority scheduling ("FPS-offline" baseline).

The baseline builds an explicit schedule over one hyper-period by simulating a
work-conserving non-preemptive fixed-priority dispatcher: whenever the I/O
device becomes idle, the released-and-pending job with the highest priority is
started immediately.  The resulting start times ignore the ideal start times
entirely, which is why FPS achieves excellent schedulability (Figure 5) but a
``Psi`` of zero and a poor ``Upsilon`` (Figures 6 and 7).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence, Tuple

from repro.core.schedule import Schedule
from repro.core.task import IOJob
from repro.scheduling.base import Scheduler, ScheduleResult
from repro.scheduling.registry import register_scheduler


@register_scheduler("fps-offline", aliases=("fps",))
class FPSOfflineScheduler(Scheduler):
    """Work-conserving offline non-preemptive fixed-priority job scheduling."""

    name = "fps-offline"

    def schedule_jobs(self, jobs: Sequence[IOJob], horizon: int) -> ScheduleResult:
        jobs = list(jobs)
        schedule = Schedule()
        if not jobs:
            return ScheduleResult.from_schedule(schedule, jobs)

        # Jobs indexed by release time; a priority queue holds released jobs
        # ordered by (priority desc, release, key) — the classic FPS dispatcher.
        by_release: List[IOJob] = sorted(jobs, key=lambda j: (j.release, j.key))
        ready: List[Tuple[int, int, Tuple[str, int], IOJob]] = []
        next_index = 0
        time = 0
        n_total = len(by_release)
        scheduled = 0

        while scheduled < n_total:
            # Admit everything released by the current time.
            while next_index < n_total and by_release[next_index].release <= time:
                job = by_release[next_index]
                heapq.heappush(ready, (-job.priority, job.release, job.key, job))
                next_index += 1

            if not ready:
                # Idle until the next release.
                time = by_release[next_index].release
                continue

            _, _, _, job = heapq.heappop(ready)
            start = max(time, job.release)
            schedule.set_start(job, start)
            time = start + job.wcet
            scheduled += 1

        return ScheduleResult.from_schedule(
            schedule, jobs, makespan=schedule.makespan
        )
