"""Figure 6 — Psi (fraction of exactly timing-accurate jobs) vs utilisation.

The paper's Figure 6 reports, over schedulable systems with utilisations 0.3
to 0.7, the fraction of I/O jobs that start exactly at their ideal start time
under each offline method.  FPS never hits the ideal instant (Psi = 0); the
static heuristic maximises Psi explicitly; the GA reports the best-Psi point
of its Pareto front; GPIOCP degrades as load (and hence FIFO queueing) grows.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine
from repro.experiments.results import AccuracySweepResult, SweepResult


def run_fig6(
    config: Optional[ExperimentConfig] = None,
    *,
    verbose: bool = False,
    precomputed: Optional[AccuracySweepResult] = None,
) -> SweepResult:
    """Regenerate the Figure 6 Psi sweep.

    ``precomputed`` lets callers share one accuracy sweep between Figures 6
    and 7 (they use the same systems and schedules).
    """
    if precomputed is not None:
        sweep = precomputed
    else:
        with ExperimentEngine(config) as engine:
            sweep = engine.accuracy_sweep()
    result = sweep.psi
    if verbose:
        print("Figure 6 — Psi (fraction of exactly timing-accurate jobs)")
        print(result.to_table())
    return result


def main() -> None:  # pragma: no cover - convenience CLI
    run_fig6(ExperimentConfig.quick(), verbose=True)


if __name__ == "__main__":  # pragma: no cover
    main()
