"""Figure 5 — system schedulability of each scheduling method vs utilisation.

The paper's Figure 5 plots, for system utilisations from 0.2 to 0.9, the
fraction of randomly generated systems that each method can schedule:
FPS-offline (clairvoyant baseline, ~1.0 everywhere), FPS-online (analytical
worst case of the run-time FPS dispatcher), GPIOCP (FIFO execution), the
static heuristic and the GA.  ``run_fig5`` regenerates the same series.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine
from repro.experiments.results import SweepResult

#: Qualitative expectations from the paper, used by the benchmark harness and
#: EXPERIMENTS.md: FPS-offline dominates, the GA is at least as good as the
#: static heuristic (both above FPS-online at high load), and GPIOCP collapses
#: fastest as utilisation grows.
EXPECTED_ORDERING = ("fps-offline", "ga", "static", "fps-online", "gpiocp")


def run_fig5(
    config: Optional[ExperimentConfig] = None, *, verbose: bool = False
) -> SweepResult:
    """Regenerate the Figure 5 schedulability sweep; returns the result series.

    Worker count and artifact persistence follow the configuration
    (``config.n_workers`` / ``config.artifact_dir``).
    """
    with ExperimentEngine(config) as engine:
        result = engine.schedulability_sweep()
    if verbose:
        print("Figure 5 — fraction of schedulable systems")
        print(result.to_table())
    return result


def main() -> None:  # pragma: no cover - convenience CLI
    run_fig5(ExperimentConfig.quick(), verbose=True)


if __name__ == "__main__":  # pragma: no cover
    main()
