"""Supporting experiment: run-time execution of the offline schedule.

This experiment backs the architectural argument of Sections I and IV rather
than a numbered figure: it executes the same offline schedule in two ways and
compares the run-time timing accuracy.

* **Dedicated controller** — the schedule is loaded into the I/O controller
  model; the synchroniser triggers every job from the global timer, so the
  run-time start times match the offline ``kappa`` exactly.
* **CPU-instigated I/O** — each I/O request is sent by an application CPU
  across the NoC at the job's scheduled start time; the operation only begins
  when the request reaches the I/O tile, after per-hop latency and arbitration
  jitter from competing traffic, so exactness is lost and the accuracy drops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.metrics import aggregate_psi, aggregate_upsilon
from repro.core.schedule import Schedule, ScheduleEntry
from repro.core.task import TaskSet
from repro.experiments.config import ExperimentConfig
from repro.hardware.faults import FaultInjector
from repro.noc.packet import Packet
from repro.scenario import (
    Platform,
    Scenario,
    ScenarioLike,
    WorkloadSpec,
    build_platform,
    create_scenario,
)
from repro.service import ScheduleRequest, SchedulerSpec, SchedulingService
from repro.sim.engine import Simulator
from repro.taskgen import SystemGenerator


@dataclass
class ControllerSimResult:
    """Run-time timing accuracy of the two execution paths."""

    offline_psi: float
    controller_psi: float
    controller_upsilon: float
    controller_matches_offline: bool
    remote_cpu_psi: float
    remote_cpu_upsilon: float
    mean_noc_latency: float
    max_noc_latency: int
    faults_detected: int = 0
    skipped_jobs: int = 0

    def rows(self) -> List[Dict[str, object]]:
        return [
            {
                "path": "dedicated controller",
                "psi": self.controller_psi,
                "upsilon": self.controller_upsilon,
                "matches offline": self.controller_matches_offline,
            },
            {
                "path": "CPU-instigated over NoC",
                "psi": self.remote_cpu_psi,
                "upsilon": self.remote_cpu_upsilon,
                "matches offline": False,
            },
        ]


def _remote_cpu_execution(
    task_set: TaskSet,
    schedules: Dict[str, Schedule],
    platform: Platform,
    *,
    seed: int = 0,
) -> Dict[str, Schedule]:
    """Execute the schedule with I/O requests instigated by remote CPUs.

    Each job's request is injected at its offline start time from a CPU tile
    chosen per task; background traffic (``background_packets_per_job`` of the
    platform spec) shares the mesh links.  The I/O operation starts when the
    request is delivered and the device is free.
    """
    network = platform.network
    background_packets_per_job = platform.spec.background_packets_per_job
    rng = np.random.default_rng(seed)
    io_tile = platform.io_tile
    cpu_tiles = platform.cpu_tiles()

    cpu_of_task = {
        task.name: cpu_tiles[int(rng.integers(0, len(cpu_tiles)))] for task in task_set
    }

    # Requests sorted by injection (offline start) time, so link state evolves
    # chronologically; background packets are injected just before each request
    # to model competing application traffic.
    all_entries: List[ScheduleEntry] = [
        entry for schedule in schedules.values() for entry in schedule.sorted_entries()
    ]
    all_entries.sort(key=lambda e: e.start)

    runtime: Dict[str, Schedule] = {device: Schedule(device=device) for device in schedules}
    device_free_at: Dict[str, int] = {device: 0 for device in schedules}

    for entry in all_entries:
        source = cpu_of_task[entry.job.task.name]
        for _ in range(background_packets_per_job):
            bg_source = cpu_tiles[int(rng.integers(0, len(cpu_tiles)))]
            network.send(
                Packet(source=bg_source, destination=io_tile, size_flits=8, kind="background"),
                max(0, entry.start - int(rng.integers(0, 5))),
            )
        request = Packet(source=source, destination=io_tile, size_flits=4, kind="io-request")
        delivered = network.send(request, entry.start)
        device = entry.job.device
        start = max(delivered, device_free_at[device])
        runtime[device].add(ScheduleEntry(job=entry.job, start=start))
        device_free_at[device] = start + entry.job.wcet

    return runtime


def run_controller_sim(
    utilisation: Optional[float] = None,
    config: Optional[ExperimentConfig] = None,
    *,
    scenario: Optional[ScenarioLike] = None,
    seed: int = 11,
    verbose: bool = False,
) -> ControllerSimResult:
    """Compare the dedicated controller against CPU-instigated I/O at run time.

    The run is described by a scenario: the platform (controller parameters,
    mesh dimensions, background traffic) and the fault plan come from it, and
    its workload supplies the generator.  ``scenario`` accepts anything
    :func:`repro.scenario.create_scenario` resolves (a preset name, inline
    JSON, a :class:`~repro.scenario.Scenario`); by default the configuration's
    scenario (or the paper's platform around ``config.generator``) is used.
    ``utilisation`` overrides the scenario workload's target utilisation.
    """
    config = config or ExperimentConfig()
    if scenario is not None:
        scenario = create_scenario(scenario)
    elif config.scenario is not None:
        scenario = config.scenario
    else:
        # The historical behaviour: the paper's platform, no faults, systems
        # drawn from the configuration's generator.
        scenario = Scenario(
            name="controller-sim",
            workload=WorkloadSpec(
                utilisation=utilisation if utilisation is not None else 0.5,
                generator=config.generator,
                seed=seed,
            ),
        )
    if utilisation is None:
        utilisation = scenario.workload.utilisation
    generator = SystemGenerator(scenario.workload.generator, rng=seed)

    # The offline schedule is obtained through the scheduling service — the
    # same facade the sweeps and CLIs use — and rebuilt from the response's
    # serialised form, exercising the full host-to-controller exchange path.
    spec = SchedulerSpec.parse("static")
    task_set = None
    offline = None
    with SchedulingService() as service:
        for attempt in range(50):
            candidate = generator.generate(utilisation, scenario.workload.n_tasks)
            response = service.submit(ScheduleRequest(task_set=candidate, spec=spec))
            if response.schedulable:
                task_set, offline = candidate, response
                break
    if task_set is None or offline is None:
        raise RuntimeError(
            f"could not generate a schedulable system at utilisation {utilisation}"
        )

    schedules = offline.device_schedules(task_set)

    # Platform and faults are built from the scenario's declarative specs; the
    # same description drives both execution paths.
    platform = build_platform(
        scenario.platform,
        fault_injector=FaultInjector(list(scenario.faults.faults)),
    )
    controller = platform.controller
    controller.preload_taskset(task_set)
    controller.load_system_schedule(schedules)
    controller_run = controller.run(Simulator())

    remote_schedules = _remote_cpu_execution(task_set, schedules, platform, seed=seed)
    network = platform.network

    result = ControllerSimResult(
        offline_psi=offline.psi,
        controller_psi=controller_run.psi,
        controller_upsilon=controller_run.upsilon,
        controller_matches_offline=controller_run.matches_offline,
        remote_cpu_psi=aggregate_psi(remote_schedules.values()),
        remote_cpu_upsilon=aggregate_upsilon(remote_schedules.values()),
        mean_noc_latency=network.mean_latency(kind="io-request"),
        max_noc_latency=network.max_latency(kind="io-request"),
        faults_detected=controller_run.faults_detected,
        skipped_jobs=controller_run.skipped_jobs,
    )
    if verbose:
        from repro.experiments.stats import format_table

        print(f"Run-time execution of the offline schedule (scenario: {scenario.name})")
        print(format_table(result.rows()))
        print(
            f"NoC request latency: mean {result.mean_noc_latency:.1f}, "
            f"max {result.max_noc_latency}"
        )
        if len(scenario.faults):
            print(
                f"faults injected: {len(scenario.faults)}, detected: "
                f"{result.faults_detected}, jobs skipped: {result.skipped_jobs}"
            )
    return result


def main() -> None:  # pragma: no cover - convenience CLI
    run_controller_sim(verbose=True)


if __name__ == "__main__":  # pragma: no cover
    main()
