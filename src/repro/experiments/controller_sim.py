"""Supporting experiment: run-time execution of the offline schedule.

This experiment backs the architectural argument of Sections I and IV rather
than a numbered figure: it executes the same offline schedule under two
execution models of :mod:`repro.runtime` and compares the run-time timing
accuracy.

* **Dedicated controller** (``dedicated-controller``) — the schedule is
  loaded into the I/O controller model; the synchroniser triggers every job
  from the global timer, so the run-time start times match the offline
  ``kappa`` exactly.
* **CPU-instigated I/O** (``cpu-instigated``) — each I/O request is sent by
  an application CPU across the NoC at the job's scheduled start time; the
  operation only begins when the request reaches the I/O tile, after per-hop
  latency and arbitration jitter from competing traffic, so exactness is lost
  and the accuracy drops.

Since the ``repro.runtime`` subsystem owns the execution models, this module
is a thin consumer: it picks a schedulable workload, issues **two**
:class:`~repro.runtime.SimulationRequest` values against one
:class:`~repro.runtime.SimulationService`, and folds the responses into the
historical :class:`ControllerSimResult` shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.task import TaskSet
from repro.experiments.config import ExperimentConfig
from repro.runtime import SimulationRequest, SimulationService
from repro.scenario import Scenario, ScenarioLike, WorkloadSpec, create_scenario
from repro.service import ScheduleRequest, SchedulerSpec, SchedulingService
from repro.taskgen import SystemGenerator


@dataclass
class ControllerSimResult:
    """Run-time timing accuracy of the two execution paths."""

    offline_psi: float
    controller_psi: float
    controller_upsilon: float
    controller_matches_offline: bool
    remote_cpu_psi: float
    remote_cpu_upsilon: float
    mean_noc_latency: float
    max_noc_latency: int
    faults_detected: int = 0
    skipped_jobs: int = 0

    def rows(self) -> List[Dict[str, object]]:
        return [
            {
                "path": "dedicated controller",
                "psi": self.controller_psi,
                "upsilon": self.controller_upsilon,
                "matches offline": self.controller_matches_offline,
            },
            {
                "path": "CPU-instigated over NoC",
                "psi": self.remote_cpu_psi,
                "upsilon": self.remote_cpu_upsilon,
                "matches offline": False,
            },
        ]


def _pick_schedulable_system(
    service: SchedulingService,
    scenario: Scenario,
    utilisation: float,
    seed: int,
    *,
    attempts: int = 50,
) -> TaskSet:
    """Draw candidate systems until the ``static`` method schedules one.

    The schedule responses land in the service's content-addressed cache, so
    the simulation requests that follow re-use the winning schedule for free.
    """
    generator = SystemGenerator(scenario.workload.generator, rng=seed)
    spec = SchedulerSpec.parse("static")
    for _ in range(attempts):
        candidate = generator.generate(utilisation, scenario.workload.n_tasks)
        response = service.submit(ScheduleRequest(task_set=candidate, spec=spec))
        if response.schedulable:
            return candidate
    raise RuntimeError(
        f"could not generate a schedulable system at utilisation {utilisation}"
    )


def run_controller_sim(
    utilisation: Optional[float] = None,
    config: Optional[ExperimentConfig] = None,
    *,
    scenario: Optional[ScenarioLike] = None,
    seed: int = 11,
    verbose: bool = False,
) -> ControllerSimResult:
    """Compare the dedicated controller against CPU-instigated I/O at run time.

    The run is described by a scenario: the platform (controller parameters,
    mesh dimensions, background traffic) and the fault plan come from it, and
    its workload supplies the generator.  ``scenario`` accepts anything
    :func:`repro.scenario.create_scenario` resolves (a preset name, inline
    JSON, a :class:`~repro.scenario.Scenario`); by default the configuration's
    scenario (or the paper's platform around ``config.generator``) is used.
    ``utilisation`` overrides the scenario workload's target utilisation.
    """
    config = config or ExperimentConfig()
    if scenario is not None:
        scenario = create_scenario(scenario)
    elif config.scenario is not None:
        scenario = config.scenario
    else:
        # The historical behaviour: the paper's platform, no faults, systems
        # drawn from the configuration's generator.
        scenario = Scenario(
            name="controller-sim",
            workload=WorkloadSpec(
                utilisation=utilisation if utilisation is not None else 0.5,
                generator=config.generator,
                seed=seed,
            ),
        )
    if utilisation is None:
        utilisation = scenario.workload.utilisation

    with SchedulingService() as scheduling:
        task_set = _pick_schedulable_system(scheduling, scenario, utilisation, seed)

        # Two requests to the runtime subsystem — same workload, same offline
        # method, two execution models.  The explicit task_set pins the
        # generated workload; platform and faults come from the scenario.
        with SimulationService(scheduling=scheduling) as runtime:
            dedicated, remote = runtime.submit_batch(
                [
                    SimulationRequest(
                        scenario=scenario,
                        task_set=task_set,
                        method="static",
                        execution_model="dedicated-controller",
                        seed=seed,
                        request_id="controller-sim/dedicated",
                    ),
                    SimulationRequest(
                        scenario=scenario,
                        task_set=task_set,
                        method="static",
                        execution_model="cpu-instigated",
                        seed=seed,
                        request_id="controller-sim/remote-cpu",
                    ),
                ]
            )

    result = ControllerSimResult(
        offline_psi=dedicated.offline_psi,
        controller_psi=dedicated.psi,
        controller_upsilon=dedicated.upsilon,
        controller_matches_offline=dedicated.matches_offline,
        remote_cpu_psi=remote.psi,
        remote_cpu_upsilon=remote.upsilon,
        mean_noc_latency=remote.mean_noc_latency,
        max_noc_latency=remote.max_noc_latency,
        faults_detected=dedicated.faults_detected,
        skipped_jobs=dedicated.skipped_jobs,
    )
    if verbose:
        from repro.experiments.stats import format_table

        print(f"Run-time execution of the offline schedule (scenario: {scenario.name})")
        print(format_table(result.rows()))
        print(
            f"NoC request latency: mean {result.mean_noc_latency:.1f}, "
            f"max {result.max_noc_latency}"
        )
        if len(scenario.faults):
            print(
                f"faults injected: {len(scenario.faults)}, detected: "
                f"{result.faults_detected}, jobs skipped: {result.skipped_jobs}"
            )
    return result


def main() -> None:  # pragma: no cover - convenience CLI
    run_controller_sim(verbose=True)


if __name__ == "__main__":  # pragma: no cover
    main()
