"""Figure 7 — Upsilon (normalised total quality) vs utilisation.

The paper's Figure 7 reports, over the same schedulable systems as Figure 6,
the total obtained quality normalised by the maximum achievable quality.  The
GA (best-Upsilon Pareto point) leads, the static heuristic follows (its
sacrificed jobs are placed for schedulability only), GPIOCP degrades with
load, and FPS is the worst since it ignores ideal start times altogether.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine
from repro.experiments.results import AccuracySweepResult, SweepResult


def run_fig7(
    config: Optional[ExperimentConfig] = None,
    *,
    verbose: bool = False,
    precomputed: Optional[AccuracySweepResult] = None,
) -> SweepResult:
    """Regenerate the Figure 7 Upsilon sweep (see :func:`run_fig6` for sharing)."""
    if precomputed is not None:
        sweep = precomputed
    else:
        with ExperimentEngine(config) as engine:
            sweep = engine.accuracy_sweep()
    result = sweep.upsilon
    if verbose:
        print("Figure 7 — Upsilon (normalised total quality)")
        print(result.to_table())
    return result


def main() -> None:  # pragma: no cover - convenience CLI
    run_fig7(ExperimentConfig.quick(), verbose=True)


if __name__ == "__main__":  # pragma: no cover
    main()
