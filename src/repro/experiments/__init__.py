"""Experiment harness regenerating every figure and table of the paper's evaluation.

* Figure 5 — system schedulability vs utilisation
  (:func:`repro.experiments.fig5_schedulability.run_fig5`);
* Figure 6 — Psi (fraction of exactly timing-accurate jobs) vs utilisation
  (:func:`repro.experiments.fig6_psi.run_fig6`);
* Figure 7 — Upsilon (normalised total quality) vs utilisation
  (:func:`repro.experiments.fig7_upsilon.run_fig7`);
* Table I — hardware resource overhead of the evaluated I/O controllers
  (:func:`repro.experiments.table1_resources.run_table1`);
* Supporting experiment — run-time execution of the offline schedule on the
  controller model vs CPU-instigated I/O over the NoC
  (:func:`repro.experiments.controller_sim.run_controller_sim`).
"""

from repro.experiments.artifacts import (
    ArtifactStore,
    accuracy_sweep_from_json,
    accuracy_sweep_to_json,
    config_fingerprint,
    sweep_result_from_json,
    sweep_result_to_json,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.controller_sim import ControllerSimResult, run_controller_sim
from repro.experiments.engine import CellResult, EvalJob, ExperimentEngine
from repro.experiments.fig5_schedulability import run_fig5
from repro.experiments.fig6_psi import run_fig6
from repro.experiments.fig7_upsilon import run_fig7
from repro.experiments.results import AccuracySweepResult, SweepResult
from repro.experiments.runner import ExperimentRunner
from repro.experiments.stats import SeriesStats, format_table, mean, median
from repro.experiments.table1_resources import run_table1

__all__ = [
    "ExperimentConfig",
    "ExperimentRunner",
    "ExperimentEngine",
    "EvalJob",
    "CellResult",
    "SweepResult",
    "AccuracySweepResult",
    "ArtifactStore",
    "config_fingerprint",
    "sweep_result_to_json",
    "sweep_result_from_json",
    "accuracy_sweep_to_json",
    "accuracy_sweep_from_json",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_table1",
    "run_controller_sim",
    "ControllerSimResult",
    "SeriesStats",
    "format_table",
    "mean",
    "median",
]
