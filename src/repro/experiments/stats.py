"""Small statistics and table-formatting helpers for the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        return float("nan")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Sample median (mean of the two central order statistics for even n)."""
    values = sorted(values)
    if not values:
        return float("nan")
    mid = len(values) // 2
    if len(values) % 2:
        return values[mid]
    return (values[mid - 1] + values[mid]) / 2


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Matches the classic "linear" definition (numpy's default): the sorted
    sample is treated as evenly spaced quantile knots and the answer is
    interpolated between the two surrounding order statistics.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q!r}")
    values = sorted(values)
    if not values:
        return float("nan")
    if len(values) == 1:
        return values[0]
    rank = (len(values) - 1) * (q / 100.0)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return values[int(rank)]
    fraction = rank - lower
    return values[lower] * (1 - fraction) + values[upper] * fraction


def std(values: Sequence[float]) -> float:
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


@dataclass(frozen=True)
class SeriesStats:
    """Summary statistics of one series of observations."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float = float("nan")

    @classmethod
    def of(cls, values: Sequence[float]) -> "SeriesStats":
        values = list(values)
        if not values:
            return cls(n=0, mean=float("nan"), std=0.0, minimum=float("nan"), maximum=float("nan"))
        return cls(
            n=len(values),
            mean=mean(values),
            std=std(values),
            minimum=min(values),
            maximum=max(values),
            median=median(values),
        )

    def confidence_halfwidth(self, z: float = 1.96) -> float:
        """Half-width of an approximate normal confidence interval of the mean."""
        if self.n == 0:
            return float("nan")
        return z * self.std / math.sqrt(self.n)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    *,
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])
