"""Result containers shared by the experiment engine, runner and artifacts."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.experiments.stats import format_table


@dataclass
class SweepResult:
    """Per-utilisation values of one metric for several methods."""

    name: str
    utilisations: List[float]
    series: Dict[str, List[float]]

    def value(self, method: str, utilisation: float) -> float:
        """The series value of ``method`` at ``utilisation``.

        Utilisation points are matched with :func:`math.isclose` — sweep points
        are floats that may have travelled through JSON or arithmetic, so exact
        equality (the old ``list.index`` behaviour) is a trap.
        """
        if method not in self.series:
            raise KeyError(
                f"unknown method {method!r}; available: {sorted(self.series)}"
            )
        for index, candidate in enumerate(self.utilisations):
            if math.isclose(candidate, utilisation, rel_tol=1e-9, abs_tol=1e-12):
                return self.series[method][index]
        raise KeyError(
            f"utilisation {utilisation!r} is not a sweep point of "
            f"{self.name!r} (points: {self.utilisations})"
        )

    def rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for index, utilisation in enumerate(self.utilisations):
            row: Dict[str, object] = {"U": utilisation}
            for method, values in self.series.items():
                row[method] = values[index]
            rows.append(row)
        return rows

    def to_table(self) -> str:
        return format_table(self.rows())


@dataclass
class AccuracySweepResult:
    """The paired Psi / Upsilon sweeps of Figures 6 and 7.

    ``systems_evaluated`` records, per utilisation point, how many schedulable
    systems the admission filter actually found; when it is smaller than the
    configured ``n_systems`` the reported means cover a smaller sample (the
    engine emits a ``UserWarning`` with the shortfall).
    """

    psi: SweepResult
    upsilon: SweepResult
    systems_evaluated: Dict[float, int] = field(default_factory=dict)
