"""Configuration of the evaluation experiments."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Tuple, Union

from repro.scenario import Scenario, create_scenario
from repro.scheduling.ga import GAConfig
from repro.taskgen import GeneratorConfig


def _paper_utilisations() -> List[float]:
    """The paper's sweep: 0.2 to 0.9 in steps of 0.05 (Figure 5)."""
    return [round(0.2 + 0.05 * i, 2) for i in range(15)]


def _accuracy_utilisations() -> List[float]:
    """Figures 6-7 report U in {0.3, 0.4, 0.5, 0.6, 0.7}."""
    return [0.3, 0.4, 0.5, 0.6, 0.7]


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters shared by the figure-regeneration experiments.

    The defaults are sized for quick runs (CI, benchmarks); ``paper_scale``
    returns the full configuration of the paper's evaluation (1000 systems per
    utilisation point, GA with population 300 over 500 generations).
    """

    #: Utilisation points of the schedulability sweep (Figure 5).
    schedulability_utilisations: Tuple[float, ...] = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
    #: Utilisation points of the timing-accuracy sweep (Figures 6-7).
    accuracy_utilisations: Tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7)
    #: Number of random systems generated per utilisation point.
    n_systems: int = 20
    #: Base RNG seed; each (utilisation, system index) pair derives its own stream.
    seed: int = 2020
    #: Synthetic-workload generator parameters.
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    #: Declarative scenario the sweeps evaluate (a :class:`~repro.scenario.Scenario`,
    #: a registered preset name, or inline JSON).  When set, systems are drawn
    #: from the scenario's workload (its utilisation overridden per sweep point)
    #: and ``generator``/``seed`` no longer influence generation.
    scenario: Optional[Union[str, Scenario]] = None
    #: GA search budget.
    ga: GAConfig = field(default_factory=lambda: GAConfig(population_size=40, generations=25))
    #: Whether to evaluate the GA at all (it dominates the run time).
    include_ga: bool = True
    #: Worker processes used by the experiment engine; ``1`` runs in-process.
    n_workers: int = 1
    #: Directory for persistent sweep artifacts and the resumable cell cache;
    #: ``None`` disables persistence entirely.
    artifact_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.n_systems, int) or self.n_systems <= 0:
            raise ValueError(f"n_systems must be a positive integer, got {self.n_systems!r}")
        if not isinstance(self.n_workers, int) or self.n_workers <= 0:
            raise ValueError(f"n_workers must be a positive integer, got {self.n_workers!r}")
        if self.scenario is not None:
            object.__setattr__(self, "scenario", create_scenario(self.scenario))
        # Materialise before validating: a single-pass iterable (e.g. a
        # generator) would otherwise validate fine yet leave the field empty.
        for field_name in ("schedulability_utilisations", "accuracy_utilisations"):
            values = tuple(getattr(self, field_name))
            object.__setattr__(self, field_name, values)
            self._validate_utilisations(field_name, values)

    @staticmethod
    def _validate_utilisations(name: str, values: Iterable[float]) -> None:
        if not values:
            raise ValueError(f"{name} must contain at least one utilisation point")
        for value in values:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"{name} entries must be numbers, got {value!r}")
            if not 0.0 < float(value) <= 1.0:
                raise ValueError(
                    f"{name} entries must lie in (0, 1], got {value!r}"
                )

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        return replace(self, **kwargs)

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A minutes-scale configuration used by the benchmark harness."""
        return cls(
            schedulability_utilisations=(0.2, 0.4, 0.6, 0.8),
            accuracy_utilisations=(0.3, 0.5, 0.7),
            n_systems=8,
            ga=GAConfig(population_size=24, generations=12),
        )

    @classmethod
    def smoke(cls) -> "ExperimentConfig":
        """A seconds-scale configuration used by unit/integration tests."""
        return cls(
            schedulability_utilisations=(0.3, 0.6),
            accuracy_utilisations=(0.3, 0.6),
            n_systems=3,
            ga=GAConfig(population_size=12, generations=6),
        )

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The paper's full evaluation setup (hours of compute)."""
        return cls(
            schedulability_utilisations=tuple(_paper_utilisations()),
            accuracy_utilisations=tuple(_accuracy_utilisations()),
            n_systems=1000,
            ga=GAConfig.paper_scale(),
        )
