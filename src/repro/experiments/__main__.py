"""CLI entry point for the experiment harness: ``python -m repro.experiments``.

Examples::

    # Reduced-scale Figure 5 on four workers, with a resumable artifact cache
    python -m repro.experiments fig5 --scale quick --workers 4 --artifact-dir artifacts/

    # The paper's full evaluation (hours of compute); interrupt and re-launch
    # with the same command line to resume from the cached cells
    python -m repro.experiments all --scale paper --workers 8 --artifact-dir artifacts/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core import logging as relog
from repro.core.profiling import DEFAULT_PROFILE_PATH, maybe_profile
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine
from repro.experiments.fig6_psi import run_fig6
from repro.experiments.fig7_upsilon import run_fig7
from repro.experiments.table1_resources import run_table1
from repro.scenario import create_scenario, format_scenario_listing
from repro.scheduling import available_schedulers, format_scheduler_listing, scheduler_registered
from repro.service import SchedulerSpec

FIGURES = ("fig5", "fig6", "fig7", "table1", "all")

_SCALES = {
    "smoke": ExperimentConfig.smoke,
    "quick": ExperimentConfig.quick,
    "paper": ExperimentConfig.paper_scale,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures and tables.",
    )
    parser.add_argument(
        "figure",
        nargs="?",
        choices=FIGURES,
        help="which figure/table to regenerate ('all' runs everything; "
        "fig6 and fig7 share one accuracy sweep)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="quick",
        help="experiment scale preset (default: quick)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the evaluation engine (default: 1)",
    )
    parser.add_argument(
        "--artifact-dir",
        default=None,
        metavar="DIR",
        help="directory for persistent sweep artifacts and the resumable "
        "cell cache (omit to keep everything in memory)",
    )
    parser.add_argument(
        "--no-ga",
        action="store_true",
        help="skip the GA method (it dominates the run time)",
    )
    parser.add_argument(
        "--methods",
        nargs="+",
        default=None,
        metavar="SPEC",
        help="run only these schedulers in the sweeps; each entry is a "
        "registered name or a spec string such as 'ga:generations=10' "
        "(default: every method of the figure)",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME_OR_JSON",
        help="evaluate a declarative scenario instead of the default workload; "
        "a registered preset name (see --list-scenarios) or inline "
        "repro/scenario JSON",
    )
    parser.add_argument(
        "--campaign",
        default=None,
        metavar="SPEC_OR_FILE",
        help="run a declarative campaign (a repro/campaign JSON file or inline "
        "JSON) instead of a figure, honouring --workers and --artifact-dir, "
        "and print its Markdown report; see `python -m repro.campaign` for "
        "the full campaign CLI (resume, report formats)",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const=DEFAULT_PROFILE_PATH,
        default=None,
        metavar="PSTATS",
        help="run under cProfile: dump raw stats to PSTATS (default: "
        f"{DEFAULT_PROFILE_PATH}) and print the top-20 cumulative summary "
        "to stderr",
    )
    parser.add_argument(
        "--list-methods",
        action="store_true",
        help="list the registered scheduling methods and exit",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list the registered scenario presets and exit",
    )
    parser.add_argument(
        "--list-execution-models",
        action="store_true",
        help="list the registered run-time execution models and exit "
        "(simulated via `python -m repro.runtime`)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the run's metrics (Prometheus text exposition: cell "
        "counters and evaluate-latency histograms) to FILE",
    )
    relog.add_log_level_argument(parser)
    return parser


def validate_methods(
    parser: argparse.ArgumentParser, methods: Optional[Sequence[str]]
) -> Optional[Sequence[str]]:
    """Fail fast (with the parser's usage message) on bad ``--methods`` entries."""
    if methods is None:
        return None
    for method in methods:
        try:
            spec = SchedulerSpec.parse(method)
        except ValueError as error:
            parser.error(f"--methods: {error}")
        if not scheduler_registered(spec.name):
            parser.error(
                f"--methods: unknown scheduler {spec.name!r}; "
                f"registered: {', '.join(available_schedulers())}"
            )
    return list(methods)


def make_config(args: argparse.Namespace) -> ExperimentConfig:
    config = _SCALES[args.scale]()
    overrides = {"n_workers": args.workers, "artifact_dir": args.artifact_dir}
    if args.no_ga:
        overrides["include_ga"] = False
    if args.scenario is not None:
        overrides["scenario"] = create_scenario(args.scenario)
    return config.with_overrides(**overrides)


def run_campaign_cli(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """``--campaign``: run a campaign grid and print its Markdown report.

    Resumes automatically from ``--artifact-dir`` (the campaign CLI's
    ``--resume`` semantics are deliberate there; this cross-link favours
    convenience) and reuses ``--workers`` for the scheduling service.
    """
    from repro.campaign import CampaignRunner, load_campaign
    from repro.campaign.__main__ import _write_runner_metrics

    try:
        spec = load_campaign(args.campaign)
    except (ValueError, KeyError) as error:
        parser.error(f"--campaign: {error}")
    with CampaignRunner(
        spec, artifact_dir=args.artifact_dir, n_workers=args.workers
    ) as runner:
        result = runner.run()
        if args.metrics_out is not None:
            _write_runner_metrics(args.metrics_out, runner)
    print(
        f"campaign {spec.name!r} ({spec.content_key()}): "
        f"{result.evaluated} evaluated, {result.resumed} resumed",
        file=sys.stderr,
    )
    print(result.report().to_markdown())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    relog.configure_from_args(args)
    if args.list_methods or args.list_scenarios or args.list_execution_models:
        if args.list_methods:
            print(format_scheduler_listing())
        if args.list_scenarios:
            print(format_scenario_listing())
        if args.list_execution_models:
            from repro.runtime import format_execution_model_listing

            print(format_execution_model_listing())
        return 0
    if args.campaign is not None:
        if args.figure is not None:
            parser.error("--campaign replaces the figure argument; pass one or the other")
        if args.scenario is not None:
            parser.error("--campaign carries its own scenarios; --scenario does not apply")
        if args.methods is not None:
            parser.error("--campaign carries its own methods; --methods does not apply")
        if args.no_ga:
            parser.error(
                "--no-ga does not apply to --campaign; drop GA methods from the spec"
            )
        with maybe_profile(args.profile):
            return run_campaign_cli(parser, args)
    if args.figure is None:
        parser.error("a figure is required (or use --list-methods/--list-scenarios)")
    try:
        config = make_config(args)
    except (ValueError, KeyError) as error:
        parser.error(str(error))
    methods = validate_methods(parser, args.methods)
    if methods is not None and args.figure == "table1":
        parser.error("--methods does not apply to table1 (it has no method sweep)")

    wants = (args.figure,) if args.figure != "all" else ("fig5", "fig6", "fig7", "table1")

    with maybe_profile(args.profile):
        return _run_figures(args, config, methods, wants)


def _run_figures(args, config, methods, wants) -> int:
    if "table1" in wants:
        if methods is not None:
            print(
                "note: --methods does not apply to table1; "
                "regenerating the full table",
                file=sys.stderr,
            )
        artifact_path = (
            Path(args.artifact_dir) / "table1.json" if args.artifact_dir else None
        )
        run_table1(verbose=True, artifact_path=artifact_path)
        print()

    needs_engine = any(figure in wants for figure in ("fig5", "fig6", "fig7"))
    metrics_snapshot = None
    if needs_engine:
        with ExperimentEngine(config) as engine:
            if "fig5" in wants:
                result = engine.schedulability_sweep(methods=methods)
                print("Figure 5 — fraction of schedulable systems")
                print(result.to_table())
                print()
            if "fig6" in wants or "fig7" in wants:
                accuracy = engine.accuracy_sweep(methods=methods)
                if "fig6" in wants:
                    run_fig6(config, verbose=True, precomputed=accuracy)
                    print()
                if "fig7" in wants:
                    run_fig7(config, verbose=True, precomputed=accuracy)
                    print()
            metrics_snapshot = engine.metrics()

    if args.metrics_out is not None:
        from repro.obs import MetricsRegistry, write_metrics_file

        if metrics_snapshot is None:
            # A table1-only run uses no engine; emit a valid empty exposition.
            metrics_snapshot = MetricsRegistry().snapshot()
        write_metrics_file(args.metrics_out, metrics_snapshot)
        relog.info("metrics-written", path=args.metrics_out)

    if args.artifact_dir:
        print(f"artifacts written under {args.artifact_dir}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
