"""Table I — hardware resource overhead of the evaluated I/O controllers.

The structural resource estimator of :mod:`repro.hardware.resources` is used
in place of FPGA synthesis (see DESIGN.md for the substitution rationale).
``run_table1`` produces one row per design with both the modelled and the
published values, plus the headline ratios the paper quotes in the text
(proposed vs MicroBlaze-full LUTs/registers, vs GPIOCP, and the power ratios
vs the MicroBlazes).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.experiments.artifacts import table1_to_dict
from repro.experiments.stats import format_table
from repro.hardware.library import PrimitiveLibrary
from repro.hardware.resources import (
    PUBLISHED_TABLE1,
    HardwareDesign,
    ResourceEstimate,
    estimate_all,
    reference_designs,
)

#: Display order matching the paper's Table I.
TABLE1_ORDER = (
    "proposed",
    "microblaze-basic",
    "microblaze-full",
    "uart",
    "spi",
    "can",
    "gpiocp",
)


@dataclass
class Table1Result:
    """The regenerated Table I plus the headline ratios quoted in the paper."""

    estimates: Dict[str, ResourceEstimate]
    published: Dict[str, Dict[str, float]]

    def rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for name in TABLE1_ORDER:
            estimate = self.estimates[name]
            published = self.published[name]
            rows.append(
                {
                    "design": name,
                    "luts": estimate.luts,
                    "luts(paper)": published["luts"],
                    "registers": estimate.registers,
                    "regs(paper)": published["registers"],
                    "dsps": estimate.dsps,
                    "bram_kb": estimate.bram_kb,
                    "power_mw": round(estimate.power_mw, 1),
                    "power(paper)": published["power_mw"],
                }
            )
        return rows

    def to_table(self) -> str:
        return format_table(self.rows())

    # -- headline ratios quoted in Section V-B ----------------------------------

    def ratios(self) -> Dict[str, float]:
        proposed = self.estimates["proposed"]
        mb_basic = self.estimates["microblaze-basic"]
        mb_full = self.estimates["microblaze-full"]
        gpiocp = self.estimates["gpiocp"]
        return {
            # "utilises significantly less hardware than a MB-F (23.6% LUTs, 22.4% registers)"
            "luts_vs_mb_full": proposed.luts / mb_full.luts,
            "registers_vs_mb_full": proposed.registers / mb_full.registers,
            # "similar to a MB-B (135.4% LUTs, 185.6% registers)"
            "luts_vs_mb_basic": proposed.luts / mb_basic.luts,
            "registers_vs_mb_basic": proposed.registers / mb_basic.registers,
            # "additional 30.5% LUTs, 52.2% registers" compared with GPIOCP
            "extra_luts_vs_gpiocp": proposed.luts / gpiocp.luts - 1.0,
            "extra_registers_vs_gpiocp": proposed.registers / gpiocp.registers - 1.0,
            # "only 8.7% and 4.6% power ... compared to the MB-B and MB-F"
            "power_vs_mb_basic": proposed.power_mw / mb_basic.power_mw,
            "power_vs_mb_full": proposed.power_mw / mb_full.power_mw,
        }

    def save(self, path: Union[str, Path]) -> Path:
        """Persist the regenerated table as a versioned JSON artifact."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = table1_to_dict(self.rows(), self.ratios())
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return path


def run_table1(
    designs: Optional[Dict[str, HardwareDesign]] = None,
    library: Optional[PrimitiveLibrary] = None,
    *,
    verbose: bool = False,
    artifact_path: Optional[Union[str, Path]] = None,
) -> Table1Result:
    """Regenerate Table I from the structural resource model.

    When ``artifact_path`` is given the regenerated rows and headline ratios
    are additionally written there as a versioned JSON artifact.
    """
    estimates = estimate_all(designs or reference_designs(), library)
    result = Table1Result(estimates=estimates, published=dict(PUBLISHED_TABLE1))
    if artifact_path is not None:
        result.save(artifact_path)
    if verbose:
        print("Table I — hardware overhead of the evaluated I/O controllers")
        print(result.to_table())
        print()
        for key, value in result.ratios().items():
            print(f"  {key}: {value:.3f}")
    return result


def main() -> None:  # pragma: no cover - convenience CLI
    run_table1(verbose=True)


if __name__ == "__main__":  # pragma: no cover
    main()
