"""The generic experiment runner behind Figures 5-7.

The runner generates random systems per utilisation point (with per-point,
per-system deterministic seeds), evaluates every scheduling method on each
system and aggregates:

* the fraction of schedulable systems per method (Figure 5);
* the mean Psi and Upsilon per method over the systems that the proposed
  methods can schedule (Figures 6 and 7) — for the GA the best-Psi and the
  best-Upsilon points of the Pareto front are reported, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import FPSOnlineTest
from repro.core.metrics import aggregate_psi, aggregate_upsilon
from repro.core.task import TaskSet
from repro.experiments.config import ExperimentConfig
from repro.experiments.stats import format_table, mean
from repro.scheduling import (
    FPSOfflineScheduler,
    GAScheduler,
    GPIOCPScheduler,
    HeuristicScheduler,
    SystemScheduleResult,
)
from repro.taskgen import SystemGenerator

#: Canonical method ordering used in result tables.
SCHEDULABILITY_METHODS = ("fps-offline", "fps-online", "gpiocp", "static", "ga")
ACCURACY_METHODS = ("fps", "gpiocp", "static", "ga")


@dataclass
class SweepResult:
    """Per-utilisation values of one metric for several methods."""

    name: str
    utilisations: List[float]
    series: Dict[str, List[float]]

    def value(self, method: str, utilisation: float) -> float:
        index = self.utilisations.index(utilisation)
        return self.series[method][index]

    def rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for index, utilisation in enumerate(self.utilisations):
            row: Dict[str, object] = {"U": utilisation}
            for method, values in self.series.items():
                row[method] = values[index]
            rows.append(row)
        return rows

    def to_table(self) -> str:
        return format_table(self.rows())


@dataclass
class AccuracySweepResult:
    """The paired Psi / Upsilon sweeps of Figures 6 and 7."""

    psi: SweepResult
    upsilon: SweepResult
    systems_evaluated: Dict[float, int] = field(default_factory=dict)


class ExperimentRunner:
    """Drives the synthetic-system sweeps of the paper's evaluation."""

    def __init__(self, config: Optional[ExperimentConfig] = None):
        self.config = config or ExperimentConfig()

    # -- system generation -------------------------------------------------------

    def _generator(self, utilisation: float, system_index: int) -> SystemGenerator:
        seed = (
            self.config.seed
            + int(round(utilisation * 100)) * 10_000
            + system_index
        )
        return SystemGenerator(self.config.generator, rng=seed)

    def generate_system(self, utilisation: float, system_index: int) -> TaskSet:
        return self._generator(utilisation, system_index).generate(utilisation)

    # -- figure 5 -----------------------------------------------------------------

    def schedulability_sweep(
        self, utilisations: Optional[Sequence[float]] = None
    ) -> SweepResult:
        """Fraction of schedulable systems per method and utilisation (Figure 5)."""
        config = self.config
        utilisations = list(utilisations or config.schedulability_utilisations)
        methods = [m for m in SCHEDULABILITY_METHODS if config.include_ga or m != "ga"]
        series: Dict[str, List[float]] = {method: [] for method in methods}

        fps_online = FPSOnlineTest()
        for utilisation in utilisations:
            counts = {method: 0 for method in methods}
            for system_index in range(config.n_systems):
                task_set = self.generate_system(utilisation, system_index)
                counts["fps-offline"] += FPSOfflineScheduler().schedule_taskset(task_set).schedulable
                counts["fps-online"] += fps_online.is_schedulable(task_set)
                counts["gpiocp"] += GPIOCPScheduler().schedule_taskset(task_set).schedulable
                static_result = HeuristicScheduler().schedule_taskset(task_set)
                counts["static"] += static_result.schedulable
                if config.include_ga:
                    ga_result = GAScheduler(config.ga).schedule_taskset(task_set)
                    counts["ga"] += ga_result.schedulable
            for method in methods:
                series[method].append(counts[method] / config.n_systems)

        return SweepResult(name="schedulability", utilisations=utilisations, series=series)

    # -- figures 6 and 7 -----------------------------------------------------------

    def accuracy_sweep(
        self, utilisations: Optional[Sequence[float]] = None
    ) -> AccuracySweepResult:
        """Mean Psi and Upsilon per method over schedulable systems (Figures 6-7).

        Following the paper, the sweep evaluates the offline methods on systems
        that the proposed scheduling can handle (the static heuristic is used
        as the admission filter); the GA contributes the best-Psi point of its
        Pareto front to Figure 6 and the best-Upsilon point to Figure 7.
        """
        config = self.config
        utilisations = list(utilisations or config.accuracy_utilisations)
        methods = [m for m in ACCURACY_METHODS if config.include_ga or m != "ga"]
        psi_series: Dict[str, List[float]] = {method: [] for method in methods}
        upsilon_series: Dict[str, List[float]] = {method: [] for method in methods}
        systems_evaluated: Dict[float, int] = {}

        for utilisation in utilisations:
            per_method_psi: Dict[str, List[float]] = {method: [] for method in methods}
            per_method_upsilon: Dict[str, List[float]] = {method: [] for method in methods}
            evaluated = 0
            system_index = 0
            attempts = 0
            max_attempts = config.n_systems * 10
            while evaluated < config.n_systems and attempts < max_attempts:
                attempts += 1
                task_set = self.generate_system(utilisation, system_index)
                system_index += 1
                static_result = HeuristicScheduler().schedule_taskset(task_set)
                if not static_result.schedulable:
                    continue
                evaluated += 1

                fps_result = FPSOfflineScheduler().schedule_taskset(task_set)
                gpiocp_result = GPIOCPScheduler().schedule_taskset(task_set)
                per_method_psi["fps"].append(fps_result.psi)
                per_method_upsilon["fps"].append(fps_result.upsilon)
                per_method_psi["gpiocp"].append(gpiocp_result.psi)
                per_method_upsilon["gpiocp"].append(gpiocp_result.upsilon)
                per_method_psi["static"].append(static_result.psi)
                per_method_upsilon["static"].append(static_result.upsilon)

                if config.include_ga:
                    ga_result = GAScheduler(config.ga).schedule_taskset(task_set)
                    best_psi, best_upsilon = ga_best_objectives(ga_result)
                    per_method_psi["ga"].append(best_psi)
                    per_method_upsilon["ga"].append(best_upsilon)

            systems_evaluated[utilisation] = evaluated
            for method in methods:
                psi_series[method].append(mean(per_method_psi[method]))
                upsilon_series[method].append(mean(per_method_upsilon[method]))

        return AccuracySweepResult(
            psi=SweepResult(name="psi", utilisations=utilisations, series=psi_series),
            upsilon=SweepResult(
                name="upsilon", utilisations=utilisations, series=upsilon_series
            ),
            systems_evaluated=systems_evaluated,
        )


def ga_best_objectives(result: SystemScheduleResult) -> Tuple[float, float]:
    """Aggregate the GA's best-Psi and best-Upsilon Pareto points across devices.

    Each per-device search yields its own Pareto front; the system-level
    figures use the best-Psi (respectively best-Upsilon) schedule of every
    partition, aggregated job-weighted, mirroring how the paper reports "the
    best result obtained for each objective".
    """
    best_psi_schedules = []
    best_upsilon_schedules = []
    for device_result in result.per_device.values():
        info = device_result.info
        psi_schedule = info.get("best_psi_schedule") or device_result.schedule
        upsilon_schedule = info.get("best_upsilon_schedule") or device_result.schedule
        if psi_schedule is not None:
            best_psi_schedules.append(psi_schedule)
        if upsilon_schedule is not None:
            best_upsilon_schedules.append(upsilon_schedule)
    best_psi = aggregate_psi(best_psi_schedules) if best_psi_schedules else 0.0
    best_upsilon = aggregate_upsilon(best_upsilon_schedules) if best_upsilon_schedules else 0.0
    return best_psi, best_upsilon
