"""The generic experiment runner behind Figures 5-7.

The runner is a thin facade over :class:`repro.experiments.engine.ExperimentEngine`:
sweeps are decomposed into per-``(utilisation, system, method)`` evaluation
cells, executed serially or across a worker pool (``config.n_workers``) and —
when ``config.artifact_dir`` is set — journalled to a resumable on-disk cache.
Per-``(utilisation, system)`` deterministic seeding makes the aggregated
series bit-identical at any worker count.

The sweep semantics are unchanged from the historical in-process runner:

* the fraction of schedulable systems per method (Figure 5);
* the mean Psi and Upsilon per method over the systems that the proposed
  methods can schedule (Figures 6 and 7) — for the GA the best-Psi and the
  best-Upsilon points of the Pareto front are reported, as in the paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.task import TaskSet
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import (
    ACCURACY_METHODS,
    SCHEDULABILITY_METHODS,
    ExperimentEngine,
    ga_best_objectives,
)
from repro.experiments.results import AccuracySweepResult, SweepResult

__all__ = [
    "ExperimentRunner",
    "SweepResult",
    "AccuracySweepResult",
    "SCHEDULABILITY_METHODS",
    "ACCURACY_METHODS",
    "ga_best_objectives",
]


class ExperimentRunner:
    """Drives the synthetic-system sweeps of the paper's evaluation."""

    def __init__(self, config: Optional[ExperimentConfig] = None):
        self.config = config or ExperimentConfig()

    # -- system generation -------------------------------------------------------

    def generate_system(self, utilisation: float, system_index: int) -> TaskSet:
        from repro.experiments.engine import generate_system

        return generate_system(self.config, utilisation, system_index)

    # -- figure 5 -----------------------------------------------------------------

    def schedulability_sweep(
        self, utilisations: Optional[Sequence[float]] = None
    ) -> SweepResult:
        """Fraction of schedulable systems per method and utilisation (Figure 5)."""
        with ExperimentEngine(self.config) as engine:
            return engine.schedulability_sweep(utilisations)

    # -- figures 6 and 7 -----------------------------------------------------------

    def accuracy_sweep(
        self, utilisations: Optional[Sequence[float]] = None
    ) -> AccuracySweepResult:
        """Mean Psi and Upsilon per method over schedulable systems (Figures 6-7)."""
        with ExperimentEngine(self.config) as engine:
            return engine.accuracy_sweep(utilisations)
