"""Parallel, cache-backed evaluation engine behind the figure sweeps.

The engine decomposes every sweep into independent **evaluation cells** — one
:class:`EvalJob` per ``(utilisation, system index, method)`` — and executes
them through a worker pool (:class:`concurrent.futures.ProcessPoolExecutor`;
``n_workers=1`` runs serially in-process).  Each cell regenerates its system
from the per-``(utilisation, system)`` deterministic seed, so a cell's value
depends only on the configuration and the cell coordinates: results are
bit-identical at any worker count, and cells can be cached on disk and reused
across runs (see :mod:`repro.experiments.artifacts`).

Scheduling methods are resolved through the scheduler registry
(:mod:`repro.scheduling.registry`); registering a new method makes it
available to every sweep without touching this module.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.memo import get_memo
from repro.core.serialization import PayloadVersionError, content_hash
from repro.core.task import TaskSet
from repro.experiments.artifacts import (
    ArtifactStore,
    accuracy_sweep_from_dict,
    accuracy_sweep_to_dict,
    sweep_result_from_dict,
    sweep_result_to_dict,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import AccuracySweepResult, SweepResult
from repro.experiments.stats import mean
from repro.obs.metrics import REQUEST_LATENCY_MS, REQUESTS_TOTAL, MetricsRegistry
from repro.scenario import Scenario, materialize

# Back-compat re-export: the adapter now lives with the other schedulers, so
# ``create_scheduler("fps-online")`` works without importing the experiments
# package at all.
from repro.scheduling import FPSOnlineSchedulabilityMethod  # noqa: F401
from repro.service import ScheduleRequest, SchedulerSpec, execute_request

# Back-compat re-export: the best-per-objective aggregation moved into the
# scheduling service alongside the rest of the response building.
from repro.service import ga_best_objectives  # noqa: F401
from repro.taskgen import SystemGenerator

#: Canonical method ordering used in result tables.
SCHEDULABILITY_METHODS = ("fps-offline", "fps-online", "gpiocp", "static", "ga")
ACCURACY_METHODS = ("fps", "gpiocp", "static", "ga")

#: Method-name aliases folded together for cache keys ("fps" is "fps-offline").
_CANONICAL_METHOD = {"fps": "fps-offline", "heuristic": "static"}

#: Offset decorrelating the GA's derived RNG stream from the generator's.
_GA_SEED_OFFSET = 1_000_003


# -- evaluation cells ----------------------------------------------------------


@dataclass(frozen=True)
class EvalJob:
    """One picklable unit of sweep work: evaluate ``method`` on one system.

    ``method`` is a registered scheduler name or a full spec string such as
    ``"ga:generations=10"`` (see :class:`repro.service.SchedulerSpec`).
    """

    utilisation: float
    system_index: int
    method: str


@dataclass(frozen=True)
class CellResult:
    """Outcome of one evaluation cell.

    ``psi`` / ``upsilon`` are the metrics of the method's produced schedule;
    for the GA, ``best_psi`` / ``best_upsilon`` carry the best-per-objective
    Pareto points that Figures 6 and 7 report (for single-schedule methods
    they simply equal ``psi`` / ``upsilon``).
    """

    schedulable: bool
    psi: float
    upsilon: float
    best_psi: float
    best_upsilon: float

    def to_record(self) -> Dict[str, Any]:
        return {
            "s": bool(self.schedulable),
            "psi": self.psi,
            "ups": self.upsilon,
            "bpsi": self.best_psi,
            "bups": self.best_upsilon,
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "CellResult":
        return cls(
            schedulable=bool(record["s"]),
            psi=float(record["psi"]),
            upsilon=float(record["ups"]),
            best_psi=float(record["bpsi"]),
            best_upsilon=float(record["bups"]),
        )


def cell_seed(config: ExperimentConfig, utilisation: float, system_index: int) -> int:
    """The deterministic RNG seed of one ``(utilisation, system)`` pair."""
    return config.seed + int(round(utilisation * 100)) * 10_000 + system_index


def cell_scenario(config: ExperimentConfig, utilisation: float) -> Scenario:
    """The configured scenario with the cell's utilisation pinned.

    Only valid for scenario-backed configurations; the pinned-utilisation copy
    is what both system generation and the cell's schedule request use, so the
    two always agree on which synthetic system the cell evaluates.
    """
    assert config.scenario is not None
    # Every cell of a sweep re-pins the same scenario at the same few
    # utilisation points (once per method per system); the pinned copy is a
    # frozen value, so warm workers share it from a per-process memo.
    return get_memo("cell-scenario").get_or_create(
        (config.scenario.content_key(), utilisation),
        lambda: config.scenario.with_utilisation(utilisation),
    )


def generate_system(
    config: ExperimentConfig, utilisation: float, system_index: int
) -> TaskSet:
    """Regenerate the synthetic system of one cell (pure in its arguments).

    Scenario-backed configurations draw from the scenario's workload (with the
    sweep utilisation pinned); legacy configurations keep the historical
    ``seed``/``generator`` derivation, so existing cell caches stay valid.
    """
    if config.scenario is not None:
        return materialize(
            config.scenario, system_index, utilisation=utilisation
        ).task_set
    seed = cell_seed(config, utilisation, system_index)
    # Same per-worker reuse as the scenario path (which memoises inside
    # materialize): each method of a sweep re-draws the same cell system.
    return get_memo("generate-system", 256).get_or_create(
        (config.generator, seed, utilisation),
        lambda: SystemGenerator(config.generator, rng=seed).generate(utilisation),
    )


def cell_spec(config: ExperimentConfig, job: EvalJob) -> SchedulerSpec:
    """The fully-pinned scheduler spec one cell executes.

    ``job.method`` is parsed as a spec string; for the GA, the configured
    ``GAConfig`` supplies defaults under any options the spec pins, and the
    RNG seed is derived from the cell seed whenever neither pins one — so GA
    cells are as deterministic (and as worker-count-independent) as every
    other method.
    """
    spec = SchedulerSpec.parse(job.method)
    if spec.name != "ga":
        return spec
    options = asdict(config.ga)
    options.update(spec.options_dict())
    if options.get("seed") is None:
        options["seed"] = (
            cell_seed(config, job.utilisation, job.system_index) + _GA_SEED_OFFSET
        )
    return SchedulerSpec("ga", options)


def evaluate_cell(config: ExperimentConfig, job: EvalJob) -> CellResult:
    """Evaluate one cell; a pure function of ``(config, job)``.

    Cells execute through the scheduling service's pure request path
    (:func:`repro.service.execute_request`), so a sweep cell and a direct
    service request with the same content are the same computation.  With a
    scenario-backed configuration the request itself is scenario-backed — the
    worker materialises the system from the declarative description, exactly
    as a direct ``--scenario`` service request would.
    """
    if config.scenario is not None:
        request = ScheduleRequest(
            scenario=cell_scenario(config, job.utilisation),
            system_index=job.system_index,
            spec=cell_spec(config, job),
        )
    else:
        task_set = generate_system(config, job.utilisation, job.system_index)
        request = ScheduleRequest(task_set=task_set, spec=cell_spec(config, job))
    response = execute_request(request)
    return CellResult(
        schedulable=response.schedulable,
        psi=response.psi,
        upsilon=response.upsilon,
        best_psi=response.best_psi,
        best_upsilon=response.best_upsilon,
    )


# -- worker-process plumbing ---------------------------------------------------

_WORKER_CONFIG: Optional[ExperimentConfig] = None


def _init_worker(config: ExperimentConfig) -> None:
    global _WORKER_CONFIG
    _WORKER_CONFIG = config


def _worker_evaluate(job: EvalJob) -> CellResult:
    assert _WORKER_CONFIG is not None, "worker used before initialisation"
    return evaluate_cell(_WORKER_CONFIG, job)


def _worker_evaluate_timed(job: EvalJob) -> Tuple[CellResult, float]:
    """Worker entry returning the cell plus its in-worker compute seconds.

    Timing in the worker keeps pooled latency honest — the parent's iteration
    order would otherwise fold queueing into the compute time.
    """
    started = time.monotonic()
    cell = _worker_evaluate(job)
    return cell, time.monotonic() - started


# -- the engine ----------------------------------------------------------------


class ExperimentEngine:
    """Executes sweeps as parallel evaluation cells with optional persistence.

    Parameters default to what the configuration carries (``config.n_workers``
    and ``config.artifact_dir``); both can be overridden per engine.  Use the
    engine as a context manager (or call :meth:`close`) to release the worker
    pool and the artifact journal.
    """

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        *,
        n_workers: Optional[int] = None,
        artifact_dir: Optional[str] = None,
        store: Optional[ArtifactStore] = None,
    ):
        self.config = config or ExperimentConfig()
        self.n_workers = n_workers if n_workers is not None else self.config.n_workers
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        directory = artifact_dir if artifact_dir is not None else self.config.artifact_dir
        if store is not None:
            self.store: Optional[ArtifactStore] = store
            self._owns_store = False
        elif directory is not None:
            self.store = ArtifactStore(directory, self.config)
            self._owns_store = True
        else:
            self.store = None
            self._owns_store = False
        self._executor: Optional[ProcessPoolExecutor] = None
        #: Cells actually evaluated (cache misses) over this engine's lifetime.
        self.cells_computed = 0
        #: Cell counters and evaluate-latency histogram (kind="experiment").
        self.registry = MetricsRegistry()

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        if self.store is not None and self._owns_store:
            self.store.close()

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- cell execution ----------------------------------------------------------

    def run_cells(self, jobs: Sequence[EvalJob]) -> Dict[EvalJob, CellResult]:
        """Evaluate ``jobs``, serving cache hits from the artifact store.

        Results are keyed by the input jobs; freshly computed cells are
        journalled to the store as they complete, so an interrupted call
        leaves every finished cell reusable.
        """
        results: Dict[EvalJob, CellResult] = {}
        pending: List[EvalJob] = []
        for job in jobs:
            cached = self._cache_get(job)
            if cached is not None:
                results[job] = cached
                self._count_cell("hit")
            else:
                pending.append(job)

        if not pending:
            return results

        if self.n_workers == 1:
            for job in pending:
                started = time.monotonic()
                cell = evaluate_cell(self.config, job)
                self._observe_evaluate(time.monotonic() - started)
                self._record(job, cell)
                results[job] = cell
                self._count_cell("miss")
        else:
            chunksize = max(1, len(pending) // (self.n_workers * 4))
            executor = self._get_executor()
            for job, (cell, duration_s) in zip(
                pending,
                executor.map(_worker_evaluate_timed, pending, chunksize=chunksize),
            ):
                self._observe_evaluate(duration_s)
                self._record(job, cell)
                results[job] = cell
                self._count_cell("miss")
        return results

    def _count_cell(self, cache: str) -> None:
        self.registry.counter_inc(
            REQUESTS_TOTAL,
            help="Requests answered, by kind and cache status.",
            kind="experiment",
            cache=cache,
        )

    def _observe_evaluate(self, duration_s: float) -> None:
        self.registry.histogram_observe(
            REQUEST_LATENCY_MS,
            max(0.0, duration_s) * 1000.0,
            help="Per-phase request latency in milliseconds.",
            kind="experiment",
            phase="evaluate",
        )

    def metrics(self) -> Dict[str, Any]:
        """A merged metrics snapshot of this engine (see :mod:`repro.obs`)."""
        return self.registry.snapshot()

    def _get_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_init_worker,
                initargs=(self.config,),
            )
        return self._executor

    def _cache_key(self, job: EvalJob):
        # Canonicalise the method so aliases and differently-ordered spec
        # strings ("ga:b=1,a=2" vs "ga:a=2,b=1") share one cache entry.  Bare
        # canonical names map to themselves, keeping old journals readable.
        spec = SchedulerSpec.parse(job.method)
        name = _CANONICAL_METHOD.get(spec.name, spec.name)
        method = str(SchedulerSpec(name, spec.options))
        return (job.utilisation, job.system_index, method)

    def _cache_get(self, job: EvalJob) -> Optional[CellResult]:
        if self.store is None:
            return None
        record = self.store.get_cell(self._cache_key(job))
        if record is None:
            return None
        return CellResult.from_record(record)

    def _record(self, job: EvalJob, cell: CellResult) -> None:
        self.cells_computed += 1
        if self.store is not None:
            self.store.put_cell(self._cache_key(job), cell.to_record())

    # -- the sweeps --------------------------------------------------------------

    def generate_system(self, utilisation: float, system_index: int) -> TaskSet:
        return generate_system(self.config, utilisation, system_index)

    def schedulability_methods(self) -> List[str]:
        return [m for m in SCHEDULABILITY_METHODS if self.config.include_ga or m != "ga"]

    def accuracy_methods(self) -> List[str]:
        return [m for m in ACCURACY_METHODS if self.config.include_ga or m != "ga"]

    def schedulability_sweep(
        self,
        utilisations: Optional[Sequence[float]] = None,
        *,
        methods: Optional[Sequence[str]] = None,
    ) -> SweepResult:
        """Fraction of schedulable systems per method and utilisation (Figure 5).

        ``methods`` restricts (or re-parameterises) the evaluated schedulers;
        entries are registered names or spec strings such as
        ``"ga:generations=10"``.  The default is every method of the paper's
        Figure 5, honouring ``config.include_ga``.
        """
        config = self.config
        utilisations = list(utilisations or config.schedulability_utilisations)
        methods = list(methods) if methods is not None else self.schedulability_methods()

        artifact = self._sweep_artifact_name("schedulability", utilisations, methods)
        cached = self._load_sweep_artifact(artifact)
        if cached is not None:
            return cached

        jobs = [
            EvalJob(utilisation, system_index, method)
            for utilisation in utilisations
            for system_index in range(config.n_systems)
            for method in methods
        ]
        cells = self.run_cells(jobs)

        series: Dict[str, List[float]] = {method: [] for method in methods}
        for utilisation in utilisations:
            for method in methods:
                count = sum(
                    cells[EvalJob(utilisation, system_index, method)].schedulable
                    for system_index in range(config.n_systems)
                )
                series[method].append(count / config.n_systems)

        result = SweepResult(
            name="schedulability", utilisations=utilisations, series=series
        )
        if self.store is not None:
            self.store.save_result(artifact, sweep_result_to_dict(result))
        return result

    def accuracy_sweep(
        self,
        utilisations: Optional[Sequence[float]] = None,
        *,
        methods: Optional[Sequence[str]] = None,
    ) -> AccuracySweepResult:
        """Mean Psi and Upsilon per method over schedulable systems (Figures 6-7).

        Following the paper, the sweep evaluates the offline methods on systems
        that the proposed scheduling can handle (the static heuristic is used
        as the admission filter, whether or not ``"static"`` is among the
        reported ``methods``); the GA contributes the best-Psi point of its
        Pareto front to Figure 6 and the best-Upsilon point to Figure 7.
        """
        config = self.config
        utilisations = list(utilisations or config.accuracy_utilisations)
        methods = list(methods) if methods is not None else self.accuracy_methods()

        artifact = self._sweep_artifact_name("accuracy", utilisations, methods)
        if self.store is not None:
            payload = self.store.load_result(artifact)
            if payload is not None:
                try:
                    return accuracy_sweep_from_dict(payload)
                except PayloadVersionError:
                    raise  # newer artifact: never recompute-and-overwrite it
                except (ValueError, KeyError, TypeError):
                    pass  # corrupt/legacy artifact: recompute

        psi_series: Dict[str, List[float]] = {method: [] for method in methods}
        upsilon_series: Dict[str, List[float]] = {method: [] for method in methods}
        systems_evaluated: Dict[float, int] = {}

        # "static" doubles as the admission filter, so its cells come from
        # _admit_systems rather than a second evaluation; the GA (under any
        # spec parameters) reports its best-per-objective Pareto points.
        other_methods = [method for method in methods if method != "static"]
        ga_methods = {
            method for method in methods if SchedulerSpec.parse(method).name == "ga"
        }
        for utilisation in utilisations:
            admitted, static_cells = self._admit_systems(utilisation)
            jobs = [
                EvalJob(utilisation, system_index, method)
                for system_index in admitted
                for method in other_methods
            ]
            cells = self.run_cells(jobs)

            per_method_psi: Dict[str, List[float]] = {method: [] for method in methods}
            per_method_upsilon: Dict[str, List[float]] = {method: [] for method in methods}
            for system_index in admitted:
                if "static" in per_method_psi:
                    static_cell = static_cells[system_index]
                    per_method_psi["static"].append(static_cell.psi)
                    per_method_upsilon["static"].append(static_cell.upsilon)
                for method in other_methods:
                    cell = cells[EvalJob(utilisation, system_index, method)]
                    if method in ga_methods:
                        per_method_psi[method].append(cell.best_psi)
                        per_method_upsilon[method].append(cell.best_upsilon)
                    else:
                        per_method_psi[method].append(cell.psi)
                        per_method_upsilon[method].append(cell.upsilon)

            systems_evaluated[utilisation] = len(admitted)
            for method in methods:
                psi_series[method].append(mean(per_method_psi[method]))
                upsilon_series[method].append(mean(per_method_upsilon[method]))

        result = AccuracySweepResult(
            psi=SweepResult(name="psi", utilisations=utilisations, series=psi_series),
            upsilon=SweepResult(
                name="upsilon", utilisations=utilisations, series=upsilon_series
            ),
            systems_evaluated=systems_evaluated,
        )
        if self.store is not None:
            self.store.save_result(artifact, accuracy_sweep_to_dict(result))
        return result

    def _admit_systems(
        self, utilisation: float
    ) -> Tuple[List[int], Dict[int, CellResult]]:
        """The first ``n_systems`` static-schedulable system indices at ``utilisation``.

        Mirrors the historical sequential admission loop exactly (first-n
        schedulable indices within ``10 * n_systems`` attempts) while batching
        the static evaluations through the worker pool.  Emits a warning when
        the attempt budget runs out before enough systems are found.
        """
        config = self.config
        n_systems = config.n_systems
        max_attempts = n_systems * 10
        batch_size = max(n_systems, 2 * self.n_workers)

        admitted: List[int] = []
        static_cells: Dict[int, CellResult] = {}
        next_index = 0
        while len(admitted) < n_systems and next_index < max_attempts:
            upper = min(next_index + batch_size, max_attempts)
            jobs = [
                EvalJob(utilisation, system_index, "static")
                for system_index in range(next_index, upper)
            ]
            cells = self.run_cells(jobs)
            for job in jobs:
                cell = cells[job]
                static_cells[job.system_index] = cell
                if cell.schedulable and len(admitted) < n_systems:
                    admitted.append(job.system_index)
            next_index = upper

        if len(admitted) < n_systems:
            warnings.warn(
                f"accuracy sweep at U={utilisation}: only {len(admitted)} of the "
                f"requested {n_systems} schedulable systems were found within "
                f"{max_attempts} attempts; reported means cover the smaller sample "
                f"(see AccuracySweepResult.systems_evaluated)",
                UserWarning,
                stacklevel=3,
            )
        return admitted, static_cells

    # -- artifact helpers --------------------------------------------------------

    def _sweep_artifact_name(
        self, prefix: str, utilisations: Sequence[float], methods: Sequence[str]
    ) -> str:
        signature = content_hash(
            {
                "utilisations": list(utilisations),
                "methods": list(methods),
                "n_systems": self.config.n_systems,
            },
            length=10,
        )
        return f"{prefix}-{signature}"

    def _load_sweep_artifact(self, name: str) -> Optional[SweepResult]:
        if self.store is None:
            return None
        payload = self.store.load_result(name)
        if payload is None:
            return None
        try:
            return sweep_result_from_dict(payload)
        except PayloadVersionError:
            raise  # newer artifact: never recompute-and-overwrite it
        except (ValueError, KeyError, TypeError):
            return None  # corrupt/legacy artifact: recompute
