"""Persistent, versioned experiment artifacts and the resumable cell cache.

Two kinds of state are persisted under an artifact directory:

* **Sweep results** — completed :class:`~repro.experiments.results.SweepResult`
  / :class:`~repro.experiments.results.AccuracySweepResult` values, written as
  versioned JSON (see :mod:`repro.core.serialization`) so they can be plotted,
  diffed or reloaded without re-running anything.
* **Evaluation cells** — the per-``(utilisation, system, method)`` outcomes the
  engine computes, appended to a ``cells.jsonl`` journal as they complete.  A
  sweep interrupted mid-run resumes from the journal: already-finished cells
  are served from disk and only the remainder is recomputed.

Artifacts are *content-keyed*: every store lives in a subdirectory named by a
hash of the cell-relevant configuration (base seed, generator parameters, GA
budget), so runs with different configurations can share one artifact root
without ever mixing results.  Sweep-shape parameters (which utilisation points,
how many systems, worker count) deliberately do not enter the key — a cell's
value does not depend on them, so enlarging a sweep reuses every cell already
computed.
"""

from __future__ import annotations

import io
import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.core.serialization import (
    atomic_write_json,
    canonical_json,
    content_hash,
    parse_versioned_payload,
    versioned_payload,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import AccuracySweepResult, SweepResult

SWEEP_KIND = "repro/sweep-result"
SWEEP_VERSION = 1
ACCURACY_KIND = "repro/accuracy-sweep"
ACCURACY_VERSION = 1
TABLE1_KIND = "repro/table1"
TABLE1_VERSION = 1
CELL_CACHE_KIND = "repro/cell-cache"
CELL_CACHE_VERSION = 1

#: Key of one cached evaluation cell: (utilisation, system index, method).
CellKey = Tuple[float, int, str]


# -- sweep results as versioned JSON -------------------------------------------


def sweep_result_to_dict(result: SweepResult) -> Dict[str, Any]:
    return versioned_payload(
        SWEEP_KIND,
        SWEEP_VERSION,
        {
            "name": result.name,
            "utilisations": list(result.utilisations),
            "series": {method: list(values) for method, values in result.series.items()},
        },
    )


def sweep_result_from_dict(payload: Dict[str, Any]) -> SweepResult:
    _, data = parse_versioned_payload(payload, SWEEP_KIND, max_version=SWEEP_VERSION)
    return SweepResult(
        name=data["name"],
        utilisations=[float(u) for u in data["utilisations"]],
        series={method: [float(v) for v in values] for method, values in data["series"].items()},
    )


def sweep_result_to_json(result: SweepResult, *, indent: int = 2) -> str:
    return json.dumps(sweep_result_to_dict(result), indent=indent)


def sweep_result_from_json(text: str) -> SweepResult:
    return sweep_result_from_dict(json.loads(text))


def accuracy_sweep_to_dict(result: AccuracySweepResult) -> Dict[str, Any]:
    return versioned_payload(
        ACCURACY_KIND,
        ACCURACY_VERSION,
        {
            "psi": sweep_result_to_dict(result.psi),
            "upsilon": sweep_result_to_dict(result.upsilon),
            # JSON object keys must be strings; store the float keys as pairs.
            "systems_evaluated": [
                [utilisation, count] for utilisation, count in result.systems_evaluated.items()
            ],
        },
    )


def accuracy_sweep_from_dict(payload: Dict[str, Any]) -> AccuracySweepResult:
    _, data = parse_versioned_payload(payload, ACCURACY_KIND, max_version=ACCURACY_VERSION)
    return AccuracySweepResult(
        psi=sweep_result_from_dict(data["psi"]),
        upsilon=sweep_result_from_dict(data["upsilon"]),
        systems_evaluated={float(u): int(n) for u, n in data["systems_evaluated"]},
    )


def accuracy_sweep_to_json(result: AccuracySweepResult, *, indent: int = 2) -> str:
    return json.dumps(accuracy_sweep_to_dict(result), indent=indent)


def accuracy_sweep_from_json(text: str) -> AccuracySweepResult:
    return accuracy_sweep_from_dict(json.loads(text))


def table1_to_dict(rows: Any, ratios: Dict[str, float]) -> Dict[str, Any]:
    """Versioned payload for the regenerated Table I (rows + headline ratios)."""
    return versioned_payload(TABLE1_KIND, TABLE1_VERSION, {"rows": rows, "ratios": ratios})


def table1_from_dict(payload: Dict[str, Any]) -> Dict[str, Any]:
    _, data = parse_versioned_payload(payload, TABLE1_KIND, max_version=TABLE1_VERSION)
    return data


# -- content-keyed configuration fingerprint -----------------------------------


def cell_config_dict(config: ExperimentConfig) -> Dict[str, Any]:
    """The configuration subset that determines individual cell values.

    The scenario key is only present for scenario-backed configurations, so
    fingerprints (and therefore cell caches) of legacy configurations are
    unchanged by the scenario API's introduction.
    """
    data = {
        "seed": config.seed,
        "generator": asdict(config.generator),
        "ga": asdict(config.ga),
    }
    if config.scenario is not None:
        data["scenario"] = config.scenario.to_dict()
    return data


def config_fingerprint(config: ExperimentConfig) -> str:
    """Stable content key for ``config``'s cell cache (hex digest)."""
    return content_hash(
        {
            "kind": CELL_CACHE_KIND,
            "version": CELL_CACHE_VERSION,
            "config": cell_config_dict(config),
        }
    )


# -- the on-disk store ---------------------------------------------------------


class ArtifactStore:
    """Directory-backed store for one configuration's cells and sweep results.

    The store is safe to reopen after a crash or Ctrl-C: cells are appended to
    a journal (``cells.jsonl``) and flushed per line, and a truncated trailing
    line (a write cut short by the interruption) is ignored on load.  Completed
    sweep artifacts are written atomically via a rename.
    """

    CELLS_FILENAME = "cells.jsonl"
    CONFIG_FILENAME = "config.json"

    def __init__(self, root: Union[str, Path], config: ExperimentConfig):
        self.root = Path(root)
        self.fingerprint = config_fingerprint(config)
        self.directory = self.root / self.fingerprint
        self.directory.mkdir(parents=True, exist_ok=True)
        self._cells: Dict[CellKey, Dict[str, Any]] = {}
        self._cells_path = self.directory / self.CELLS_FILENAME
        self._journal: Optional[io.TextIOWrapper] = None
        self._write_config(config)
        self._load_cells()

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- cells -------------------------------------------------------------------

    def get_cell(self, key: CellKey) -> Optional[Dict[str, Any]]:
        """The cached record for ``key``, or ``None`` on a cache miss."""
        return self._cells.get(key)

    def put_cell(self, key: CellKey, record: Dict[str, Any]) -> None:
        """Cache ``record`` under ``key`` and append it to the journal."""
        if key in self._cells:
            return
        self._cells[key] = record
        utilisation, system_index, method = key
        line = canonical_json(
            {"u": utilisation, "i": system_index, "m": method, "r": record}
        )
        if self._journal is None:
            self._journal = open(self._cells_path, "a", encoding="utf-8")
        self._journal.write(line + "\n")
        self._journal.flush()

    @property
    def cell_count(self) -> int:
        return len(self._cells)

    def _load_cells(self) -> None:
        if not self._cells_path.exists():
            return
        with open(self._cells_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    key = (float(entry["u"]), int(entry["i"]), str(entry["m"]))
                    record = entry["r"]
                except (ValueError, KeyError, TypeError):
                    # A truncated/corrupt line: almost certainly the final write
                    # of an interrupted run.  The cell will simply be recomputed.
                    continue
                self._cells[key] = record

    # -- whole-sweep artifacts ---------------------------------------------------

    def save_result(self, name: str, payload: Dict[str, Any]) -> Path:
        """Atomically write ``payload`` to ``<store>/<name>.json``."""
        return atomic_write_json(
            self.directory / f"{name}.json", payload, indent=2, sort_keys=False
        )

    def load_result(self, name: str) -> Optional[Dict[str, Any]]:
        path = self.directory / f"{name}.json"
        if not path.exists():
            return None
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    # -- internals ---------------------------------------------------------------

    def _write_config(self, config: ExperimentConfig) -> None:
        """Record the full configuration next to the cache for humans/tooling."""
        path = self.directory / self.CONFIG_FILENAME
        if path.exists():
            return
        payload = versioned_payload(
            CELL_CACHE_KIND,
            CELL_CACHE_VERSION,
            {
                "fingerprint": self.fingerprint,
                "cell_config": cell_config_dict(config),
                "full_config": asdict(config),
            },
        )
        atomic_write_json(path, payload, indent=2, sort_keys=False)
