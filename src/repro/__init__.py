"""repro — reproduction of "Timing-Accurate General-Purpose I/O for Multi- and
Many-Core Systems: Scheduling and Hardware Support" (Zhao et al., DAC 2020).

The package provides:

* ``repro.core`` — the timed I/O task/job model, quality curves, schedules and
  the Psi/Upsilon timing-accuracy metrics;
* ``repro.taskgen`` — the paper's synthetic workload generator;
* ``repro.analysis`` — non-preemptive fixed-priority schedulability analysis
  (the "FPS-online" baseline);
* ``repro.scheduling`` — the offline schedulers: FPS-offline, GPIOCP (FIFO),
  the heuristic "static" method (Algorithm 1) and the multi-objective GA;
* ``repro.sim`` / ``repro.noc`` / ``repro.hardware`` — the discrete-event
  substrate, NoC model and I/O-controller hardware model that execute the
  offline schedules at run time, plus the hardware resource estimator;
* ``repro.service`` — the batch scheduling-service API: typed
  request/response envelopes, ``"name:key=value"`` scheduler specs, a worker
  pool with a content-addressed schedule cache, and a JSONL batch CLI;
* ``repro.scenario`` — declarative, versioned evaluation scenarios (workload
  + platform + faults) with named presets and deterministic materialisation;
* ``repro.campaign`` — declarative multi-scenario campaigns: scenario x
  method grids run through the service with checkpointed resume and
  aggregated leaderboard reports;
* ``repro.experiments`` — the harness regenerating every figure and table of
  the paper's evaluation.
"""

# NOTE: repro.campaign (like repro.experiments, which it builds on) is not
# imported here: `import repro` must stay lightweight and the scheduling
# registry must resolve without dragging the experiment harness in (see
# tests/scheduling/test_online.py).  Import it explicitly.
from repro.core import (
    IOJob,
    IOTask,
    LinearQualityCurve,
    Schedule,
    ScheduleEntry,
    TaskSet,
    make_task_ms,
    psi,
    upsilon,
)
from repro.scheduling import (
    FPSOfflineScheduler,
    GAConfig,
    GAScheduler,
    GPIOCPScheduler,
    HeuristicScheduler,
    ScheduleResult,
    Scheduler,
    SystemScheduleResult,
    available_schedulers,
    create_scheduler,
    register_scheduler,
)
from repro.scenario import (
    FaultPlanSpec,
    PlatformSpec,
    Scenario,
    WorkloadSpec,
    available_scenarios,
    create_scenario,
    materialize,
    register_scenario,
)
from repro.service import (
    ScheduleRequest,
    ScheduleResponse,
    SchedulerSpec,
    SchedulingService,
)
from repro.taskgen import GeneratorConfig, SystemGenerator

__version__ = "1.0.0"

__all__ = [
    "IOTask",
    "IOJob",
    "TaskSet",
    "make_task_ms",
    "LinearQualityCurve",
    "Schedule",
    "ScheduleEntry",
    "psi",
    "upsilon",
    "Scheduler",
    "ScheduleResult",
    "SystemScheduleResult",
    "FPSOfflineScheduler",
    "GPIOCPScheduler",
    "HeuristicScheduler",
    "GAScheduler",
    "GAConfig",
    "register_scheduler",
    "create_scheduler",
    "available_schedulers",
    "SchedulerSpec",
    "ScheduleRequest",
    "ScheduleResponse",
    "SchedulingService",
    "Scenario",
    "WorkloadSpec",
    "PlatformSpec",
    "FaultPlanSpec",
    "register_scenario",
    "create_scenario",
    "available_scenarios",
    "materialize",
    "SystemGenerator",
    "GeneratorConfig",
    "__version__",
]
