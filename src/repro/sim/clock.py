"""Simulation clock / global timer model.

The paper's I/O controller relies on a global timer, physically connected to
all controller processors, to trigger timed executions (Section IV).  The
:class:`SimClock` models such a timer: it exposes the current simulation time
at a configurable resolution and can model a bounded synchronisation offset
between the global timer and an observer (e.g. an application CPU reading it
over the NoC).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SimClock:
    """A discrete clock with a resolution and an optional fixed offset.

    Parameters
    ----------
    resolution:
        Granularity of readings in microseconds (default 1 — the global timer
        of the dedicated controller is cycle-accurate at the model's time base).
    offset:
        Constant synchronisation offset added to every reading; models an
        observer whose notion of time lags the global timer (e.g. a remote CPU).
    """

    resolution: int = 1
    offset: int = 0
    _now: int = 0

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ValueError("clock resolution must be positive")

    @property
    def now(self) -> int:
        """Current (quantised) reading of the clock."""
        quantised = (self._now // self.resolution) * self.resolution
        return quantised + self.offset

    @property
    def raw_time(self) -> int:
        """Underlying simulation time, unquantised and without offset."""
        return self._now

    def advance_to(self, time: int) -> None:
        """Move the clock forward to an absolute time (never backwards)."""
        if time < self._now:
            raise ValueError(
                f"clock cannot move backwards (now={self._now}, requested={time})"
            )
        self._now = int(time)

    def next_tick_at_or_after(self, time: int) -> int:
        """First time instant >= ``time`` that falls on the clock's resolution grid."""
        remainder = time % self.resolution
        if remainder == 0:
            return time
        return time + (self.resolution - remainder)
