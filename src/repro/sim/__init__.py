"""Discrete-event simulation substrate.

A small, deterministic event-driven simulation kernel used by the NoC model
(``repro.noc``) and the I/O-controller hardware model (``repro.hardware``) to
execute offline schedules at "run time" and observe the actual I/O operation
start times.
"""

from repro.sim.clock import SimClock
from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = [
    "Simulator",
    "Event",
    "EventQueue",
    "SimClock",
    "TraceRecorder",
    "TraceEvent",
]
