"""Execution-trace recording for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulation observation."""

    time: int
    source: str
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Collects :class:`TraceEvent` records produced during a simulation run.

    Long-horizon simulations can emit millions of observations; two optional
    record-time bounds keep the recorder's memory finite without touching the
    components that emit:

    * ``kinds`` — only events whose ``kind`` is in the given set are stored;
    * ``max_events`` — once this many events are stored, further ones are
      discarded.

    Events rejected by either bound are counted in :attr:`dropped` (so a
    truncated trace is distinguishable from a complete one) but never stored.
    """

    def __init__(
        self,
        *,
        kinds: Optional[Iterable[str]] = None,
        max_events: Optional[int] = None,
    ) -> None:
        if max_events is not None and (
            not isinstance(max_events, int) or isinstance(max_events, bool) or max_events < 0
        ):
            raise ValueError(f"max_events must be a non-negative integer, got {max_events!r}")
        self.kinds: Optional[frozenset] = frozenset(kinds) if kinds is not None else None
        self.max_events = max_events
        self._events: List[TraceEvent] = []
        #: Events rejected by the ``kinds`` filter or the ``max_events`` bound.
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def record(self, time: int, source: str, kind: str, **data: Any) -> Optional[TraceEvent]:
        """Record one observation; returns ``None`` when a bound rejects it."""
        if self.kinds is not None and kind not in self.kinds:
            self.dropped += 1
            return None
        if self.max_events is not None and len(self._events) >= self.max_events:
            self.dropped += 1
            return None
        event = TraceEvent(time=int(time), source=source, kind=kind, data=dict(data))
        self._events.append(event)
        return event

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def filter(self, *, source: Optional[str] = None, kind: Optional[str] = None) -> List[TraceEvent]:
        """Events matching the given source and/or kind."""
        selected = self._events
        if source is not None:
            selected = [e for e in selected if e.source == source]
        if kind is not None:
            selected = [e for e in selected if e.kind == kind]
        return list(selected)

    def first(self, *, source: Optional[str] = None, kind: Optional[str] = None) -> Optional[TraceEvent]:
        matches = self.filter(source=source, kind=kind)
        return matches[0] if matches else None

    def counts_by_kind(self) -> Dict[str, int]:
        """Stored events per kind (sorted by kind), for structured summaries."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))

    def clear(self) -> None:
        """Drop every stored event and reset the :attr:`dropped` counter."""
        self._events.clear()
        self.dropped = 0
