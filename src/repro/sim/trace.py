"""Execution-trace recording for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulation observation."""

    time: int
    source: str
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Collects :class:`TraceEvent` records produced during a simulation run."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def record(self, time: int, source: str, kind: str, **data: Any) -> TraceEvent:
        event = TraceEvent(time=int(time), source=source, kind=kind, data=dict(data))
        self._events.append(event)
        return event

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def filter(self, *, source: Optional[str] = None, kind: Optional[str] = None) -> List[TraceEvent]:
        """Events matching the given source and/or kind."""
        selected = self._events
        if source is not None:
            selected = [e for e in selected if e.source == source]
        if kind is not None:
            selected = [e for e in selected if e.kind == kind]
        return list(selected)

    def first(self, *, source: Optional[str] = None, kind: Optional[str] = None) -> Optional[TraceEvent]:
        matches = self.filter(source=source, kind=kind)
        return matches[0] if matches else None

    def clear(self) -> None:
        self._events.clear()
