"""Events and the time-ordered event queue of the simulation kernel."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled simulation event.

    Events are ordered by ``(time, priority, sequence)``: earlier times first,
    then lower priority values, then insertion order — which makes simulation
    runs fully deterministic.
    """

    time: int
    priority: int
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventQueue:
    """A heap-based future event list."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._cancelled: set = set()

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0

    def push(
        self,
        time: int,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute ``time``; returns the event handle."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(
            time=int(time),
            priority=priority,
            sequence=next(self._counter),
            action=action,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (it will be skipped when popped)."""
        self._cancelled.add(event.sequence)

    def pop(self) -> Optional[Event]:
        """Remove and return the next (non-cancelled) event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.sequence in self._cancelled:
                self._cancelled.discard(event.sequence)
                continue
            return event
        return None

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event without removing it."""
        while self._heap and self._heap[0].sequence in self._cancelled:
            event = heapq.heappop(self._heap)
            self._cancelled.discard(event.sequence)
        return self._heap[0].time if self._heap else None
