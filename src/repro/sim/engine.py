"""The discrete-event simulation engine."""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue
from repro.sim.trace import TraceRecorder


class Simulator:
    """A deterministic discrete-event simulator.

    Components schedule callbacks at absolute times (``at``) or relative
    delays (``after``); :meth:`run` processes events in time order until the
    queue is empty or a time horizon is reached.  A shared :class:`SimClock`
    and :class:`TraceRecorder` are provided for components to read the current
    time and log observations.
    """

    def __init__(self, clock: Optional[SimClock] = None, trace: Optional[TraceRecorder] = None):
        self.queue = EventQueue()
        self.clock = clock if clock is not None else SimClock()
        self.trace = trace if trace is not None else TraceRecorder()
        self._running = False
        self._processed = 0

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time (microseconds)."""
        return self.clock.raw_time

    @property
    def events_processed(self) -> int:
        return self._processed

    # -- scheduling -----------------------------------------------------------

    def at(self, time: int, action: Callable[[], None], *, priority: int = 0, label: str = "") -> Event:
        """Schedule ``action`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule an event in the past (now={self.now}, requested={time})"
            )
        return self.queue.push(time, action, priority=priority, label=label)

    def after(self, delay: int, action: Callable[[], None], *, priority: int = 0, label: str = "") -> Event:
        """Schedule ``action`` after a relative ``delay`` from the current time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.at(self.now + delay, action, priority=priority, label=label)

    def cancel(self, event: Event) -> None:
        self.queue.cancel(event)

    # -- execution -------------------------------------------------------------

    def step(self) -> bool:
        """Process a single event; returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        event.action()
        self._processed += 1
        return True

    def run(self, until: Optional[int] = None, *, max_events: Optional[int] = None) -> int:
        """Run the simulation.

        Parameters
        ----------
        until:
            Optional time horizon; events scheduled strictly after it are left
            unprocessed (and the clock stops at the horizon).
        max_events:
            Optional safety bound on the number of processed events.

        Returns
        -------
        int
            The number of events processed by this call.
        """
        processed_before = self._processed
        self._running = True
        try:
            while self._running:
                if max_events is not None and self._processed - processed_before >= max_events:
                    break
                next_time = self.queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.clock.advance_to(until)
        return self._processed - processed_before

    def stop(self) -> None:
        """Stop a :meth:`run` in progress (callable from within an event action)."""
        self._running = False
