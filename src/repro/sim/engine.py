"""The discrete-event simulation engine."""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue
from repro.sim.trace import TraceRecorder


class Simulator:
    """A deterministic discrete-event simulator.

    Components schedule callbacks at absolute times (``at``) or relative
    delays (``after``); :meth:`run` processes events in time order until the
    queue is empty or a time horizon is reached.  A shared :class:`SimClock`
    and :class:`TraceRecorder` are provided for components to read the current
    time and log observations.

    ``trace_kinds`` and ``max_trace_events`` bound the default trace recorder
    (see :class:`TraceRecorder`) so long-horizon runs don't hold every
    observation in memory; they only apply when no explicit ``trace`` is
    given — a caller-supplied recorder carries its own bounds.
    """

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        trace: Optional[TraceRecorder] = None,
        *,
        trace_kinds: Optional[Iterable[str]] = None,
        max_trace_events: Optional[int] = None,
    ):
        if trace is not None and (trace_kinds is not None or max_trace_events is not None):
            raise ValueError(
                "trace_kinds/max_trace_events configure the default recorder; "
                "an explicit trace carries its own bounds"
            )
        self.queue = EventQueue()
        self.clock = clock if clock is not None else SimClock()
        self.trace = (
            trace
            if trace is not None
            else TraceRecorder(kinds=trace_kinds, max_events=max_trace_events)
        )
        self._running = False
        self._processed = 0
        #: Whether the most recent :meth:`run` call stopped because its
        #: ``max_events`` budget ran out while events remained within the
        #: horizon (see :meth:`run`).
        self.exhausted = False

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time (microseconds)."""
        return self.clock.raw_time

    @property
    def events_processed(self) -> int:
        return self._processed

    # -- scheduling -----------------------------------------------------------

    def at(self, time: int, action: Callable[[], None], *, priority: int = 0, label: str = "") -> Event:
        """Schedule ``action`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule an event in the past (now={self.now}, requested={time})"
            )
        return self.queue.push(time, action, priority=priority, label=label)

    def after(self, delay: int, action: Callable[[], None], *, priority: int = 0, label: str = "") -> Event:
        """Schedule ``action`` after a relative ``delay`` from the current time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.at(self.now + delay, action, priority=priority, label=label)

    def cancel(self, event: Event) -> None:
        self.queue.cancel(event)

    # -- execution -------------------------------------------------------------

    def step(self) -> bool:
        """Process a single event; returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        event.action()
        self._processed += 1
        return True

    def run(self, until: Optional[int] = None, *, max_events: Optional[int] = None) -> int:
        """Run the simulation.

        Parameters
        ----------
        until:
            Optional time horizon; events scheduled strictly after it are left
            unprocessed (and the clock stops at the horizon).
        max_events:
            Optional safety bound on the number of processed events.  A run
            that stops because this budget ran out — with events still pending
            within the horizon — sets :attr:`exhausted` to ``True``, so an
            exhausted run is distinguishable from one that genuinely drained
            the queue (or reached ``until``).

        Returns
        -------
        int
            The number of events processed by this call.
        """
        processed_before = self._processed
        self.exhausted = False
        self._running = True
        try:
            while self._running:
                if max_events is not None and self._processed - processed_before >= max_events:
                    next_time = self.queue.peek_time()
                    self.exhausted = next_time is not None and (
                        until is None or next_time <= until
                    )
                    break
                next_time = self.queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.clock.advance_to(until)
        return self._processed - processed_before

    def stop(self) -> None:
        """Stop a :meth:`run` in progress (callable from within an event action)."""
        self._running = False
