"""Content-addressed cache of schedule results.

Entries are keyed by :meth:`ScheduleRequest.content_key
<repro.service.messages.ScheduleRequest.content_key>` — a hash of the task
set, the scheduler spec and the horizon — and hold the deterministic
``result_dict`` of the corresponding response.  The same key therefore hits
regardless of who asks, in which batch, at which worker count.

The cache always serves from memory; with a ``directory`` it additionally
persists every entry as one versioned JSON file (``<dir>/<key>.json``,
written atomically via rename, mirroring the artifact store) and lazily loads
entries back on lookup, so a service restarted against a warm directory
recomputes nothing.  Files written by a *newer* format version raise
:class:`~repro.core.serialization.PayloadVersionError` instead of being
silently recomputed and overwritten; corrupt files are treated as misses.

The cache is safe for concurrent use: in-process state is guarded by a lock
(the async serving daemon of :mod:`repro.server` touches one cache from the
event loop and from executor callback threads), and the on-disk form
tolerates two *processes* racing on the same key — every writer goes through
its own unique temp file + atomic rename, every writer of a given key holds
an identical (content-addressed) result, and a cache directory deleted or
not-yet-created underneath a writer is recreated instead of crashing.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.serialization import (
    PayloadVersionError,
    atomic_write_json,
    parse_versioned_payload,
    versioned_payload,
)

CACHE_ENTRY_KIND = "repro/schedule-cache-entry"
CACHE_ENTRY_VERSION = 1


class ScheduleCache:
    """In-memory (and optionally directory-backed) store of schedule results.

    ``kind``/``version`` name the on-disk payload envelope; the defaults are
    the schedule-cache entry format.  Other content-addressed result stores
    (the simulation-response cache of :mod:`repro.runtime`) reuse this class
    with their own kind, so entries of different result types can never be
    misread as each other even when directories are mixed up.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        *,
        kind: str = CACHE_ENTRY_KIND,
        version: int = CACHE_ENTRY_VERSION,
    ):
        self.kind = kind
        self.version = int(version)
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.Lock()
        #: Lookup/store statistics over this cache's lifetime.
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return self.peek(key) is not None

    # -- lookups -----------------------------------------------------------------

    def peek(self, key: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`get` but without touching the hit/miss statistics."""
        with self._lock:
            entry = self._entries.get(key)
        if entry is None and self.directory is not None:
            # Disk I/O happens outside the lock; racing loaders of the same
            # key read identical (content-addressed) files, first one in wins.
            entry = self._load(key)
            if entry is not None:
                with self._lock:
                    entry = self._entries.setdefault(key, entry)
        return entry

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored result for ``key``, or ``None`` on a miss."""
        entry = self.peek(key)
        with self._lock:
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
        return entry

    def put(self, key: str, result: Dict[str, Any]) -> None:
        """Store ``result`` under ``key`` (idempotent; first write wins)."""
        with self._lock:
            if key in self._entries:
                return
            self._entries[key] = result
            self.stores += 1
        if self.directory is not None:
            self._persist(key, result)

    # -- introspection -----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Snapshot of the lifetime counters (entries, hits, misses, stores)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
            }

    # -- the on-disk form --------------------------------------------------------

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def _persist(self, key: str, result: Dict[str, Any]) -> None:
        # Written unconditionally through a per-writer unique temp file
        # (:func:`~repro.core.serialization.atomic_write_json`): concurrent
        # services sharing one directory then cannot truncate each other
        # mid-write (os.replace is atomic, last writer wins, and every writer
        # holds an identical result), and a corrupt entry left by a crashed
        # writer is repaired by the next recompute instead of shadowing the
        # key forever.
        payload = versioned_payload(
            self.kind, self.version, {"key": key, "result": result}
        )
        try:
            atomic_write_json(self._path(key), payload)
        except FileNotFoundError:
            # The directory vanished (or was never created) underneath us —
            # e.g. a concurrent cleanup, or a writer racing the first mkdir.
            # Recreate it and retry once; a second failure is a real error.
            self.directory.mkdir(parents=True, exist_ok=True)
            atomic_write_json(self._path(key), payload)

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            _, data = parse_versioned_payload(
                payload, self.kind, max_version=self.version
            )
            return dict(data["result"])
        except PayloadVersionError:
            raise  # a newer writer owns this entry: never clobber it
        except (ValueError, KeyError, TypeError, OSError):
            return None  # corrupt entry: treat as a miss and recompute
