"""Content-addressed cache of schedule results.

Entries are keyed by :meth:`ScheduleRequest.content_key
<repro.service.messages.ScheduleRequest.content_key>` — a hash of the task
set, the scheduler spec and the horizon — and hold the deterministic
``result_dict`` of the corresponding response.  The same key therefore hits
regardless of who asks, in which batch, at which worker count.

The cache always serves from memory; with a storage backend
(:class:`repro.store.CacheBackend`) it additionally persists every entry as a
versioned JSON payload and lazily loads entries back on lookup, so a service
restarted against a warm store recomputes nothing.  ``directory`` remains the
classic shorthand for the file-per-key
:class:`~repro.store.DirectoryBackend`; any other backend — e.g. one SQLite
file shared by concurrent shard workers — plugs in via ``backend=``.
Payloads written by a *newer* format version raise
:class:`~repro.core.serialization.PayloadVersionError` instead of being
silently recomputed and overwritten; corrupt payloads are treated as misses.

The cache is safe for concurrent use: in-process state is guarded by a lock
(the async serving daemon of :mod:`repro.server` touches one cache from the
event loop and from executor callback threads), and every backend's on-disk
form tolerates two *processes* racing on the same key — writes are atomic
(rename or transaction), first complete write wins, and every writer of a
given key holds an identical (content-addressed) result.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union
import threading

from repro.core.serialization import (
    PayloadVersionError,
    parse_versioned_payload,
    versioned_payload,
)
from repro.obs.metrics import CACHE_OPS_TOTAL, MetricsRegistry
from repro.store.backends import CacheBackend, DirectoryBackend

CACHE_ENTRY_KIND = "repro/schedule-cache-entry"
CACHE_ENTRY_VERSION = 1

_CACHE_OPS_HELP = "Cache lookups and stores by cache name and operation."


class ScheduleCache:
    """In-memory (and optionally backend-persisted) store of schedule results.

    ``kind``/``version`` name the persisted payload envelope; the defaults are
    the schedule-cache entry format.  Other content-addressed result stores
    (the simulation-response cache of :mod:`repro.runtime`) reuse this class
    with their own kind, so entries of different result types can never be
    misread as each other even when they share one backend (which is exactly
    what the SQLite backend does: one file, entries told apart by kind).
    """

    #: Value of the ``cache`` label on this cache's registry counters.
    METRICS_LABEL = "schedule"

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        *,
        backend: Optional[CacheBackend] = None,
        kind: str = CACHE_ENTRY_KIND,
        version: int = CACHE_ENTRY_VERSION,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if directory is not None and backend is not None:
            raise ValueError("pass either directory or backend, not both")
        self.kind = kind
        self.version = int(version)
        if backend is None and directory is not None:
            backend = DirectoryBackend(directory)
        self.backend: Optional[CacheBackend] = backend
        #: Root of the classic directory layout, ``None`` for any other
        #: backend.  Kept because callers use it to share a cache location.
        self.directory: Optional[Path] = (
            backend.root if isinstance(backend, DirectoryBackend) else None
        )
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.Lock()
        #: The one source of lookup/store statistics over this cache's
        #: lifetime: ``repro_cache_ops_total{cache=<label>, op=hit|miss|store}``
        #: on this registry.  Pass a shared registry to aggregate several
        #: caches (and their service) into one scrape.
        self.registry = metrics if metrics is not None else MetricsRegistry()

    def _count_op(self, op: str) -> None:
        self.registry.counter_inc(
            CACHE_OPS_TOTAL,
            help=_CACHE_OPS_HELP,
            cache=self.METRICS_LABEL,
            op=op,
        )

    @property
    def hits(self) -> int:
        """Lookups answered from the cache (reads the registry counter)."""
        return int(
            self.registry.counter_value(
                CACHE_OPS_TOTAL, cache=self.METRICS_LABEL, op="hit"
            )
        )

    @property
    def misses(self) -> int:
        """Lookups that found nothing (reads the registry counter)."""
        return int(
            self.registry.counter_value(
                CACHE_OPS_TOTAL, cache=self.METRICS_LABEL, op="miss"
            )
        )

    @property
    def stores(self) -> int:
        """Entries stored (reads the registry counter)."""
        return int(
            self.registry.counter_value(
                CACHE_OPS_TOTAL, cache=self.METRICS_LABEL, op="store"
            )
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return self.peek(key) is not None

    # -- lookups -----------------------------------------------------------------

    def peek(self, key: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`get` but without touching the hit/miss statistics."""
        with self._lock:
            entry = self._entries.get(key)
        if entry is None and self.backend is not None:
            # Backend I/O happens outside the lock; racing loaders of the same
            # key read identical (content-addressed) entries, first one in wins.
            entry = self._load(key)
            if entry is not None:
                with self._lock:
                    entry = self._entries.setdefault(key, entry)
        return entry

    def peek_many(self, keys: Iterable[str]) -> Dict[str, Dict[str, Any]]:
        """Present entries for every distinct key of ``keys``; no statistics.

        Memory answers first; the remaining keys go to the backend as **one**
        batched read (one SQLite query per ~500 keys instead of one per key).
        """
        distinct = list(dict.fromkeys(keys))
        found: Dict[str, Dict[str, Any]] = {}
        missing: List[str] = []
        with self._lock:
            for key in distinct:
                entry = self._entries.get(key)
                if entry is None:
                    missing.append(key)
                else:
                    found[key] = entry
        if missing and self.backend is not None:
            # Backend I/O happens outside the lock; racing loaders of the same
            # key read identical (content-addressed) entries, first one in wins.
            payloads = self.backend.get_many(missing)
            loaded = {
                key: entry
                for key, payload in payloads.items()
                if (entry := self._parse_entry(payload)) is not None
            }
            if loaded:
                with self._lock:
                    for key, entry in loaded.items():
                        found[key] = self._entries.setdefault(key, entry)
        return found

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored result for ``key``, or ``None`` on a miss."""
        entry = self.peek(key)
        self._count_op("miss" if entry is None else "hit")
        return entry

    def get_many(self, keys: Sequence[str]) -> Dict[str, Dict[str, Any]]:
        """Present entries for ``keys``, counting one hit/miss per *occurrence*.

        The statistics match a ``get`` per element of ``keys`` exactly (so a
        batch with duplicates counts every position), while the backend is
        consulted only once per distinct key.
        """
        found = self.peek_many(keys)
        for key in keys:
            self._count_op("miss" if key not in found else "hit")
        return found

    def put(self, key: str, result: Dict[str, Any]) -> None:
        """Store ``result`` under ``key`` (idempotent; first write wins)."""
        with self._lock:
            if key in self._entries:
                return
            self._entries[key] = result
        self._count_op("store")
        if self.backend is not None:
            self._persist(key, result)

    def put_many(self, items: Iterable[Tuple[str, Dict[str, Any]]]) -> None:
        """Store a batch of ``(key, result)`` pairs (idempotent per key).

        Counts one ``store`` per key actually stored — same statistics as a
        ``put`` per pair — but persists all fresh entries in **one** backend
        write (one SQLite transaction instead of one per key).
        """
        fresh: List[Tuple[str, Dict[str, Any]]] = []
        with self._lock:
            for key, result in items:
                if key in self._entries:
                    continue
                self._entries[key] = result
                fresh.append((key, result))
        for _ in fresh:
            self._count_op("store")
        if fresh and self.backend is not None:
            self.backend.put_many(
                [
                    (
                        key,
                        versioned_payload(
                            self.kind, self.version, {"key": key, "result": result}
                        ),
                    )
                    for key, result in fresh
                ]
            )

    # -- introspection -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Snapshot of the lifetime counters (entries, hits, misses, stores).

        ``backend`` names where entries persist — the backend's own summary
        (name, location, entry count, size), or ``{"name": "memory"}`` for a
        memory-only cache.
        """
        backend = (
            self.backend.stats() if self.backend is not None else {"name": "memory"}
        )
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "backend": backend,
        }

    def backend_spec(self) -> Optional[str]:
        """Spec string re-opening this cache's backend (``None`` if not possible).

        This is how pool workers re-attach to the dispatching service's
        persistent cache across process boundaries.
        """
        return self.backend.spec() if self.backend is not None else None

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release the backend's resources (idempotent; memory entries stay)."""
        if self.backend is not None:
            self.backend.close()

    # -- the persisted form ------------------------------------------------------

    def _persist(self, key: str, result: Dict[str, Any]) -> None:
        # The backend makes the write atomic and first-write-wins; every
        # writer of a given key holds an identical (content-addressed) result,
        # so whichever write lands, readers see a complete, correct entry.
        assert self.backend is not None
        payload = versioned_payload(
            self.kind, self.version, {"key": key, "result": result}
        )
        self.backend.put(key, payload)

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        assert self.backend is not None
        payload = self.backend.get(key)
        if payload is None:
            return None
        return self._parse_entry(payload)

    def _parse_entry(self, payload: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        try:
            _, data = parse_versioned_payload(
                payload, self.kind, max_version=self.version
            )
            return dict(data["result"])
        except PayloadVersionError:
            raise  # a newer writer owns this entry: never clobber it
        except (ValueError, KeyError, TypeError):
            return None  # corrupt or foreign-kind entry: treat as a miss
