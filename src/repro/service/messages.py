"""Typed request/response envelopes of the scheduling service.

Both messages are frozen, pure-data values that round-trip through the
versioned JSON envelope of :mod:`repro.core.serialization` — the same
``{kind, version, data}`` convention (and the same ``content_hash``) as the
experiment artifact layer — so a request can equally be built in-process, read
from a JSONL batch file, or received over a future network frontend.

A request's :meth:`~ScheduleRequest.content_key` hashes exactly the fields
that determine the scheduling outcome (task set, spec, horizon) and nothing
else; ``request_id`` is caller provenance and deliberately excluded, so two
callers asking the same question share one cache entry.

A response separates the deterministic *result* (schedulability, metrics,
per-device schedules — returned bit-identically by :func:`execute_request
<repro.service.service.execute_request>` regardless of worker count or cache
state) from per-execution *provenance* (cache hit/miss, the content key,
elapsed wall-clock time).  :meth:`ScheduleResponse.result_dict` exposes the
deterministic part on its own; it is what the schedule cache stores.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.core.schedule import Schedule
from repro.core.serialization import (
    content_hash,
    parse_versioned_payload,
    schedule_from_dict,
    taskset_from_dict,
    taskset_to_dict,
    versioned_payload,
)
from repro.core.task import TaskSet
from repro.service.spec import SchedulerSpec

REQUEST_KIND = "repro/schedule-request"
REQUEST_VERSION = 1
RESPONSE_KIND = "repro/schedule-response"
RESPONSE_VERSION = 1

#: Cache provenance values a response can carry.
CACHE_HIT = "hit"
CACHE_MISS = "miss"
CACHE_DISABLED = "disabled"


@dataclass(frozen=True)
class ScheduleRequest:
    """One question to the scheduling service: *schedule this, with that*.

    ``horizon`` (microseconds) defaults to the task set's hyper-period, as in
    :meth:`Scheduler.schedule_taskset <repro.scheduling.base.Scheduler>`.
    ``request_id`` is free-form caller provenance echoed on the response; it
    does not influence scheduling or caching.
    """

    task_set: TaskSet
    spec: SchedulerSpec
    horizon: Optional[int] = None
    request_id: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "spec", SchedulerSpec.coerce(self.spec))
        if self.horizon is not None and self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon!r}")

    def content_key(self) -> str:
        """Content-address of the scheduling question (excludes ``request_id``)."""
        return content_hash(
            {
                "taskset": taskset_to_dict(self.task_set),
                "spec": self.spec.to_dict(),
                "horizon": self.horizon,
            }
        )

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return versioned_payload(
            REQUEST_KIND,
            REQUEST_VERSION,
            {
                "id": self.request_id,
                "spec": self.spec.to_dict(),
                "horizon": self.horizon,
                "taskset": taskset_to_dict(self.task_set),
            },
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScheduleRequest":
        _, data = parse_versioned_payload(
            dict(payload), REQUEST_KIND, max_version=REQUEST_VERSION
        )
        return cls(
            task_set=taskset_from_dict(data["taskset"]),
            spec=SchedulerSpec.from_dict(data["spec"]),
            horizon=data.get("horizon"),
            request_id=data.get("id"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScheduleRequest":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class ScheduleResponse:
    """The service's answer: deterministic result + execution provenance.

    ``per_device`` maps device name to a plain dict
    ``{schedulable, psi, upsilon, n_jobs, schedule}`` where ``schedule`` is
    the serialised form of :func:`repro.core.serialization.schedule_to_dict`
    (or ``None`` when the method found no feasible schedule / produces none).
    ``spec`` is the canonical string of the spec actually executed — including
    any seed the service derived — so the response alone reproduces the run.
    """

    request_id: Optional[str]
    spec: str
    horizon: int
    schedulable: bool
    psi: float
    upsilon: float
    best_psi: float
    best_upsilon: float
    per_device: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    # -- provenance (excluded from result_dict and from caching) -----------------
    cache: str = CACHE_DISABLED
    cache_key: Optional[str] = None
    elapsed_s: float = 0.0

    def result_dict(self) -> Dict[str, Any]:
        """The deterministic portion of the response (what the cache stores)."""
        return {
            "spec": self.spec,
            "horizon": self.horizon,
            "schedulable": self.schedulable,
            "psi": self.psi,
            "upsilon": self.upsilon,
            "best_psi": self.best_psi,
            "best_upsilon": self.best_upsilon,
            "per_device": self.per_device,
        }

    @classmethod
    def from_result_dict(
        cls,
        data: Mapping[str, Any],
        *,
        request_id: Optional[str] = None,
        cache: str = CACHE_DISABLED,
        cache_key: Optional[str] = None,
        elapsed_s: float = 0.0,
    ) -> "ScheduleResponse":
        """Rebuild a response around a stored deterministic result."""
        return cls(
            request_id=request_id,
            spec=str(data["spec"]),
            horizon=int(data["horizon"]),
            schedulable=bool(data["schedulable"]),
            psi=float(data["psi"]),
            upsilon=float(data["upsilon"]),
            best_psi=float(data["best_psi"]),
            best_upsilon=float(data["best_upsilon"]),
            per_device=dict(data.get("per_device") or {}),
            cache=cache,
            cache_key=cache_key,
            elapsed_s=elapsed_s,
        )

    def device_schedules(self, task_set: TaskSet) -> Dict[str, Schedule]:
        """Rebuild the concrete per-device :class:`Schedule` objects.

        ``task_set`` must be the request's task set (jobs are looked up by
        task name); devices whose method produced no schedule are omitted.
        """
        schedules: Dict[str, Schedule] = {}
        for device, entry in self.per_device.items():
            if entry.get("schedule") is not None:
                schedules[device] = schedule_from_dict(entry["schedule"], task_set)
        return schedules

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return versioned_payload(
            RESPONSE_KIND,
            RESPONSE_VERSION,
            {
                "id": self.request_id,
                "result": self.result_dict(),
                "cache": {"status": self.cache, "key": self.cache_key},
                "timing": {"elapsed_s": self.elapsed_s},
            },
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScheduleResponse":
        _, data = parse_versioned_payload(
            dict(payload), RESPONSE_KIND, max_version=RESPONSE_VERSION
        )
        cache = data.get("cache") or {}
        timing = data.get("timing") or {}
        return cls.from_result_dict(
            data["result"],
            request_id=data.get("id"),
            cache=str(cache.get("status", CACHE_DISABLED)),
            cache_key=cache.get("key"),
            elapsed_s=float(timing.get("elapsed_s", 0.0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScheduleResponse":
        return cls.from_dict(json.loads(text))
