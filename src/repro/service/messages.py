"""Typed request/response envelopes of the scheduling service.

Both messages are frozen, pure-data values that round-trip through the
versioned JSON envelope of :mod:`repro.core.serialization` — the same
``{kind, version, data}`` convention (and the same ``content_hash``) as the
experiment artifact layer — so a request can equally be built in-process, read
from a JSONL batch file, or received over a future network frontend.

A request's :meth:`~ScheduleRequest.content_key` hashes exactly the fields
that determine the scheduling outcome (task set, spec, horizon) and nothing
else; ``request_id`` is caller provenance and deliberately excluded, so two
callers asking the same question share one cache entry.

A response separates the deterministic *result* (schedulability, metrics,
per-device schedules — returned bit-identically by :func:`execute_request
<repro.service.service.execute_request>` regardless of worker count or cache
state) from per-execution *provenance* (cache hit/miss, the content key,
elapsed wall-clock time).  :meth:`ScheduleResponse.result_dict` exposes the
deterministic part on its own; it is what the schedule cache stores.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.core.schedule import Schedule
from repro.core.serialization import (
    content_hash,
    parse_versioned_payload,
    schedule_from_dict,
    taskset_from_dict,
    taskset_to_dict,
    versioned_payload,
)
from repro.core.task import TaskSet
from repro.scenario import Scenario, create_scenario, materialize
from repro.service.spec import SchedulerSpec

REQUEST_KIND = "repro/schedule-request"
#: Version 2 added scenario-backed requests; requests without a scenario are
#: still written as version 1 so that version-1 readers keep working.
REQUEST_VERSION = 2
RESPONSE_KIND = "repro/schedule-response"
RESPONSE_VERSION = 1

#: Cache provenance values a response can carry.
CACHE_HIT = "hit"
CACHE_MISS = "miss"
CACHE_DISABLED = "disabled"


@dataclass(frozen=True)
class ScheduleRequest:
    """One question to the scheduling service: *schedule this, with that*.

    The workload is given either explicitly (``task_set``) or declaratively
    (``scenario`` — a :class:`~repro.scenario.Scenario`, a registered preset
    name, a payload dict, or inline JSON — plus a ``system_index`` selecting
    which of the scenario's deterministic systems to draw); exactly one of the
    two must be provided.  Scenario-backed requests materialise their task set
    lazily via :meth:`effective_task_set`.

    ``horizon`` (microseconds) defaults to the task set's hyper-period, as in
    :meth:`Scheduler.schedule_taskset <repro.scheduling.base.Scheduler>`.
    ``request_id`` is free-form caller provenance echoed on the response; it
    does not influence scheduling or caching.
    """

    task_set: Optional[TaskSet] = None
    spec: Optional[SchedulerSpec] = None
    horizon: Optional[int] = None
    request_id: Optional[str] = None
    scenario: Optional[Scenario] = None
    system_index: int = 0

    def __post_init__(self) -> None:
        if self.spec is None:
            raise ValueError("a scheduler spec is required")
        object.__setattr__(self, "spec", SchedulerSpec.coerce(self.spec))
        if self.scenario is not None:
            object.__setattr__(self, "scenario", create_scenario(self.scenario))
        if (self.task_set is None) == (self.scenario is None):
            raise ValueError("provide exactly one of task_set and scenario")
        if not isinstance(self.system_index, int) or self.system_index < 0:
            raise ValueError(
                f"system_index must be a non-negative integer, got {self.system_index!r}"
            )
        if self.scenario is None and self.system_index != 0:
            raise ValueError("system_index requires a scenario")
        if self.horizon is not None and self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon!r}")

    def effective_task_set(self) -> TaskSet:
        """The concrete task set: the explicit one, or the scenario's system.

        Materialisation is deterministic (pure in the scenario content and the
        system index), so the result is memoised on the request.
        """
        if self.task_set is not None:
            return self.task_set
        cached = getattr(self, "_materialized_task_set", None)
        if cached is None:
            cached = materialize(self.scenario, self.system_index).task_set
            object.__setattr__(self, "_materialized_task_set", cached)
        return cached

    def content_key(self) -> str:
        """Content-address of the scheduling question (excludes ``request_id``).

        Scenario-backed requests hash the scenario's own content key (which
        covers every scenario field) plus the system index, so changing *any*
        scenario field — workload, platform, faults, even the name — yields a
        different key and therefore a cache miss.

        The request is frozen, so the key is hashed once and memoised — repeat
        calls (cache lookup, seed derivation, batch dedup) return the cached
        string.
        """
        cached = self.__dict__.get("_content_key")
        if cached is not None:
            return cached
        if self.scenario is not None:
            key = content_hash(
                {
                    "scenario": self.scenario.content_key(),
                    "system_index": self.system_index,
                    "spec": self.spec.to_dict(),
                    "horizon": self.horizon,
                }
            )
        else:
            key = content_hash(
                {
                    "taskset": taskset_to_dict(self.task_set),
                    "spec": self.spec.to_dict(),
                    "horizon": self.horizon,
                }
            )
        object.__setattr__(self, "_content_key", key)
        return key

    # -- pickling ----------------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        """Slim pickles: drop the memoised task set, keep the content key.

        The materialised task set can dwarf the request itself; any receiver
        re-materialises it deterministically on demand.  The content key is a
        small string and saves the receiver a full canonical-JSON hash, so it
        rides along.
        """
        state = dict(self.__dict__)
        state.pop("_materialized_task_set", None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "id": self.request_id,
            "spec": self.spec.to_dict(),
            "horizon": self.horizon,
        }
        if self.scenario is not None:
            data["scenario"] = self.scenario.to_dict()
            data["system_index"] = self.system_index
            return versioned_payload(REQUEST_KIND, REQUEST_VERSION, data)
        # Requests without a scenario serialise exactly as version 1 did, so
        # payloads only claim the newer version when they actually need it.
        data["taskset"] = taskset_to_dict(self.task_set)
        return versioned_payload(REQUEST_KIND, 1, data)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScheduleRequest":
        _, data = parse_versioned_payload(
            dict(payload), REQUEST_KIND, max_version=REQUEST_VERSION
        )
        scenario = data.get("scenario")
        return cls(
            task_set=(
                taskset_from_dict(data["taskset"]) if data.get("taskset") is not None else None
            ),
            spec=SchedulerSpec.from_dict(data["spec"]),
            horizon=data.get("horizon"),
            request_id=data.get("id"),
            scenario=Scenario.from_dict(scenario) if scenario is not None else None,
            system_index=int(data.get("system_index", 0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScheduleRequest":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class ScheduleResponse:
    """The service's answer: deterministic result + execution provenance.

    ``per_device`` maps device name to a plain dict
    ``{schedulable, psi, upsilon, n_jobs, schedule}`` where ``schedule`` is
    the serialised form of :func:`repro.core.serialization.schedule_to_dict`
    (or ``None`` when the method found no feasible schedule / produces none).
    ``spec`` is the canonical string of the spec actually executed — including
    any seed the service derived — so the response alone reproduces the run.
    """

    request_id: Optional[str]
    spec: str
    horizon: int
    schedulable: bool
    psi: float
    upsilon: float
    best_psi: float
    best_upsilon: float
    per_device: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    # -- provenance (excluded from result_dict and from caching) -----------------
    cache: str = CACHE_DISABLED
    cache_key: Optional[str] = None
    elapsed_s: float = 0.0

    def result_dict(self) -> Dict[str, Any]:
        """The deterministic portion of the response (what the cache stores)."""
        return {
            "spec": self.spec,
            "horizon": self.horizon,
            "schedulable": self.schedulable,
            "psi": self.psi,
            "upsilon": self.upsilon,
            "best_psi": self.best_psi,
            "best_upsilon": self.best_upsilon,
            "per_device": self.per_device,
        }

    @classmethod
    def from_result_dict(
        cls,
        data: Mapping[str, Any],
        *,
        request_id: Optional[str] = None,
        cache: str = CACHE_DISABLED,
        cache_key: Optional[str] = None,
        elapsed_s: float = 0.0,
    ) -> "ScheduleResponse":
        """Rebuild a response around a stored deterministic result."""
        return cls(
            request_id=request_id,
            spec=str(data["spec"]),
            horizon=int(data["horizon"]),
            schedulable=bool(data["schedulable"]),
            psi=float(data["psi"]),
            upsilon=float(data["upsilon"]),
            best_psi=float(data["best_psi"]),
            best_upsilon=float(data["best_upsilon"]),
            per_device=dict(data.get("per_device") or {}),
            cache=cache,
            cache_key=cache_key,
            elapsed_s=elapsed_s,
        )

    def device_schedules(self, task_set: TaskSet) -> Dict[str, Schedule]:
        """Rebuild the concrete per-device :class:`Schedule` objects.

        ``task_set`` must be the request's task set (jobs are looked up by
        task name); devices whose method produced no schedule are omitted.
        """
        schedules: Dict[str, Schedule] = {}
        for device, entry in self.per_device.items():
            if entry.get("schedule") is not None:
                schedules[device] = schedule_from_dict(entry["schedule"], task_set)
        return schedules

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return versioned_payload(
            RESPONSE_KIND,
            RESPONSE_VERSION,
            {
                "id": self.request_id,
                "result": self.result_dict(),
                "cache": {"status": self.cache, "key": self.cache_key},
                "timing": {"elapsed_s": self.elapsed_s},
            },
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScheduleResponse":
        _, data = parse_versioned_payload(
            dict(payload), RESPONSE_KIND, max_version=RESPONSE_VERSION
        )
        cache = data.get("cache") or {}
        timing = data.get("timing") or {}
        return cls.from_result_dict(
            data["result"],
            request_id=data.get("id"),
            cache=str(cache.get("status", CACHE_DISABLED)),
            cache_key=cache.get("key"),
            elapsed_s=float(timing.get("elapsed_s", 0.0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScheduleResponse":
        return cls.from_dict(json.loads(text))
