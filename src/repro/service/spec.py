"""``SchedulerSpec`` — scheduling methods as declarative, serialisable values.

A spec names a registered scheduling method plus the keyword overrides to
construct it with, in a compact string grammar::

    spec    := name [":" option ("," option)*]
    option  := key "=" value
    name    := [A-Za-z0-9_][A-Za-z0-9_-]*
    key     := [A-Za-z_][A-Za-z0-9_]*
    value   := "true" | "false" | "none" | <int> | <float> | <string>

Examples: ``"static"``, ``"fps-offline"``,
``"ga:generations=50,population_size=40,seed=7"``.

Values are typed: ``true``/``false`` parse to booleans, ``none``/``null`` to
``None``, number literals to ``int``/``float``, everything else stays a
string.  :meth:`SchedulerSpec.format` is the exact inverse of
:meth:`SchedulerSpec.parse` (a property test holds the round-trip), so specs
can travel through CLIs, JSON requests and cache keys without a second,
divergent representation of "which scheduler, configured how".

Resolution goes through the scheduler registry:
:meth:`SchedulerSpec.resolve` calls
:func:`repro.scheduling.create_scheduler(name, **options)
<repro.scheduling.registry.create_scheduler>`, which forwards the options to
the registered factory and fails loudly (naming the factory) on an unknown
keyword.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple, Union

from repro.scheduling.registry import create_scheduler

#: JSON-compatible option value types a spec can carry.
OptionValue = Union[bool, int, float, str, None]

_NAME_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_-]*$")
_KEY_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

_TRUE_LITERALS = ("true",)
_FALSE_LITERALS = ("false",)
_NONE_LITERALS = ("none", "null")


def parse_option_value(text: str) -> OptionValue:
    """Parse one option value literal (see the grammar above).

    Non-finite float literals (``nan``, ``inf``, ``1e999``, ...) stay strings:
    :func:`format_option_value` cannot render non-finite floats (they are not
    JSON-representable either), so admitting them here would break the
    parse/format inverse.
    """
    lowered = text.lower()
    if lowered in _TRUE_LITERALS:
        return True
    if lowered in _FALSE_LITERALS:
        return False
    if lowered in _NONE_LITERALS:
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        value = float(text)
        if math.isfinite(value):
            return value
    except ValueError:
        pass
    return text


def format_option_value(value: OptionValue) -> str:
    """Render ``value`` so that :func:`parse_option_value` recovers it exactly.

    Raises ``ValueError`` for values the grammar cannot represent losslessly:
    non-finite floats, strings containing the delimiters ``:,=`` or
    whitespace, and strings that would re-parse as a different type (e.g.
    ``"true"`` or ``"1.5"``).  Such values still travel fine through the JSON
    dict form (:meth:`SchedulerSpec.to_dict`); only the string grammar refuses
    them.
    """
    if value is None:
        return "none"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        text = repr(value)
        if parse_option_value(text) != value:  # nan / inf parse back as strings
            raise ValueError(f"float value {value!r} is not representable in a spec string")
        return text
    if isinstance(value, str):
        if not value or re.search(r"[:,=\s]", value):
            raise ValueError(
                f"string value {value!r} is not representable in a spec string "
                "(empty, or contains ':', ',', '=' or whitespace)"
            )
        reparsed = parse_option_value(value)
        if reparsed != value or not isinstance(reparsed, str):
            raise ValueError(
                f"string value {value!r} would re-parse as {reparsed!r}; "
                "use the dict form instead"
            )
        return value
    raise ValueError(f"unsupported option value type: {value!r}")


@dataclass(frozen=True)
class SchedulerSpec:
    """A registered scheduler name plus typed construction options.

    Instances are immutable and hashable; ``options`` may be given as any
    mapping and is normalised to a key-sorted tuple of pairs, so two specs
    with the same options in different order compare (and hash) equal.
    """

    name: str
    options: Tuple[Tuple[str, OptionValue], ...] = field(default=())

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(f"invalid scheduler name {self.name!r}")
        raw = self.options
        items = raw.items() if isinstance(raw, Mapping) else raw
        # Sort by key only: values of different types are not comparable.
        pairs = tuple(sorted(items, key=lambda pair: pair[0]))
        seen: Dict[str, OptionValue] = {}
        for key, value in pairs:
            if not _KEY_RE.match(key):
                raise ValueError(f"invalid option key {key!r} in spec {self.name!r}")
            if key in seen:
                raise ValueError(f"duplicate option key {key!r} in spec {self.name!r}")
            seen[key] = value
        object.__setattr__(self, "options", pairs)

    # -- construction ------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "SchedulerSpec":
        """Parse ``"name"`` or ``"name:key=value,key=value"`` into a spec."""
        if not isinstance(text, str):
            raise TypeError(f"spec must be a string, got {type(text).__name__}")
        name, sep, rest = text.partition(":")
        name = name.strip()
        options: Dict[str, OptionValue] = {}
        if sep:
            if not rest.strip():
                raise ValueError(f"spec {text!r} has ':' but no options")
            for item in rest.split(","):
                key, eq, value = item.partition("=")
                key = key.strip()
                if not eq:
                    raise ValueError(f"option {item!r} in spec {text!r} is missing '='")
                if key in options:
                    raise ValueError(f"duplicate option key {key!r} in spec {text!r}")
                options[key] = parse_option_value(value.strip())
        return cls(name=name, options=options)

    @classmethod
    def coerce(cls, spec: Union[str, "SchedulerSpec"]) -> "SchedulerSpec":
        """Accept either a spec object or its string form."""
        if isinstance(spec, cls):
            return spec
        return cls.parse(spec)

    def with_options(self, **options: OptionValue) -> "SchedulerSpec":
        """A copy with ``options`` merged over the existing ones."""
        merged = self.options_dict()
        merged.update(options)
        return SchedulerSpec(name=self.name, options=merged)

    # -- views -------------------------------------------------------------------

    def options_dict(self) -> Dict[str, OptionValue]:
        return dict(self.options)

    def format(self) -> str:
        """The canonical string form; exact inverse of :meth:`parse`."""
        if not self.options:
            return self.name
        rendered = ",".join(
            f"{key}={format_option_value(value)}" for key, value in self.options
        )
        return f"{self.name}:{rendered}"

    def __str__(self) -> str:
        return self.format()

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (used by requests, cache keys and JSON payloads)."""
        return {"name": self.name, "options": self.options_dict()}

    @classmethod
    def from_dict(cls, data: Union[str, Dict[str, Any]]) -> "SchedulerSpec":
        """Inverse of :meth:`to_dict`; also accepts the string grammar."""
        if isinstance(data, str):
            return cls.parse(data)
        unknown = set(data) - {"name", "options"}
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        return cls(name=data["name"], options=dict(data.get("options") or {}))

    # -- resolution --------------------------------------------------------------

    def resolve(self) -> Any:
        """Instantiate the scheduler through the registry.

        Raises ``KeyError`` for an unregistered name and ``TypeError`` (naming
        the factory) for an option the factory rejects.
        """
        return create_scheduler(self.name, **self.options_dict())
