"""repro.service — the batch scheduling-service API.

One facade for every consumer of the schedulers (experiments, examples, the
simulation layer, CLIs, future network frontends):

* :class:`SchedulerSpec` — ``"name:key=value,key=value"`` spec strings,
  parsed/formatted losslessly and resolved through the scheduler registry;
* :class:`ScheduleRequest` / :class:`ScheduleResponse` — frozen, typed
  request/response envelopes with versioned JSON round-trip;
* :class:`SchedulingService` — batch execution over a reusable worker pool
  with a content-addressed :class:`ScheduleCache`;
* :func:`execute_request` — the pure single-request execution path the
  service (and the experiment engine's evaluation cells) run on;
* ``python -m repro.service`` — requests in as JSONL, responses out as JSONL.
"""

from repro.service.cache import ScheduleCache
from repro.service.messages import (
    CACHE_DISABLED,
    CACHE_HIT,
    CACHE_MISS,
    REQUEST_KIND,
    REQUEST_VERSION,
    RESPONSE_KIND,
    RESPONSE_VERSION,
    ScheduleRequest,
    ScheduleResponse,
)
from repro.service.service import (
    SchedulingService,
    build_response,
    effective_spec,
    execute_request,
    ga_best_objectives,
)
from repro.service.spec import SchedulerSpec, format_option_value, parse_option_value

__all__ = [
    "SchedulerSpec",
    "ScheduleRequest",
    "ScheduleResponse",
    "SchedulingService",
    "ScheduleCache",
    "execute_request",
    "effective_spec",
    "build_response",
    "ga_best_objectives",
    "parse_option_value",
    "format_option_value",
    "CACHE_HIT",
    "CACHE_MISS",
    "CACHE_DISABLED",
    "REQUEST_KIND",
    "REQUEST_VERSION",
    "RESPONSE_KIND",
    "RESPONSE_VERSION",
]
