"""The scheduling service: batch request execution over a reusable worker pool.

:func:`execute_request` is the single, *pure* execution path: resolve the
request's spec through the scheduler registry, schedule the task set, and
fold the outcome into a :class:`~repro.service.messages.ScheduleResponse`.
Purity is load-bearing — for stochastic methods that were not given an
explicit ``seed`` option (the GA), the service derives one from the request's
content hash, so the same request yields bit-identical results in-process, on
any worker of the pool, and across runs.  That is what makes the
content-addressed :class:`~repro.service.cache.ScheduleCache` sound.

:class:`SchedulingService` layers three things on top of the pure function:

* a **worker pool** (``ProcessPoolExecutor``; ``n_workers=1`` runs serially
  in-process) that is created lazily and reused across batches;
* the **schedule cache** — requests whose content key is already cached are
  answered without computing anything, and duplicate requests inside one
  batch are computed once;
* **provenance** — every response records whether it was a cache ``hit`` or
  ``miss`` (or ``disabled``), under which content key, and how long the
  computation took.

The experiment engine, the quickstart example, the controller simulation and
the ``python -m repro.service`` JSONL CLI all schedule through this facade.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, Future, ProcessPoolExecutor
from dataclasses import replace
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.core.memo import drain_memo_metrics
from repro.core.metrics import aggregate_psi, aggregate_upsilon
from repro.core.serialization import content_hash, schedule_to_dict
from repro.obs.metrics import (
    REQUESTS_TOTAL,
    MetricsRegistry,
    merge_snapshots,
    observe_phases,
)
from repro.obs.trace import (
    PHASE_CACHE_LOOKUP,
    PHASE_QUEUE_WAIT,
    PHASE_SCHEDULE,
    PHASE_STORE,
    Trace,
    activate,
    new_trace_id,
    span,
)
from repro.scheduling.base import SystemScheduleResult
from repro.service.cache import ScheduleCache
from repro.service.messages import (
    CACHE_DISABLED,
    CACHE_HIT,
    CACHE_MISS,
    ScheduleRequest,
    ScheduleResponse,
)
from repro.service.spec import SchedulerSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.store import CacheBackend

#: Spec names for which the service derives a deterministic seed when the
#: request does not pin one.  Methods registered here must accept a ``seed``
#: keyword override.
DERIVED_SEED_METHODS = frozenset({"ga"})

#: Scalar types of per-device ``info`` diagnostics that responses carry over.
_SCALAR_INFO_TYPES = (bool, int, float, str, type(None))


def derive_seed(request: ScheduleRequest) -> int:
    """Deterministic RNG seed derived from the request's content.

    Salted so the stream decorrelates from any other use of the same hash.
    """
    return int(content_hash({"purpose": "service-derived-seed", "request": request.content_key()}), 16)


def effective_spec(request: ScheduleRequest) -> SchedulerSpec:
    """The spec actually executed: the request's, plus a derived seed if needed."""
    spec = request.spec
    if spec.name in DERIVED_SEED_METHODS and spec.options_dict().get("seed") is None:
        return spec.with_options(seed=derive_seed(request))
    return spec


def ga_best_objectives(result: SystemScheduleResult) -> Tuple[float, float]:
    """Aggregate the best-Psi and best-Upsilon Pareto points across devices.

    Each per-device GA search yields its own Pareto front; the system-level
    figures use the best-Psi (respectively best-Upsilon) schedule of every
    partition, aggregated job-weighted, mirroring how the paper reports "the
    best result obtained for each objective".  For single-schedule methods the
    per-device fronts degenerate to the produced schedule, so the aggregates
    equal the plain system Psi/Upsilon.
    """
    best_psi_schedules = []
    best_upsilon_schedules = []
    for device_result in result.per_device.values():
        info = device_result.info
        psi_schedule = info.get("best_psi_schedule") or device_result.schedule
        upsilon_schedule = info.get("best_upsilon_schedule") or device_result.schedule
        if psi_schedule is not None:
            best_psi_schedules.append(psi_schedule)
        if upsilon_schedule is not None:
            best_upsilon_schedules.append(upsilon_schedule)
    best_psi = aggregate_psi(best_psi_schedules) if best_psi_schedules else 0.0
    best_upsilon = aggregate_upsilon(best_upsilon_schedules) if best_upsilon_schedules else 0.0
    return best_psi, best_upsilon


def _effective_horizon(request: ScheduleRequest) -> int:
    if request.horizon is not None:
        return request.horizon
    task_set = request.effective_task_set()
    return task_set.hyperperiod() if len(task_set) else 0


def build_response(
    request: ScheduleRequest,
    spec: SchedulerSpec,
    result: SystemScheduleResult,
    *,
    produces_schedule: bool = True,
    elapsed_s: float = 0.0,
) -> ScheduleResponse:
    """Fold a scheduler outcome into the response envelope (deterministic)."""
    if not produces_schedule:
        return ScheduleResponse(
            request_id=request.request_id,
            spec=str(spec),
            horizon=_effective_horizon(request),
            schedulable=bool(result.schedulable),
            psi=0.0,
            upsilon=0.0,
            best_psi=0.0,
            best_upsilon=0.0,
            per_device={},
            elapsed_s=elapsed_s,
        )

    task_set = request.effective_task_set()
    per_device: Dict[str, Dict[str, Any]] = {}
    for device, device_result in result.per_device.items():
        schedule = device_result.schedule
        info = {
            key: value
            for key, value in device_result.info.items()
            if isinstance(value, _SCALAR_INFO_TYPES)
        }
        per_device[device] = {
            "schedulable": bool(device_result.schedulable),
            "psi": device_result.psi,
            "upsilon": device_result.upsilon,
            "n_jobs": device_result.metrics.n_jobs,
            "schedule": (
                schedule_to_dict(schedule, task_set) if schedule is not None else None
            ),
            "info": info,
        }

    best_psi, best_upsilon = ga_best_objectives(result)
    return ScheduleResponse(
        request_id=request.request_id,
        spec=str(spec),
        horizon=_effective_horizon(request),
        schedulable=bool(result.schedulable),
        psi=result.psi,
        upsilon=result.upsilon,
        best_psi=best_psi,
        best_upsilon=best_upsilon,
        per_device=per_device,
        elapsed_s=elapsed_s,
    )


def execute_request(request: ScheduleRequest) -> ScheduleResponse:
    """Execute one request end to end; pure in the request's content.

    The returned response carries no cache provenance (``cache="disabled"``);
    the service stamps hit/miss status and the content key on top.
    """
    start = time.perf_counter()
    spec = effective_spec(request)
    scheduler = spec.resolve()
    task_set = request.effective_task_set()
    with span(PHASE_SCHEDULE):
        if request.horizon is None:
            result = scheduler.schedule_taskset(task_set)
        else:
            result = scheduler.schedule_taskset(task_set, request.horizon)
    produces_schedule = bool(getattr(scheduler, "produces_schedule", True))
    elapsed = time.perf_counter() - start
    return build_response(
        request, spec, result, produces_schedule=produces_schedule, elapsed_s=elapsed
    )


def execute_request_observed(
    args: Tuple[ScheduleRequest, Optional[str], Optional[float]],
) -> Tuple[ScheduleResponse, Dict[str, Any], Dict[str, Any]]:
    """Pool-worker entry: :func:`execute_request` under a fresh trace + registry.

    ``args`` is ``(request, trace_id, submitted_monotonic)``.  The worker
    opens a trace under the dispatching process's ``trace_id``, records the
    queue-wait it observed (``time.monotonic`` is comparable across processes
    on one machine), executes, and ships back
    ``(response, trace_dict, registry_snapshot)`` — the response itself is
    untouched, so answers stay byte-identical with or without observation.
    """
    request, trace_id, submitted_monotonic = args
    registry = MetricsRegistry()
    trace = Trace(trace_id)
    if submitted_monotonic is not None:
        trace.add_phase(PHASE_QUEUE_WAIT, time.monotonic() - submitted_monotonic)
    with activate(trace):
        response = execute_request(request)
    observe_phases(registry, "schedule", trace.phases)
    drain_memo_metrics(registry)
    return response, trace.to_dict(), registry.snapshot()


def slim_job_entry(
    request: ScheduleRequest,
    content_key: str,
    trace_id: str,
    scenarios: Dict[str, Any],
) -> Tuple[Any, ...]:
    """One slim chunk-payload entry for ``request``; fills ``scenarios``.

    Scenario-backed requests ship only their small fields plus the scenario's
    content key — the envelope itself goes into the chunk's shared ``scenarios``
    table exactly once, however many jobs of the chunk reference it.  Requests
    with an explicit task set ship whole (their pickled form is already slim:
    memoised task sets are dropped, the content key rides along).
    """
    if request.scenario is not None:
        scenario_key = request.scenario.content_key()
        scenarios.setdefault(scenario_key, request.scenario)
        return (
            "scenario",
            scenario_key,
            request.system_index,
            request.spec,
            request.horizon,
            request.request_id,
            content_key,
            trace_id,
        )
    return ("request", request, content_key, trace_id)


def inflate_job_entry(
    entry: Tuple[Any, ...], scenarios: Dict[str, Any]
) -> Tuple[ScheduleRequest, str]:
    """Rebuild ``(request, trace_id)`` from a slim chunk-payload entry.

    The rebuilt request is content-identical to the dispatcher's (scenario
    envelopes are shared values; the content key is seeded so nobody re-hashes
    it), which is what keeps responses byte-identical to serial execution.
    """
    if entry[0] == "scenario":
        _, scenario_key, system_index, spec, horizon, request_id, content_key, trace_id = entry
        request = ScheduleRequest(
            scenario=scenarios[scenario_key],
            system_index=system_index,
            spec=spec,
            horizon=horizon,
            request_id=request_id,
        )
    else:
        _, request, content_key, trace_id = entry
    if content_key is not None:
        object.__setattr__(request, "_content_key", content_key)
    return request, trace_id


def execute_schedule_chunk(
    payload: Tuple[Dict[str, Any], List[Tuple[Any, ...]], Optional[float]],
) -> Tuple[List[Tuple[ScheduleResponse, Dict[str, Any]]], Dict[str, Any]]:
    """Pool-worker entry: execute one slim chunk of requests.

    ``payload`` is ``(scenarios, entries, submitted_monotonic)``.  Each entry
    runs under its own trace (queue-wait measured when its turn comes, exactly
    as ``Executor.map`` chunking did); the chunk ships one registry snapshot
    covering every job plus this worker's memo-cache deltas.
    """
    scenarios, entries, submitted_monotonic = payload
    registry = MetricsRegistry()
    outcomes: List[Tuple[ScheduleResponse, Dict[str, Any]]] = []
    for entry in entries:
        request, trace_id = inflate_job_entry(entry, scenarios)
        trace = Trace(trace_id)
        if submitted_monotonic is not None:
            trace.add_phase(PHASE_QUEUE_WAIT, time.monotonic() - submitted_monotonic)
        with activate(trace):
            response = execute_request(request)
        observe_phases(registry, "schedule", trace.phases)
        outcomes.append((response, trace.to_dict()))
    drain_memo_metrics(registry)
    return outcomes, registry.snapshot()


_CACHE_DEFAULT = object()


class SchedulingService:
    """Request/response facade over the schedulers, with batching and caching.

    Parameters
    ----------
    n_workers:
        Worker processes for batch execution; ``1`` (the default) runs
        serially in-process.  Responses are bit-identical at any worker
        count.
    cache_dir:
        Directory for the persistent schedule cache; ``None`` keeps the
        cache in memory only.
    cache_backend:
        Storage-backend spec string (see :mod:`repro.store`) — e.g.
        ``sqlite:path=cache.db`` or ``directory:root=DIR`` — or a live
        :class:`~repro.store.CacheBackend`.  Directory specs persist under
        ``root/schedules`` (the shared two-namespace cache layout);
        ``cache_dir`` remains the shorthand for using a directory as the
        schedule cache *root* directly.  The service owns a backend it
        opened from a string (closed with the service).
    cache:
        An explicit :class:`ScheduleCache` to share between services, or
        ``None`` to disable the cache: nothing is stored across batches and
        responses carry ``cache="disabled"``.  Content-identical requests
        *within* one batch are still computed only once (the execution path
        is pure, so recomputing them could never change the answer).
    executor:
        An existing worker pool to execute on instead of creating one — the
        serving daemon of :mod:`repro.server` shares one warm
        ``ProcessPoolExecutor`` between the scheduling and simulation
        services this way.  The caller keeps ownership (:meth:`close` will
        not shut a borrowed executor down); ``n_workers`` should describe
        its size.
    chunksize:
        Jobs per pool chunk for batch dispatch; ``None`` (the default)
        derives ``max(1, unique_jobs // (n_workers * 4))`` per batch.  Each
        chunk ships its distinct scenario envelopes once, however many jobs
        reference them.  Responses are bit-identical at any chunk size.

    Use the service as a context manager (or call :meth:`close`) to release
    the worker pool.
    """

    def __init__(
        self,
        *,
        n_workers: int = 1,
        cache_dir: Optional[str] = None,
        cache_backend: Optional[Union[str, "CacheBackend"]] = None,
        cache: Union[ScheduleCache, None, object] = _CACHE_DEFAULT,
        executor: Optional[Executor] = None,
        chunksize: Optional[int] = None,
    ):
        if not isinstance(n_workers, int) or n_workers < 1:
            raise ValueError(f"n_workers must be a positive integer, got {n_workers!r}")
        if chunksize is not None and (not isinstance(chunksize, int) or chunksize < 1):
            raise ValueError(f"chunksize must be a positive integer, got {chunksize!r}")
        given = [
            name
            for name, present in (
                ("cache_dir", cache_dir is not None),
                ("cache_backend", cache_backend is not None),
                ("cache", cache is not _CACHE_DEFAULT),
            )
            if present
        ]
        if len(given) > 1:
            raise ValueError(
                f"pass at most one of cache_dir, cache_backend and cache, "
                f"not both {' and '.join(given)}"
            )
        self.n_workers = n_workers
        self.chunksize = chunksize
        #: This service's metrics: request counters, per-phase latency
        #: histograms and — for caches the service creates itself — the cache
        #: operation counters.  :meth:`metrics` merges in any separately
        #: created cache registry.
        self.registry = MetricsRegistry()
        self._owns_cache = False
        if cache_backend is not None:
            from repro.store import schedule_backend

            self.cache: Optional[ScheduleCache] = ScheduleCache(
                backend=schedule_backend(cache_backend), metrics=self.registry
            )
            self._owns_cache = isinstance(cache_backend, str)
        elif cache is _CACHE_DEFAULT:
            self.cache = ScheduleCache(cache_dir, metrics=self.registry)
        else:
            self.cache = cache  # type: ignore[assignment]
        self._executor: Optional[Executor] = executor
        self._owns_executor = executor is None
        #: Requests actually computed (cache misses) over this service's lifetime.
        self.computed = 0
        #: Phase breakdowns of the most recent :meth:`submit_batch`, one
        #: ``{"trace_id", "phases"}`` dict per request in request order.
        self.last_traces: List[Dict[str, Any]] = []

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        if self._executor is not None and self._owns_executor:
            self._executor.shutdown()
            self._executor = None
        if self._owns_cache and self.cache is not None:
            self.cache.close()

    def __enter__(self) -> "SchedulingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _get_executor(self) -> Executor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.n_workers)
        return self._executor

    # -- the API -----------------------------------------------------------------

    def submit(self, request: ScheduleRequest) -> ScheduleResponse:
        """Execute one request (through the cache)."""
        return self.submit_batch([request])[0]

    def execute_in_pool(self, request: ScheduleRequest) -> "Future[ScheduleResponse]":
        """Submit one request to the worker pool; returns its future.

        This is the *awaitable unit* of request execution: no cache lookup,
        no provenance stamping — just the pure :func:`execute_request` running
        on the pool.  The async serving daemon (:mod:`repro.server`) wraps
        these futures into its event loop and layers cache + in-flight dedup
        on top; synchronous callers should prefer :meth:`submit`.
        """
        return self._get_executor().submit(execute_request, request)

    def execute_in_pool_observed(
        self, request: ScheduleRequest
    ) -> "Future[Tuple[ScheduleResponse, Dict[str, Any], Dict[str, Any]]]":
        """Like :meth:`execute_in_pool`, but through the observed worker entry.

        The future resolves to ``(response, trace_dict, registry_snapshot)``;
        the serving daemon's dispatcher merges the snapshot into its registry
        and keeps the phase breakdown.  The response is identical to
        :meth:`execute_in_pool`'s.
        """
        return self._get_executor().submit(
            execute_request_observed, (request, new_trace_id(), time.monotonic())
        )

    #: Value of the ``kind`` label on this service's registry metrics.
    METRICS_KIND = "schedule"

    def submit_batch(self, requests: Iterable[ScheduleRequest]) -> List[ScheduleResponse]:
        """Execute a batch; responses are returned in request order.

        Cached and duplicate requests are not recomputed: every distinct
        content key in the batch is executed at most once, and each response's
        ``cache`` field records what happened (``hit``/``miss``/``disabled``).
        Per-request phase breakdowns land in :attr:`last_traces` and the phase
        latency histograms of :attr:`registry`; responses carry none of it.
        """
        requests = list(requests)
        responses: List[Optional[ScheduleResponse]] = [None] * len(requests)
        keys = [request.content_key() for request in requests]
        traces = [Trace() for _ in requests]
        kind = self.METRICS_KIND

        # One batched lookup covers the whole batch: each distinct key goes to
        # the cache (and its backend) exactly once, however often it repeats.
        # Hit/miss statistics still count per position, and each position's
        # trace carries an equal share of the lookup so phase totals match.
        lookup_started = time.monotonic()
        found = self.cache.get_many(keys) if self.cache is not None else {}
        lookup_share = (
            (time.monotonic() - lookup_started) / len(requests) if requests else 0.0
        )

        # Key -> positions still to answer, in first-seen order.
        pending: Dict[str, List[int]] = {}
        for position, (request, key) in enumerate(zip(requests, keys)):
            trace = traces[position]
            trace.add_phase(PHASE_CACHE_LOOKUP, lookup_share)
            observe_phases(self.registry, kind, trace.phases[-1:])
            cached = found.get(key)
            if cached is not None:
                responses[position] = ScheduleResponse.from_result_dict(
                    cached, request_id=request.request_id, cache=CACHE_HIT, cache_key=key
                )
            else:
                pending.setdefault(key, []).append(position)

        computed = self._execute_unique(
            [
                (key, requests[positions[0]], traces[positions[0]])
                for key, positions in pending.items()
            ]
        )

        # Mirror image of the lookup: all freshly computed results persist in
        # one batched write (one SQLite transaction), each leader trace taking
        # an equal share of the store phase.
        store_share = 0.0
        if self.cache is not None and pending:
            store_started = time.monotonic()
            self.cache.put_many(
                [(key, computed[key].result_dict()) for key in pending]
            )
            store_share = (time.monotonic() - store_started) / len(pending)
        for key, positions in pending.items():
            base = computed[key]
            if self.cache is not None:
                leader_trace = traces[positions[0]]
                leader_trace.add_phase(PHASE_STORE, store_share)
                observe_phases(self.registry, kind, leader_trace.phases[-1:])
            for occurrence, position in enumerate(positions):
                if self.cache is None:
                    status = CACHE_DISABLED
                else:
                    status = CACHE_MISS if occurrence == 0 else CACHE_HIT
                responses[position] = replace(
                    base,
                    request_id=requests[position].request_id,
                    cache=status,
                    cache_key=key,
                )
        for response in responses:
            if response is not None:
                self.registry.counter_inc(
                    REQUESTS_TOTAL,
                    help="Requests answered, by kind and cache status.",
                    kind=kind,
                    cache=response.cache,
                )
        # Serial-path executions ran scheduler memo caches in this process;
        # fold their hit/miss deltas into the service registry (pooled chunks
        # already shipped theirs inside the merged snapshots).
        drain_memo_metrics(self.registry)
        self.last_traces = [trace.to_dict() for trace in traces]
        return [response for response in responses if response is not None]

    def _execute_unique(self, work) -> Dict[str, ScheduleResponse]:
        """Execute one request per distinct content key; phases land on the
        leader's trace (``work`` is ``(key, request, trace)`` triples)."""
        if not work:
            return {}
        if self.n_workers == 1 or len(work) == 1:
            results = []
            for _, request, trace in work:
                before = len(trace.phases)
                with activate(trace):
                    results.append(execute_request(request))
                observe_phases(self.registry, self.METRICS_KIND, trace.phases[before:])
        else:
            submitted = time.monotonic()
            chunksize = self.chunksize or max(1, len(work) // (self.n_workers * 4))
            executor = self._get_executor()
            futures = []
            for start in range(0, len(work), chunksize):
                chunk = work[start : start + chunksize]
                # Slim payload: each distinct scenario envelope crosses the
                # process boundary once per chunk, not once per job.
                scenarios: Dict[str, Any] = {}
                entries = [
                    slim_job_entry(request, key, trace.trace_id, scenarios)
                    for key, request, trace in chunk
                ]
                futures.append(
                    executor.submit(
                        execute_schedule_chunk, (scenarios, entries, submitted)
                    )
                )
            results = []
            for future in futures:
                outcomes, snapshot = future.result()
                # The worker already observed its phases (queue-wait and
                # compute) into the shipped snapshot; merging it here is what
                # makes pooled totals equal serial totals.
                self.registry.merge(snapshot)
                for response, trace_dict in outcomes:
                    work[len(results)][2].phases.extend(trace_dict["phases"])
                    results.append(response)
        self.computed += len(results)
        return {key: result for (key, _, _), result in zip(work, results)}

    # -- introspection -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Lifetime counters: requests computed plus cache hit/miss/store totals.

        ``cache_backend`` describes where cache entries persist (backend name,
        location, entry count, size) — ``{"name": "memory"}`` when the cache
        only lives in this process.
        """
        stats: Dict[str, Any] = {"computed": self.computed}
        if self.cache is not None:
            cache_stats = self.cache.stats()
            stats.update(
                cache_entries=cache_stats["entries"],
                cache_hits=cache_stats["hits"],
                cache_misses=cache_stats["misses"],
                cache_stores=cache_stats["stores"],
                cache_backend=cache_stats["backend"],
            )
        return stats

    def metrics_registries(self) -> List[MetricsRegistry]:
        """Every distinct registry this service's metrics live on."""
        registries = [self.registry]
        if self.cache is not None and self.cache.registry is not self.registry:
            registries.append(self.cache.registry)
        return registries

    def metrics(self) -> Dict[str, Any]:
        """Merged snapshot of this service's metrics (counters + histograms)."""
        return merge_snapshots(
            registry.snapshot() for registry in self.metrics_registries()
        )
