"""JSONL batch CLI for the scheduling service: ``python -m repro.service``.

Reads schedule requests (one versioned JSON payload per line, see
:class:`repro.service.ScheduleRequest`), executes them as one batch through
:class:`repro.service.SchedulingService`, and writes the responses — one
versioned JSON payload per line, in request order — to stdout or ``--output``.

Alternatively ``--scenario`` builds the batch declaratively: requests are
generated from a named (or inline-JSON) scenario for ``--systems`` system
indices and each ``--methods`` spec, with no request file at all.
``--campaign`` goes one level further and expands a whole campaign grid
(see :mod:`repro.campaign`) into the batch.

Examples::

    # Schedule a request file on four workers with a persistent cache
    python -m repro.service requests.jsonl --workers 4 --cache-dir cache/ -o responses.jsonl

    # Pipe mode: requests on stdin, responses on stdout
    python -m repro.service - < requests.jsonl > responses.jsonl

    # Declarative mode: schedule 3 systems of a preset scenario two ways
    python -m repro.service --scenario faulty-controller --systems 3 \
        --methods static gpiocp -o responses.jsonl

Re-running the same requests against a populated ``--cache-dir`` recomputes
nothing: every response comes back flagged ``cache: hit``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, TextIO

from repro.core import logging as relog
from repro.core.profiling import DEFAULT_PROFILE_PATH, maybe_profile
from repro.scenario import create_scenario, format_scenario_listing
from repro.scheduling import format_scheduler_listing
from repro.service.messages import ScheduleRequest
from repro.service.service import SchedulingService
from repro.service.spec import SchedulerSpec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Batch-schedule JSONL schedule requests; JSONL responses out.",
    )
    parser.add_argument(
        "input",
        nargs="?",
        default=None,
        help="request JSONL file ('-' reads stdin); one versioned "
        "repro/schedule-request payload per line.  Omit when using --scenario",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME_OR_JSON",
        help="generate the request batch from a scenario (a registered preset "
        "name, see --list-scenarios, or inline repro/scenario JSON) instead "
        "of reading a request file",
    )
    parser.add_argument(
        "--systems",
        type=int,
        default=1,
        metavar="N",
        help="with --scenario: schedule system indices 0..N-1 (default: 1)",
    )
    parser.add_argument(
        "--methods",
        nargs="+",
        default=["static"],
        metavar="SPEC",
        help="with --scenario: scheduler spec strings to evaluate per system "
        "(default: static)",
    )
    parser.add_argument(
        "--campaign",
        default=None,
        metavar="SPEC_OR_FILE",
        help="generate the request batch from a campaign grid (a repro/campaign "
        "JSON file or inline JSON) instead of a request file; responses come "
        "back in canonical grid order.  See `python -m repro.campaign` for "
        "checkpointed runs and aggregated reports",
    )
    parser.add_argument(
        "--list-methods",
        action="store_true",
        help="list the registered scheduling methods and exit",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list the registered scenario presets and exit",
    )
    parser.add_argument(
        "--list-execution-models",
        action="store_true",
        help="list the registered run-time execution models and exit "
        "(simulated via `python -m repro.runtime`)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="response JSONL file (default: stdout)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the batch (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="directory for the persistent content-addressed schedule cache "
        "(omit to cache in memory for this batch only)",
    )
    parser.add_argument(
        "--cache-backend",
        default=None,
        metavar="SPEC",
        help="storage backend for the persistent schedule cache, as a "
        "'name:key=value' spec string — e.g. 'sqlite:path=cache.db' or "
        "'directory:root=DIR' (persists under DIR/schedules; see "
        "`python -m repro.store --list-backends`).  Conflicts with --cache-dir",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also print the schedule cache's lifetime counters "
        "(entries/hits/misses/stores) and the per-worker memo-cache "
        "hit/miss counters to stderr after the batch",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const=DEFAULT_PROFILE_PATH,
        default=None,
        metavar="PSTATS",
        help="run the batch under cProfile: dump raw stats to PSTATS "
        f"(default: {DEFAULT_PROFILE_PATH}) and print the top-20 cumulative "
        "summary to stderr",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the batch's metrics (Prometheus text exposition: request "
        "counters, cache ops, per-phase latency histograms) to FILE",
    )
    relog.add_log_level_argument(parser)
    return parser


def scenario_requests(
    scenario_ref: str, methods: Sequence[str], n_systems: int
) -> List[ScheduleRequest]:
    """Build the declarative request batch of ``--scenario`` mode."""
    scenario = create_scenario(scenario_ref)
    requests = []
    for system_index in range(n_systems):
        for method in methods:
            spec = SchedulerSpec.parse(method)
            requests.append(
                ScheduleRequest(
                    scenario=scenario,
                    system_index=system_index,
                    spec=spec,
                    request_id=f"{scenario.name}/{system_index}/{spec}",
                )
            )
    return requests


def campaign_requests(campaign_ref: str) -> List[ScheduleRequest]:
    """Build the request batch of ``--campaign`` mode: the whole grid.

    Requests are content-identical to what :class:`~repro.campaign.CampaignRunner`
    submits, so a service batch and a checkpointed campaign run share
    schedule-cache entries.
    """
    from repro.campaign import cell_request, load_campaign

    spec = load_campaign(campaign_ref)
    return [cell_request(spec, cell) for cell in spec.cells()]


def read_requests(handle: TextIO, *, source: str) -> List[ScheduleRequest]:
    requests: List[ScheduleRequest] = []
    for line_number, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            requests.append(ScheduleRequest.from_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError) as error:
            raise SystemExit(f"{source}:{line_number}: invalid request: {error}")
    return requests


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    relog.configure_from_args(args)
    if args.list_methods or args.list_scenarios or args.list_execution_models:
        if args.list_methods:
            print(format_scheduler_listing())
        if args.list_scenarios:
            print(format_scenario_listing())
        if args.list_execution_models:
            from repro.runtime import format_execution_model_listing

            print(format_execution_model_listing())
        return 0
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    sources = [
        source
        for source in (args.input, args.scenario, args.campaign)
        if source is not None
    ]
    if len(sources) != 1:
        parser.error("provide exactly one of an input file, --scenario and --campaign")
    if args.systems < 1:
        parser.error(f"--systems must be >= 1, got {args.systems}")

    if args.campaign is not None:
        try:
            requests = campaign_requests(args.campaign)
        except (ValueError, KeyError) as error:
            parser.error(f"--campaign: {error}")
    elif args.scenario is not None:
        try:
            requests = scenario_requests(args.scenario, args.methods, args.systems)
        except (ValueError, KeyError) as error:
            parser.error(f"--scenario: {error}")
    elif args.input == "-":
        requests = read_requests(sys.stdin, source="<stdin>")
    else:
        with open(args.input, "r", encoding="utf-8") as handle:
            requests = read_requests(handle, source=args.input)

    if args.cache_dir is not None and args.cache_backend is not None:
        parser.error("pass either --cache-dir or --cache-backend, not both")

    with maybe_profile(args.profile):
        try:
            service = SchedulingService(
                n_workers=args.workers,
                cache_dir=args.cache_dir,
                cache_backend=args.cache_backend,
            )
        except ValueError as error:
            parser.error(f"--cache-backend: {error}")
        with service:
            responses = service.submit_batch(requests)
            stats = service.stats()
            metrics_snapshot = service.metrics()

    lines = "".join(response.to_json() + "\n" for response in responses)
    if args.output is None:
        sys.stdout.write(lines)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(lines)

    hits = sum(1 for response in responses if response.cache == "hit")
    print(
        f"{len(responses)} response(s): {stats['computed']} computed, "
        f"{hits} served from cache",
        file=sys.stderr,
    )
    if args.verbose:
        print(format_cache_stats("schedule cache", stats), file=sys.stderr)
        print(format_memo_stats(metrics_snapshot), file=sys.stderr)
    if args.metrics_out is not None:
        from repro.obs import write_metrics_file

        write_metrics_file(args.metrics_out, metrics_snapshot)
        relog.info("metrics-written", path=args.metrics_out)
    return 0


def format_cache_stats(label: str, stats: dict) -> str:
    """One stderr line of a service's cache counters (``--verbose`` mode)."""
    if "cache_entries" not in stats:
        return f"{label}: disabled"
    line = (
        f"{label}: {stats['cache_entries']} entries, "
        f"{stats['cache_hits']} hits, {stats['cache_misses']} misses, "
        f"{stats['cache_stores']} stores"
    )
    backend = stats.get("cache_backend")
    if isinstance(backend, dict) and backend.get("name"):
        location = backend.get("location")
        where = f" at {location}" if location else ""
        line += f" [backend: {backend['name']}{where}]"
    return line


def format_memo_stats(metrics_snapshot: dict) -> str:
    """One stderr line of per-worker memo-cache counters (``--verbose`` mode).

    Reads the ``repro_memo_ops_total`` samples of a merged metrics snapshot;
    pool workers drain their process-local memo deltas into the registry
    snapshots they ship back, so the totals cover the dispatching process and
    every worker alike.
    """
    from repro.obs.metrics import MEMO_OPS_TOTAL

    family = metrics_snapshot.get("families", {}).get(MEMO_OPS_TOTAL, {})
    per_memo: dict = {}
    for sample in family.get("samples", []):
        labels = sample.get("labels", {})
        ops = per_memo.setdefault(str(labels.get("memo", "?")), {})
        op = str(labels.get("op", "?"))
        ops[op] = ops.get(op, 0) + int(sample.get("value", 0))
    if not per_memo:
        return "memo caches: (no activity)"
    parts = []
    for name in sorted(per_memo):
        ops = per_memo[name]
        part = f"{name} {ops.get('hit', 0)} hits / {ops.get('miss', 0)} misses"
        if ops.get("evict"):
            part += f" / {ops['evict']} evictions"
        parts.append(part)
    return "memo caches: " + ", ".join(parts)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
