"""JSONL batch CLI for the scheduling service: ``python -m repro.service``.

Reads schedule requests (one versioned JSON payload per line, see
:class:`repro.service.ScheduleRequest`), executes them as one batch through
:class:`repro.service.SchedulingService`, and writes the responses — one
versioned JSON payload per line, in request order — to stdout or ``--output``.

Examples::

    # Schedule a request file on four workers with a persistent cache
    python -m repro.service requests.jsonl --workers 4 --cache-dir cache/ -o responses.jsonl

    # Pipe mode: requests on stdin, responses on stdout
    python -m repro.service - < requests.jsonl > responses.jsonl

Re-running the same requests against a populated ``--cache-dir`` recomputes
nothing: every response comes back flagged ``cache: hit``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, TextIO

from repro.service.messages import ScheduleRequest
from repro.service.service import SchedulingService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Batch-schedule JSONL schedule requests; JSONL responses out.",
    )
    parser.add_argument(
        "input",
        help="request JSONL file ('-' reads stdin); one versioned "
        "repro/schedule-request payload per line",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="response JSONL file (default: stdout)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the batch (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="directory for the persistent content-addressed schedule cache "
        "(omit to cache in memory for this batch only)",
    )
    return parser


def read_requests(handle: TextIO, *, source: str) -> List[ScheduleRequest]:
    requests: List[ScheduleRequest] = []
    for line_number, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            requests.append(ScheduleRequest.from_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError) as error:
            raise SystemExit(f"{source}:{line_number}: invalid request: {error}")
    return requests


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")

    if args.input == "-":
        requests = read_requests(sys.stdin, source="<stdin>")
    else:
        with open(args.input, "r", encoding="utf-8") as handle:
            requests = read_requests(handle, source=args.input)

    with SchedulingService(n_workers=args.workers, cache_dir=args.cache_dir) as service:
        responses = service.submit_batch(requests)
        stats = service.stats()

    lines = "".join(response.to_json() + "\n" for response in responses)
    if args.output is None:
        sys.stdout.write(lines)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(lines)

    hits = sum(1 for response in responses if response.cache == "hit")
    print(
        f"{len(responses)} response(s): {stats['computed']} computed, "
        f"{hits} served from cache",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
