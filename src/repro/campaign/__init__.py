"""repro.campaign — declarative multi-scenario campaign orchestration.

The layer that turns the three lower subsystems into one production-shaped
pipeline::

    scenario  (what to evaluate)      repro.scenario.Scenario
       × method (how to schedule)     repro.service.SchedulerSpec
       × system × utilisation × replication
    ------------------------------------------------  CampaignSpec (versioned JSON)
    CampaignRunner  — grid -> ScheduleRequests through one SchedulingService
                      (worker pool, in-batch dedup, content-addressed cache),
                      checkpointed to campaign.jsonl for zero-recompute resume
    CampaignReport  — per-(scenario, method) Psi/Upsilon/schedulability/
                      response-time statistics, JSON + Markdown leaderboards

One declarative description in, one queryable aggregated report out — and
both ends are content-addressed, so results are bit-identical at any worker
count and a resumed campaign never mixes with a different grid.

Campaigns also scale *out*: ``CampaignRunner(..., shard=(i, n))`` runs the
``i``-th of ``n`` disjoint content-key ranges of the grid (per-shard
journals, merged byte-identically into ``campaign.jsonl`` once every shard
finishes), and ``cache_backend="sqlite:path=..."`` gives the shard workers
one shared crash-safe cache file (see :mod:`repro.store`).

CLI: ``python -m repro.campaign`` (``run``, ``merge``, ``report``, ``--list``).
"""

from repro.campaign.report import (
    OVERALL,
    REPORT_KIND,
    REPORT_VERSION,
    CampaignReport,
    runtime_label,
)
from repro.campaign.runner import (
    CAMPAIGN_JOURNAL_FILENAME,
    CAMPAIGN_SPEC_FILENAME,
    CampaignResult,
    CampaignRunner,
    cell_request,
    cell_scenario,
    cell_shard,
    cell_values,
    find_shard_journals,
    load_campaign_records,
    maybe_merge_shard_journals,
    merge_shard_journals,
    parse_shard,
    read_campaign_journal,
    read_campaign_journal_full,
    replication_seed,
    run_campaign,
    runtime_cell_request,
    runtime_cell_shard,
    runtime_cell_values,
    shard_journal_filename,
    shard_of_key,
)
from repro.campaign.spec import (
    CAMPAIGN_KIND,
    CAMPAIGN_METRICS,
    CAMPAIGN_VERSION,
    LOWER_IS_BETTER,
    RUNTIME_LOWER_IS_BETTER,
    RUNTIME_METRICS,
    CampaignCell,
    CampaignLike,
    CampaignSpec,
    RuntimeCell,
    RuntimeSpec,
    build_campaign,
    create_campaign,
    load_campaign,
)

__all__ = [
    "CampaignSpec",
    "CampaignCell",
    "CampaignLike",
    "CampaignRunner",
    "CampaignResult",
    "CampaignReport",
    "RuntimeSpec",
    "RuntimeCell",
    "CAMPAIGN_KIND",
    "CAMPAIGN_VERSION",
    "CAMPAIGN_METRICS",
    "CAMPAIGN_JOURNAL_FILENAME",
    "CAMPAIGN_SPEC_FILENAME",
    "LOWER_IS_BETTER",
    "RUNTIME_METRICS",
    "RUNTIME_LOWER_IS_BETTER",
    "OVERALL",
    "REPORT_KIND",
    "REPORT_VERSION",
    "build_campaign",
    "create_campaign",
    "load_campaign",
    "run_campaign",
    "load_campaign_records",
    "read_campaign_journal",
    "read_campaign_journal_full",
    "cell_request",
    "cell_scenario",
    "cell_shard",
    "cell_values",
    "find_shard_journals",
    "maybe_merge_shard_journals",
    "merge_shard_journals",
    "parse_shard",
    "replication_seed",
    "runtime_cell_request",
    "runtime_cell_shard",
    "runtime_cell_values",
    "runtime_label",
    "shard_journal_filename",
    "shard_of_key",
]
