"""``CampaignReport`` — queryable aggregation of a campaign's cells.

One report summarises every ``(scenario, method)`` pair of a campaign grid:
for each selected metric, the per-pair sample statistics
(:class:`~repro.experiments.stats.SeriesStats` over systems × replications ×
utilisation points) plus an ``overall`` per-method aggregate across all
scenarios, which feeds the per-metric leaderboard.

Reports are values with the same discipline as everything else in the
pipeline: a lossless versioned JSON round-trip
(``kind="repro/campaign-report"``, version 1) and deterministic content —
aggregation always walks cells in the spec's canonical grid order, so a
report built from a 1-worker run and one from a 4-worker (or resumed) run of
the same campaign are **byte-identical** JSON.

Emitters: :meth:`~CampaignReport.to_json` (machine-readable),
:meth:`~CampaignReport.to_markdown` (leaderboard table per metric) and
:meth:`~CampaignReport.to_text` (aligned plain-text tables via
:func:`repro.experiments.stats.format_table`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.campaign.spec import LOWER_IS_BETTER, CampaignSpec
from repro.core.serialization import (
    parse_versioned_payload,
    versioned_payload,
)
from repro.experiments.stats import SeriesStats, format_table

REPORT_KIND = "repro/campaign-report"
REPORT_VERSION = 1

#: Aggregate statistics of one (scenario, method, metric) sample.
StatsDict = Dict[str, float]

#: Pseudo-scenario key under which the all-scenarios aggregate is stored.
OVERALL = "overall"


def _stats_dict(values: List[float]) -> StatsDict:
    stats = SeriesStats.of(values)
    return {
        "n": stats.n,
        "mean": stats.mean,
        "std": stats.std,
        "min": stats.minimum,
        "max": stats.maximum,
        "median": stats.median,
    }


def _format_value(metric: str, value: float) -> str:
    if metric == "response_time":
        return f"{value:.1f}"
    return f"{value:.4f}"


@dataclass(frozen=True)
class CampaignReport:
    """Aggregated per-(scenario, method) statistics of one campaign.

    ``entries`` maps ``metric -> scenario -> method -> stats`` where
    ``scenario`` also takes the pseudo-key :data:`OVERALL` for the
    across-scenarios aggregate; pairs with no completed cells are simply
    absent.  ``n_cells_aggregated`` < ``n_cells_expected`` flags a report
    built from a partial (interrupted) campaign.
    """

    name: str
    campaign_key: str
    metrics: Tuple[str, ...]
    scenarios: Tuple[str, ...]
    methods: Tuple[str, ...]
    n_cells_expected: int
    n_cells_aggregated: int
    entries: Dict[str, Dict[str, Dict[str, StatsDict]]]

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_records(
        cls, spec: CampaignSpec, records: Mapping[Tuple, Mapping[str, Any]]
    ) -> "CampaignReport":
        """Aggregate journalled cell records (see ``CampaignRunner``).

        Cells are visited in the spec's canonical grid order regardless of
        the order ``records`` was populated in, which makes the resulting
        report (and its JSON serialisation) independent of worker count,
        chunking and resume history.
        """
        scenario_names = tuple(scenario.name for scenario in spec.scenarios)
        method_names = tuple(str(method) for method in spec.methods)

        samples: Dict[str, Dict[str, Dict[str, List[float]]]] = {
            metric: {
                scenario: {method: [] for method in method_names}
                for scenario in (*scenario_names, OVERALL)
            }
            for metric in spec.metrics
        }
        aggregated = 0
        for cell in spec.cells():
            values = records.get(cell.key())
            if values is None:
                continue
            aggregated += 1
            for metric in spec.metrics:
                if metric not in values:
                    continue
                value = float(values[metric])
                samples[metric][cell.scenario][cell.method].append(value)
                samples[metric][OVERALL][cell.method].append(value)

        entries: Dict[str, Dict[str, Dict[str, StatsDict]]] = {}
        for metric, per_scenario in samples.items():
            for scenario, per_method in per_scenario.items():
                for method, values in per_method.items():
                    if not values:
                        continue
                    entries.setdefault(metric, {}).setdefault(scenario, {})[
                        method
                    ] = _stats_dict(values)

        return cls(
            name=spec.name,
            campaign_key=spec.content_key(),
            metrics=spec.metrics,
            scenarios=scenario_names,
            methods=method_names,
            n_cells_expected=spec.n_cells,
            n_cells_aggregated=aggregated,
            entries=entries,
        )

    # -- queries -----------------------------------------------------------------

    @property
    def complete(self) -> bool:
        return self.n_cells_aggregated == self.n_cells_expected

    def stats(self, metric: str, scenario: str, method: str) -> Optional[StatsDict]:
        """The stats of one (metric, scenario, method) entry, or ``None``."""
        return self.entries.get(metric, {}).get(scenario, {}).get(method)

    def leaderboard(self, metric: str) -> List[Tuple[str, StatsDict]]:
        """Methods ranked by their overall mean of ``metric`` (best first).

        Higher is better except for the metrics in
        :data:`~repro.campaign.spec.LOWER_IS_BETTER`; ties break by method
        name so rankings are stable.
        """
        overall = self.entries.get(metric, {}).get(OVERALL, {})
        reverse = metric not in LOWER_IS_BETTER
        return sorted(
            overall.items(),
            key=lambda item: ((-item[1]["mean"]) if reverse else item[1]["mean"], item[0]),
        )

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return versioned_payload(
            REPORT_KIND,
            REPORT_VERSION,
            {
                "name": self.name,
                "campaign_key": self.campaign_key,
                "metrics": list(self.metrics),
                "scenarios": list(self.scenarios),
                "methods": list(self.methods),
                "cells": {
                    "expected": self.n_cells_expected,
                    "aggregated": self.n_cells_aggregated,
                },
                "entries": self.entries,
            },
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignReport":
        _, data = parse_versioned_payload(
            dict(payload), REPORT_KIND, max_version=REPORT_VERSION
        )
        cells = data.get("cells") or {}
        return cls(
            name=str(data["name"]),
            campaign_key=str(data["campaign_key"]),
            metrics=tuple(data["metrics"]),
            scenarios=tuple(data["scenarios"]),
            methods=tuple(data["methods"]),
            n_cells_expected=int(cells.get("expected", 0)),
            n_cells_aggregated=int(cells.get("aggregated", 0)),
            entries={
                metric: {
                    scenario: {method: dict(stats) for method, stats in per_method.items()}
                    for scenario, per_method in per_scenario.items()
                }
                for metric, per_scenario in (data.get("entries") or {}).items()
            },
        )

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignReport":
        return cls.from_dict(json.loads(text))

    # -- human-readable emitters -------------------------------------------------

    def _header_lines(self) -> List[str]:
        coverage = f"{self.n_cells_aggregated}/{self.n_cells_expected} cells"
        if not self.complete:
            coverage += " (PARTIAL — campaign not finished)"
        return [
            f"campaign: {self.name} ({self.campaign_key})",
            f"coverage: {coverage}",
            f"scenarios: {', '.join(self.scenarios)}",
            f"methods: {', '.join(self.methods)}",
        ]

    def to_markdown(self) -> str:
        """Markdown report: one ranked leaderboard table per metric."""
        lines = [f"# Campaign report — {self.name}", ""]
        lines += [f"- {entry}" for entry in self._header_lines()]
        for metric in self.metrics:
            board = self.leaderboard(metric)
            if not board:
                continue
            direction = "lower is better" if metric in LOWER_IS_BETTER else "higher is better"
            lines += ["", f"## {metric} ({direction})", ""]
            header = ["rank", "method", OVERALL, *self.scenarios]
            lines.append("| " + " | ".join(header) + " |")
            lines.append("|" + "|".join(" --- " for _ in header) + "|")
            for rank, (method, overall_stats) in enumerate(board, start=1):
                row = [str(rank), f"`{method}`"]
                row.append(
                    f"{_format_value(metric, overall_stats['mean'])} "
                    f"± {_format_value(metric, overall_stats['std'])}"
                )
                for scenario in self.scenarios:
                    stats = self.stats(metric, scenario, method)
                    if stats is None:
                        row.append("—")
                    else:
                        row.append(
                            f"{_format_value(metric, stats['mean'])} "
                            f"± {_format_value(metric, stats['std'])}"
                        )
                lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines) + "\n"

    def to_text(self) -> str:
        """Aligned plain-text tables (the CLI's default ``--format table``)."""
        blocks = list(self._header_lines())
        for metric in self.metrics:
            board = self.leaderboard(metric)
            if not board:
                continue
            rows = []
            for rank, (method, overall_stats) in enumerate(board, start=1):
                row: Dict[str, Any] = {
                    "rank": rank,
                    "method": method,
                    "mean": overall_stats["mean"],
                    "std": overall_stats["std"],
                    "median": overall_stats["median"],
                    "min": overall_stats["min"],
                    "max": overall_stats["max"],
                    "n": overall_stats["n"],
                }
                rows.append(row)
            blocks += ["", f"== {metric} ==", format_table(rows)]
        return "\n".join(blocks) + "\n"
