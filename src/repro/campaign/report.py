"""``CampaignReport`` — queryable aggregation of a campaign's cells.

One report summarises every ``(scenario, method)`` pair of a campaign grid:
for each selected metric, the per-pair sample statistics
(:class:`~repro.experiments.stats.SeriesStats` over systems × replications ×
utilisation points) plus an ``overall`` per-method aggregate across all
scenarios, which feeds the per-metric leaderboard.

Reports are values with the same discipline as everything else in the
pipeline: a lossless versioned JSON round-trip
(``kind="repro/campaign-report"``, version 1) and deterministic content —
aggregation always walks cells in the spec's canonical grid order, so a
report built from a 1-worker run and one from a 4-worker (or resumed) run of
the same campaign are **byte-identical** JSON.

Emitters: :meth:`~CampaignReport.to_json` (machine-readable),
:meth:`~CampaignReport.to_markdown` (leaderboard table per metric) and
:meth:`~CampaignReport.to_text` (aligned plain-text tables via
:func:`repro.experiments.stats.format_table`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.campaign.spec import (
    LOWER_IS_BETTER,
    RUNTIME_LOWER_IS_BETTER,
    CampaignSpec,
)
from repro.core.serialization import (
    parse_versioned_payload,
    versioned_payload,
)
from repro.experiments.stats import SeriesStats, format_table

REPORT_KIND = "repro/campaign-report"
#: Version 2 added the optional run-time section; reports without one are
#: still written as version 1 so that version-1 readers keep working.
REPORT_VERSION = 2

#: Aggregate statistics of one (scenario, method, metric) sample.
StatsDict = Dict[str, float]

#: Pseudo-scenario key under which the all-scenarios aggregate is stored.
OVERALL = "overall"


def _stats_dict(values: List[float]) -> StatsDict:
    stats = SeriesStats.of(values)
    return {
        "n": stats.n,
        "mean": stats.mean,
        "std": stats.std,
        "min": stats.minimum,
        "max": stats.maximum,
        "median": stats.median,
    }


def _format_value(metric: str, value: float) -> str:
    if metric in ("response_time", "faults_detected", "skipped_jobs"):
        return f"{value:.1f}"
    return f"{value:.4f}"


def runtime_label(method: str, execution_model: str) -> str:
    """The leaderboard label of one (method, execution model) pair."""
    return f"{method} @ {execution_model}"


@dataclass(frozen=True)
class CampaignReport:
    """Aggregated per-(scenario, method) statistics of one campaign.

    ``entries`` maps ``metric -> scenario -> method -> stats`` where
    ``scenario`` also takes the pseudo-key :data:`OVERALL` for the
    across-scenarios aggregate; pairs with no completed cells are simply
    absent.  ``n_cells_aggregated`` < ``n_cells_expected`` flags a report
    built from a partial (interrupted) campaign.

    Campaigns with a ``runtime`` section additionally aggregate their
    simulation cells into ``runtime_entries``, keyed
    ``metric -> scenario -> "method @ execution-model" -> stats`` (see
    :func:`runtime_label`), with their own expected/aggregated counters and
    per-metric leaderboards over the (method, execution model) pairs.
    """

    name: str
    campaign_key: str
    metrics: Tuple[str, ...]
    scenarios: Tuple[str, ...]
    methods: Tuple[str, ...]
    n_cells_expected: int
    n_cells_aggregated: int
    entries: Dict[str, Dict[str, Dict[str, StatsDict]]]
    runtime_metrics: Tuple[str, ...] = ()
    runtime_labels: Tuple[str, ...] = ()
    n_runtime_cells_expected: int = 0
    n_runtime_cells_aggregated: int = 0
    runtime_entries: Dict[str, Dict[str, Dict[str, StatsDict]]] = field(
        default_factory=dict
    )

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        spec: CampaignSpec,
        records: Mapping[Tuple, Mapping[str, Any]],
        *,
        runtime_records: Optional[Mapping[Tuple, Mapping[str, Any]]] = None,
    ) -> "CampaignReport":
        """Aggregate journalled cell records (see ``CampaignRunner``).

        Cells are visited in the spec's canonical grid order regardless of
        the order ``records`` (and ``runtime_records``) was populated in,
        which makes the resulting report (and its JSON serialisation)
        independent of worker count, chunking and resume history.
        """
        scenario_names = tuple(scenario.name for scenario in spec.scenarios)
        method_names = tuple(str(method) for method in spec.methods)

        samples: Dict[str, Dict[str, Dict[str, List[float]]]] = {
            metric: {
                scenario: {method: [] for method in method_names}
                for scenario in (*scenario_names, OVERALL)
            }
            for metric in spec.metrics
        }
        aggregated = 0
        for cell in spec.cells():
            values = records.get(cell.key())
            if values is None:
                continue
            aggregated += 1
            for metric in spec.metrics:
                if metric not in values:
                    continue
                value = float(values[metric])
                samples[metric][cell.scenario][cell.method].append(value)
                samples[metric][OVERALL][cell.method].append(value)

        entries: Dict[str, Dict[str, Dict[str, StatsDict]]] = {}
        for metric, per_scenario in samples.items():
            for scenario, per_method in per_scenario.items():
                for method, values in per_method.items():
                    if not values:
                        continue
                    entries.setdefault(metric, {}).setdefault(scenario, {})[
                        method
                    ] = _stats_dict(values)

        runtime_metrics: Tuple[str, ...] = ()
        runtime_label_names: Tuple[str, ...] = ()
        runtime_entries: Dict[str, Dict[str, Dict[str, StatsDict]]] = {}
        runtime_aggregated = 0
        if spec.runtime is not None:
            runtime_metrics = spec.runtime.metrics
            runtime_label_names = tuple(
                runtime_label(method, str(model))
                for method in method_names
                for model in spec.runtime.execution_models
            )
            runtime_samples: Dict[str, Dict[str, Dict[str, List[float]]]] = {
                metric: {
                    scenario: {label: [] for label in runtime_label_names}
                    for scenario in (*scenario_names, OVERALL)
                }
                for metric in runtime_metrics
            }
            runtime_records = runtime_records or {}
            for cell in spec.runtime_cells():
                values = runtime_records.get(cell.key())
                if values is None:
                    continue
                runtime_aggregated += 1
                label = runtime_label(cell.method, cell.execution_model)
                for metric in runtime_metrics:
                    if metric not in values:
                        continue
                    value = float(values[metric])
                    runtime_samples[metric][cell.scenario][label].append(value)
                    runtime_samples[metric][OVERALL][label].append(value)
            for metric, per_scenario in runtime_samples.items():
                for scenario, per_label in per_scenario.items():
                    for label, values in per_label.items():
                        if not values:
                            continue
                        runtime_entries.setdefault(metric, {}).setdefault(scenario, {})[
                            label
                        ] = _stats_dict(values)

        return cls(
            name=spec.name,
            campaign_key=spec.content_key(),
            metrics=spec.metrics,
            scenarios=scenario_names,
            methods=method_names,
            n_cells_expected=spec.n_cells,
            n_cells_aggregated=aggregated,
            entries=entries,
            runtime_metrics=runtime_metrics,
            runtime_labels=runtime_label_names,
            n_runtime_cells_expected=spec.n_runtime_cells,
            n_runtime_cells_aggregated=runtime_aggregated,
            runtime_entries=runtime_entries,
        )

    # -- queries -----------------------------------------------------------------

    @property
    def complete(self) -> bool:
        return (
            self.n_cells_aggregated == self.n_cells_expected
            and self.n_runtime_cells_aggregated == self.n_runtime_cells_expected
        )

    @property
    def has_runtime(self) -> bool:
        """Whether the campaign carried a run-time section."""
        return bool(self.runtime_metrics)

    def stats(self, metric: str, scenario: str, method: str) -> Optional[StatsDict]:
        """The stats of one (metric, scenario, method) entry, or ``None``."""
        return self.entries.get(metric, {}).get(scenario, {}).get(method)

    def runtime_stats(
        self, metric: str, scenario: str, method: str, execution_model: str
    ) -> Optional[StatsDict]:
        """The stats of one (metric, scenario, method, model) entry, or ``None``."""
        label = runtime_label(method, execution_model)
        return self.runtime_entries.get(metric, {}).get(scenario, {}).get(label)

    def leaderboard(self, metric: str) -> List[Tuple[str, StatsDict]]:
        """Methods ranked by their overall mean of ``metric`` (best first).

        Higher is better except for the metrics in
        :data:`~repro.campaign.spec.LOWER_IS_BETTER`; ties break by method
        name so rankings are stable.
        """
        overall = self.entries.get(metric, {}).get(OVERALL, {})
        reverse = metric not in LOWER_IS_BETTER
        return sorted(
            overall.items(),
            key=lambda item: ((-item[1]["mean"]) if reverse else item[1]["mean"], item[0]),
        )

    def runtime_leaderboard(self, metric: str) -> List[Tuple[str, StatsDict]]:
        """(method, execution model) pairs ranked by their overall mean.

        Higher is better except for the metrics in
        :data:`~repro.campaign.spec.RUNTIME_LOWER_IS_BETTER`; ties break by
        label so rankings are stable.
        """
        overall = self.runtime_entries.get(metric, {}).get(OVERALL, {})
        reverse = metric not in RUNTIME_LOWER_IS_BETTER
        return sorted(
            overall.items(),
            key=lambda item: ((-item[1]["mean"]) if reverse else item[1]["mean"], item[0]),
        )

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "name": self.name,
            "campaign_key": self.campaign_key,
            "metrics": list(self.metrics),
            "scenarios": list(self.scenarios),
            "methods": list(self.methods),
            "cells": {
                "expected": self.n_cells_expected,
                "aggregated": self.n_cells_aggregated,
            },
            "entries": self.entries,
        }
        if self.has_runtime:
            data["runtime"] = {
                "metrics": list(self.runtime_metrics),
                "labels": list(self.runtime_labels),
                "cells": {
                    "expected": self.n_runtime_cells_expected,
                    "aggregated": self.n_runtime_cells_aggregated,
                },
                "entries": self.runtime_entries,
            }
        # Reports without a runtime section serialise exactly as version 1
        # did, so payloads only claim the newer version when they need it.
        version = REPORT_VERSION if self.has_runtime else 1
        return versioned_payload(REPORT_KIND, version, data)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignReport":
        _, data = parse_versioned_payload(
            dict(payload), REPORT_KIND, max_version=REPORT_VERSION
        )
        cells = data.get("cells") or {}
        runtime = data.get("runtime") or {}
        runtime_cells = runtime.get("cells") or {}

        def _entries(source: Mapping) -> Dict[str, Dict[str, Dict[str, StatsDict]]]:
            return {
                metric: {
                    scenario: {method: dict(stats) for method, stats in per_method.items()}
                    for scenario, per_method in per_scenario.items()
                }
                for metric, per_scenario in source.items()
            }

        return cls(
            name=str(data["name"]),
            campaign_key=str(data["campaign_key"]),
            metrics=tuple(data["metrics"]),
            scenarios=tuple(data["scenarios"]),
            methods=tuple(data["methods"]),
            n_cells_expected=int(cells.get("expected", 0)),
            n_cells_aggregated=int(cells.get("aggregated", 0)),
            entries=_entries(data.get("entries") or {}),
            runtime_metrics=tuple(runtime.get("metrics") or ()),
            runtime_labels=tuple(runtime.get("labels") or ()),
            n_runtime_cells_expected=int(runtime_cells.get("expected", 0)),
            n_runtime_cells_aggregated=int(runtime_cells.get("aggregated", 0)),
            runtime_entries=_entries(runtime.get("entries") or {}),
        )

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignReport":
        return cls.from_dict(json.loads(text))

    # -- human-readable emitters -------------------------------------------------

    def _header_lines(self) -> List[str]:
        coverage = f"{self.n_cells_aggregated}/{self.n_cells_expected} cells"
        if self.has_runtime:
            coverage += (
                f" + {self.n_runtime_cells_aggregated}/"
                f"{self.n_runtime_cells_expected} runtime cells"
            )
        if not self.complete:
            coverage += " (PARTIAL — campaign not finished)"
        lines = [
            f"campaign: {self.name} ({self.campaign_key})",
            f"coverage: {coverage}",
            f"scenarios: {', '.join(self.scenarios)}",
            f"methods: {', '.join(self.methods)}",
        ]
        if self.has_runtime:
            lines.append(f"runtime: {', '.join(self.runtime_labels)}")
        return lines

    def _boards(self) -> List[Tuple[str, str, bool, List[Tuple[str, StatsDict]], str]]:
        """Every leaderboard to emit: (title, metric, lower_is_better, board, kind).

        Schedule-metric boards first, then run-time boards (titled
        ``runtime:<metric>``), both in canonical metric order.
        """
        boards = []
        for metric in self.metrics:
            boards.append(
                (metric, metric, metric in LOWER_IS_BETTER, self.leaderboard(metric), "method")
            )
        for metric in self.runtime_metrics:
            boards.append(
                (
                    f"runtime:{metric}",
                    metric,
                    metric in RUNTIME_LOWER_IS_BETTER,
                    self.runtime_leaderboard(metric),
                    "method @ execution model",
                )
            )
        return boards

    def _scenario_stats(self, title: str, metric: str, scenario: str, label: str):
        if title.startswith("runtime:"):
            return self.runtime_entries.get(metric, {}).get(scenario, {}).get(label)
        return self.stats(metric, scenario, label)

    def to_markdown(self) -> str:
        """Markdown report: one ranked leaderboard table per metric."""
        lines = [f"# Campaign report — {self.name}", ""]
        lines += [f"- {entry}" for entry in self._header_lines()]
        for title, metric, lower, board, label_kind in self._boards():
            if not board:
                continue
            direction = "lower is better" if lower else "higher is better"
            lines += ["", f"## {title} ({direction})", ""]
            header = ["rank", label_kind, OVERALL, *self.scenarios]
            lines.append("| " + " | ".join(header) + " |")
            lines.append("|" + "|".join(" --- " for _ in header) + "|")
            for rank, (label, overall_stats) in enumerate(board, start=1):
                row = [str(rank), f"`{label}`"]
                row.append(
                    f"{_format_value(metric, overall_stats['mean'])} "
                    f"± {_format_value(metric, overall_stats['std'])}"
                )
                for scenario in self.scenarios:
                    stats = self._scenario_stats(title, metric, scenario, label)
                    if stats is None:
                        row.append("—")
                    else:
                        row.append(
                            f"{_format_value(metric, stats['mean'])} "
                            f"± {_format_value(metric, stats['std'])}"
                        )
                lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines) + "\n"

    def to_text(self) -> str:
        """Aligned plain-text tables (the CLI's default ``--format table``)."""
        blocks = list(self._header_lines())
        for title, _metric, _lower, board, label_kind in self._boards():
            if not board:
                continue
            rows = []
            for rank, (label, overall_stats) in enumerate(board, start=1):
                row: Dict[str, Any] = {
                    "rank": rank,
                    label_kind.split(" ")[0]: label,
                    "mean": overall_stats["mean"],
                    "std": overall_stats["std"],
                    "median": overall_stats["median"],
                    "min": overall_stats["min"],
                    "max": overall_stats["max"],
                    "n": overall_stats["n"],
                }
                rows.append(row)
            blocks += ["", f"== {title} ==", format_table(rows)]
        return "\n".join(blocks) + "\n"
