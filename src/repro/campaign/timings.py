"""Per-cell timing sidecars of a campaign run, and the ``--timings`` table.

The runner appends one JSON line per freshly evaluated cell to an optional
``campaign.metrics.jsonl`` sidecar next to the journal (sharded runs write
``campaign.shard-i-of-n.metrics.jsonl``): cell coordinates, kind
(``schedule``/``simulation``), cache status, and the response's wall-clock
``elapsed_ms``.  Timing is *observability, not result data*: sidecar lines
are wall-clock dependent by nature, so they are never merged, never resumed
from, and never allowed anywhere near the journal — ``campaign.jsonl`` stays
byte-identical with sidecars on or off, at any worker or shard count.

``python -m repro.campaign report --timings`` aggregates every
``*.metrics.jsonl`` in the campaign directory into a p50/p95 table per
(scenario, method, kind) over the *computed* (non-hit) cells.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.campaign.spec import CampaignCell, RuntimeCell
from repro.experiments.stats import format_table, percentile

#: Sidecar of the canonical journal.
TIMINGS_FILENAME = "campaign.metrics.jsonl"

#: All sidecars (canonical + per-shard) a report should aggregate.
TIMINGS_GLOB = "*.metrics.jsonl"

KIND_SCHEDULE = "schedule"
KIND_SIMULATION = "simulation"


def timings_filename(journal_filename: str) -> str:
    """The sidecar filename of a journal: ``<stem>.metrics.jsonl``."""
    stem = journal_filename
    if stem.endswith(".jsonl"):
        stem = stem[: -len(".jsonl")]
    return f"{stem}.metrics.jsonl"


def schedule_timing_entry(
    cell: CampaignCell, *, cache: str, elapsed_s: float
) -> Dict[str, object]:
    return {
        "kind": KIND_SCHEDULE,
        "sc": cell.scenario,
        "m": cell.method,
        "u": cell.utilisation,
        "i": cell.system_index,
        "r": cell.replication,
        "cache": cache,
        "elapsed_ms": round(max(0.0, elapsed_s) * 1000.0, 3),
    }


def runtime_timing_entry(
    cell: RuntimeCell, *, cache: str, elapsed_s: float
) -> Dict[str, object]:
    return {
        "kind": KIND_SIMULATION,
        "sc": cell.scenario,
        "m": cell.method,
        "x": cell.execution_model,
        "u": cell.utilisation,
        "i": cell.system_index,
        "r": cell.replication,
        "cache": cache,
        "elapsed_ms": round(max(0.0, elapsed_s) * 1000.0, 3),
    }


def read_timing_entries(directory: Union[str, Path]) -> List[Dict[str, object]]:
    """Every timing entry of a campaign directory (all sidecars, any shard).

    Unreadable lines are skipped — a sidecar torn by an interrupt costs a
    timing sample, never a result.
    """
    entries: List[Dict[str, object]] = []
    for path in sorted(Path(directory).glob(TIMINGS_GLOB)):
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if isinstance(entry, dict) and "elapsed_ms" in entry:
                    entries.append(entry)
    return entries


def timings_rows(
    entries: Iterable[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Aggregate timing entries into p50/p95 rows per (scenario, method, kind).

    Percentiles cover the *computed* cells only — cache hits answer in
    microseconds and would drown the signal; their count is reported in the
    ``hits`` column instead.
    """
    groups: Dict[Tuple[str, str, str], Dict[str, List[float]]] = {}
    for entry in entries:
        try:
            key = (str(entry["sc"]), str(entry["m"]), str(entry["kind"]))
            elapsed_ms = float(entry["elapsed_ms"])  # type: ignore[arg-type]
            cache = str(entry.get("cache", ""))
        except (KeyError, TypeError, ValueError):
            continue
        group = groups.setdefault(key, {"computed": [], "hits": []})
        (group["hits"] if cache == "hit" else group["computed"]).append(elapsed_ms)
    rows: List[Dict[str, object]] = []
    for (scenario, method, kind) in sorted(groups):
        group = groups[(scenario, method, kind)]
        computed = group["computed"]
        row: Dict[str, object] = {
            "scenario": scenario,
            "method": method,
            "kind": kind,
            "n": len(computed) + len(group["hits"]),
            "hits": len(group["hits"]),
        }
        if computed:
            row["p50_ms"] = percentile(computed, 50)
            row["p95_ms"] = percentile(computed, 95)
        else:
            row["p50_ms"] = float("nan")
            row["p95_ms"] = float("nan")
        rows.append(row)
    return rows


def format_timings_table(entries: Iterable[Dict[str, object]]) -> str:
    """The ``--timings`` table: one row per (scenario, method, kind)."""
    rows = timings_rows(entries)
    if not rows:
        return "(no timing sidecars found)"
    return format_table(
        rows,
        columns=["scenario", "method", "kind", "n", "hits", "p50_ms", "p95_ms"],
    )


class TimingsWriter:
    """Lazily appended timing sidecar next to a runner's journal.

    ``directory=None`` (an in-memory campaign) or ``enabled=False`` makes
    every call a no-op, so the runner can always write through this object.
    """

    def __init__(self, directory: Optional[Path], journal_filename: str, enabled: bool):
        self._path = (
            directory / timings_filename(journal_filename)
            if directory is not None and enabled
            else None
        )
        self._handle = None

    def write(self, entry: Dict[str, object]) -> None:
        if self._path is None:
            return
        if self._handle is None:
            self._handle = open(self._path, "a", encoding="utf-8")
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
