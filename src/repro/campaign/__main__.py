"""``python -m repro.campaign`` — run campaigns and aggregate their reports.

Two subcommands over one artifact convention (a directory per campaign,
keyed by the spec's content hash, holding ``campaign.json`` + the
``campaign.jsonl`` cell journal):

``run``
    Execute a campaign grid.  The spec comes from a JSON file, inline JSON,
    or is built right on the command line from ``--scenarios``/``--methods``
    style flags.  ``--resume`` continues an interrupted campaign with zero
    recomputation; ``--workers`` fans the cells out over a process pool
    without changing a single output byte.  ``--shard I/N`` runs only the
    ``I``-th of ``N`` disjoint content-key ranges of the grid — launch N
    such processes (same spec, same ``--artifact-dir``) and the last one to
    finish merges the per-shard journals into the canonical
    ``campaign.jsonl``, byte-identical to a single-process run.
``merge``
    Reassemble ``campaign.jsonl`` from complete shard journals by hand —
    what the auto-merge does, for when the shards ran on different machines
    and their journals were copied together afterwards.
``report``
    Aggregate a campaign's journal into a :class:`CampaignReport` and emit
    it as an aligned text table, Markdown leaderboards, or versioned JSON.

Examples::

    # A 6-cell campaign built from flags, run on 2 workers, reported as text
    python -m repro.campaign run --name demo \\
        --scenarios paper-default short-hyperperiod --methods static gpiocp \\
        --systems 1 --utilisations 0.4 --artifact-dir campaigns/ --workers 2

    # Interrupted?  Resume recomputes nothing:
    python -m repro.campaign run --name demo ... --artifact-dir campaigns/ --resume

    # The same campaign split over two concurrent workers sharing one
    # SQLite cache; whichever finishes last merges the shard journals
    python -m repro.campaign run --name demo ... --artifact-dir campaigns/ \\
        --cache-backend sqlite:path=cache.db --shard 1/2 &
    python -m repro.campaign run --name demo ... --artifact-dir campaigns/ \\
        --cache-backend sqlite:path=cache.db --shard 2/2

    # Aggregate and emit the Markdown leaderboard
    python -m repro.campaign report --artifact-dir campaigns/ --format md

    # What can campaigns be built from?
    python -m repro.campaign --list
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.campaign.report import CampaignReport
from repro.campaign.timings import format_timings_table, read_timing_entries
from repro.core import logging as relog
from repro.campaign.runner import (
    CAMPAIGN_SPEC_FILENAME,
    CampaignRunner,
    load_campaign_records,
    merge_shard_journals,
    parse_shard,
)
from repro.campaign.spec import (
    CAMPAIGN_METRICS,
    CampaignSpec,
    build_campaign,
    load_campaign,
)
from repro.runtime import format_execution_model_listing
from repro.scenario import format_scenario_listing
from repro.scheduling import format_scheduler_listing

REPORT_FORMATS = ("table", "md", "json")

_BUILDER_FLAGS = (
    "name",
    "scenarios",
    "methods",
    "execution_models",
    "systems",
    "utilisations",
    "replications",
    "metrics",
    "description",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Declarative multi-scenario campaign orchestration: "
        "run scenario x method grids, resume them, aggregate reports.",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the building blocks of a campaign (registered scenario "
        "presets with content keys, registered scheduling methods) and exit",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list the registered scenario presets and exit",
    )
    parser.add_argument(
        "--list-methods",
        action="store_true",
        help="list the registered scheduling methods and exit",
    )
    parser.add_argument(
        "--list-execution-models",
        action="store_true",
        help="list the registered run-time execution models and exit",
    )
    commands = parser.add_subparsers(dest="command")

    run = commands.add_parser(
        "run", help="execute a campaign grid (checkpointed, resumable)"
    )
    run.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="campaign spec: a repro/campaign JSON file or inline JSON; omit "
        "to build the spec from the flags below",
    )
    run.add_argument(
        "--name", default=None, help="campaign name (flag-built specs; default: campaign)"
    )
    run.add_argument("--description", default=None, help="campaign description")
    run.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        metavar="NAME_OR_JSON",
        help="scenarios of the grid (preset names or inline scenario JSON; "
        "default: paper-default)",
    )
    run.add_argument(
        "--methods",
        nargs="+",
        default=None,
        metavar="SPEC",
        help="scheduler spec strings of the grid (default: static)",
    )
    run.add_argument(
        "--execution-models",
        nargs="+",
        default=None,
        metavar="MODEL",
        help="add a runtime section: execute every cell's schedule on these "
        "execution models (see --list-execution-models); omit for a "
        "schedule-only campaign",
    )
    run.add_argument(
        "--systems",
        type=int,
        default=None,
        metavar="N",
        help="system indices 0..N-1 per scenario (default: 1)",
    )
    run.add_argument(
        "--utilisations",
        nargs="+",
        type=float,
        default=None,
        metavar="U",
        help="utilisation points to pin per scenario (default: each "
        "scenario's own workload utilisation)",
    )
    run.add_argument(
        "--replications",
        type=int,
        default=None,
        metavar="N",
        help="replications per cell; decorrelates stochastic methods "
        "(default: 1)",
    )
    run.add_argument(
        "--metrics",
        nargs="+",
        default=None,
        choices=list(CAMPAIGN_METRICS),
        help="metrics to record per cell (default: all)",
    )
    run.add_argument(
        "--artifact-dir",
        default=None,
        metavar="DIR",
        help="root directory for campaign artifacts (spec + cell journal); "
        "required for --resume",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes of the scheduling service (default: 1); "
        "results are bit-identical at any worker count",
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent content-addressed schedule cache shared with other "
        "service consumers (omit to cache in memory for this run only)",
    )
    run.add_argument(
        "--cache-backend",
        default=None,
        metavar="SPEC",
        help="storage backend for the persistent caches, as a 'name:key=value' "
        "spec string — e.g. 'sqlite:path=cache.db' holds the schedule and "
        "simulation caches in one file, safe to share between concurrent "
        "shard workers (see `python -m repro.store --list-backends`).  "
        "Conflicts with --cache-dir",
    )
    run.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="run only the I-th of N disjoint content-key shards of the grid "
        "(1-based), journalling to campaign.shard-I-of-N.jsonl; requires "
        "--artifact-dir.  When the last shard finishes, the journals are "
        "merged into the canonical campaign.jsonl automatically",
    )
    run.add_argument(
        "--server",
        default=None,
        metavar="HOST:PORT",
        help="evaluate cells through a running repro.server daemon instead of "
        "a private worker pool (see `python -m repro.server serve`); "
        "--workers/--cache-dir then belong to the daemon and are rejected "
        "here",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted campaign from its journal (zero "
        "recomputation); without this flag, existing progress is an error",
    )
    run.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="evaluate at most N pending cells then stop (testing/budgeting; "
        "resume later with --resume)",
    )
    run.add_argument(
        "--report",
        dest="report_format",
        choices=(*REPORT_FORMATS, "none"),
        default="table",
        help="report format printed after the run (default: table)",
    )
    run.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    run.add_argument(
        "--timings",
        action="store_true",
        help="record per-cell wall-clock timings to a campaign.metrics.jsonl "
        "sidecar next to the journal (observability only — the journal's "
        "bytes are unchanged); view with `report --timings`.  Requires "
        "--artifact-dir",
    )
    run.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the run's service metrics (Prometheus text exposition) "
        "to FILE when the campaign finishes",
    )
    relog.add_log_level_argument(run)

    merge = commands.add_parser(
        "merge",
        help="merge complete shard journals into the canonical campaign.jsonl "
        "(what the last finishing shard does automatically)",
    )
    merge.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="campaign spec (JSON file or inline JSON); omit to auto-discover "
        "the campaign under --artifact-dir (or select one with --key)",
    )
    merge.add_argument(
        "--artifact-dir",
        required=True,
        metavar="DIR",
        help="root directory the campaign shards were run with",
    )
    merge.add_argument(
        "--key",
        default=None,
        metavar="CONTENT_KEY",
        help="content key of the campaign to merge (as printed by run)",
    )
    relog.add_log_level_argument(merge)

    report = commands.add_parser(
        "report", help="aggregate a campaign's journal into a report"
    )
    report.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="campaign spec (JSON file or inline JSON); omit to auto-discover "
        "the campaign under --artifact-dir (or select one with --key)",
    )
    report.add_argument(
        "--artifact-dir",
        required=True,
        metavar="DIR",
        help="root directory the campaign was run with",
    )
    report.add_argument(
        "--key",
        default=None,
        metavar="CONTENT_KEY",
        help="content key of the campaign to report (as printed by run)",
    )
    report.add_argument(
        "--format",
        dest="report_format",
        choices=REPORT_FORMATS,
        default="table",
        help="output format (default: table)",
    )
    report.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    report.add_argument(
        "--timings",
        action="store_true",
        help="append a p50/p95 wall-clock timing table per scenario x method, "
        "aggregated from the campaign's *.metrics.jsonl sidecars "
        "(see `run --timings`)",
    )
    relog.add_log_level_argument(report)
    return parser


def resolve_run_spec(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> CampaignSpec:
    """The spec of a ``run`` invocation: positional reference XOR builder flags."""
    builder_used = [
        flag for flag in _BUILDER_FLAGS if getattr(args, flag, None) is not None
    ]
    if args.spec is not None:
        if builder_used:
            parser.error(
                "pass either a spec file/JSON or builder flags "
                f"(--{', --'.join(builder_used)}), not both"
            )
        return load_campaign(args.spec)
    return build_campaign(
        name=args.name or "campaign",
        description=args.description or "",
        scenarios=tuple(args.scenarios) if args.scenarios else ("paper-default",),
        methods=tuple(args.methods) if args.methods else ("static",),
        n_systems=args.systems if args.systems is not None else 1,
        utilisations=tuple(args.utilisations) if args.utilisations else (),
        replications=args.replications if args.replications is not None else 1,
        metrics=tuple(args.metrics) if args.metrics else CAMPAIGN_METRICS,
        execution_models=tuple(args.execution_models) if args.execution_models else (),
    )


def discover_campaign_spec(
    parser: argparse.ArgumentParser, artifact_dir: str, key: Optional[str]
) -> CampaignSpec:
    """Load a campaign spec from its artifact directory (``report`` command)."""
    root = Path(artifact_dir)
    if key is not None:
        candidates = [root / key / CAMPAIGN_SPEC_FILENAME]
        if not candidates[0].exists():
            parser.error(f"no campaign with key {key!r} under {artifact_dir!r}")
    else:
        candidates = sorted(root.glob(f"*/{CAMPAIGN_SPEC_FILENAME}"))
        if not candidates:
            parser.error(f"no campaigns found under {artifact_dir!r}")
        if len(candidates) > 1:
            keys = ", ".join(path.parent.name for path in candidates)
            parser.error(
                f"multiple campaigns under {artifact_dir!r} ({keys}); "
                "select one with --key or pass the spec explicitly"
            )
    return load_campaign(str(candidates[0]))


def render_report(report: CampaignReport, fmt: str) -> str:
    if fmt == "json":
        return report.to_json() + "\n"
    if fmt == "md":
        return report.to_markdown()
    return report.to_text()


def emit(text: str, output: Optional[str]) -> None:
    if output is None:
        sys.stdout.write(text)
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)


def _write_runner_metrics(path: str, runner: CampaignRunner) -> None:
    """Write the runner's service metrics as Prometheus text exposition.

    Remote services (``--server``) proxy to the daemon and carry no local
    registries — scrape the daemon's ``metrics`` op for those instead.
    """
    from repro.obs import merge_snapshots, write_metrics_file

    registries = []
    for service in (runner.simulation, runner.service):
        collect = getattr(service, "metrics_registries", None)
        if collect is None:
            continue
        for registry in collect():
            if not any(registry is seen for seen in registries):
                registries.append(registry)
    snapshot = merge_snapshots([registry.snapshot() for registry in registries])
    write_metrics_file(path, snapshot)
    relog.info("metrics-written", path=path)


def cmd_run(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.resume and args.artifact_dir is None:
        parser.error("--resume requires --artifact-dir")
    if args.max_cells is not None and args.max_cells < 1:
        parser.error(f"--max-cells must be >= 1, got {args.max_cells}")
    if args.cache_dir is not None and args.cache_backend is not None:
        parser.error("pass either --cache-dir or --cache-backend, not both")
    if args.timings and args.artifact_dir is None:
        parser.error("--timings requires --artifact-dir (the sidecar's home)")
    shard = None
    if args.shard is not None:
        try:
            shard = parse_shard(args.shard)
        except ValueError as error:
            parser.error(f"--shard: {error}")
        if args.artifact_dir is None:
            parser.error("--shard requires --artifact-dir (the merge point)")
    try:
        spec = resolve_run_spec(parser, args)
    except (ValueError, KeyError) as error:
        parser.error(f"invalid campaign spec: {error}")

    service = simulation = None
    if args.server is not None:
        if args.workers != 1:
            parser.error("--workers is the daemon's setting; drop it with --server")
        if args.cache_dir is not None:
            parser.error("--cache-dir is the daemon's setting; drop it with --server")
        if args.cache_backend is not None:
            parser.error(
                "--cache-backend is the daemon's setting; drop it with --server"
            )
        from repro.server import (
            RemoteSchedulingService,
            RemoteSimulationService,
            parse_address,
        )

        try:
            host, port = parse_address(args.server)
        except ValueError as error:
            parser.error(f"--server: {error}")
        try:
            service = RemoteSchedulingService(host, port)
            if spec.runtime is not None:
                simulation = RemoteSimulationService(host, port)
        except OSError as error:
            parser.error(f"--server: cannot reach {args.server}: {error}")

    try:
        with CampaignRunner(
            spec,
            artifact_dir=args.artifact_dir,
            n_workers=args.workers,
            cache_dir=args.cache_dir,
            cache_backend=args.cache_backend,
            shard=shard,
            service=service,
            simulation=simulation,
            timings=args.timings,
        ) as runner:
            if runner.completed_cells and not args.resume:
                parser.error(
                    f"campaign {spec.name!r} ({spec.content_key()}) already has "
                    f"{runner.completed_cells} completed cell(s) under "
                    f"{args.artifact_dir!r}; pass --resume to continue it"
                )
            result = runner.run(max_cells=args.max_cells)
            if args.metrics_out is not None:
                _write_runner_metrics(args.metrics_out, runner)
    finally:
        if simulation is not None:
            simulation.close()
        if service is not None:
            service.close()

    n_cells = result.expected_cells if shard is not None else spec.n_cells
    n_runtime = (
        result.expected_runtime_cells if shard is not None else spec.n_runtime_cells
    )
    done = f"{len(result.records)}/{n_cells} cells done"
    if spec.runtime is not None:
        done += f", {len(result.runtime_records)}/{n_runtime} runtime cells done"
    label = f"campaign {spec.name!r} ({spec.content_key()})"
    if shard is not None:
        label += f" shard {shard[0]}/{shard[1]}"
    print(
        f"{label}: {result.evaluated} evaluated, {result.resumed} resumed, {done}",
        file=sys.stderr,
    )
    if not result.complete:
        print(
            "campaign incomplete; re-run with --resume to finish it",
            file=sys.stderr,
        )
    if args.report_format == "none":
        return 0
    if shard is None:
        emit(render_report(result.report(), args.report_format), args.output)
    elif result.merged_journal is not None:
        # All shards done: report the full merged campaign, not our slice.
        print(f"merged shard journals into {result.merged_journal}", file=sys.stderr)
        records, runtime_records = load_campaign_records(args.artifact_dir, spec)
        report = CampaignReport.from_records(
            spec, records, runtime_records=runtime_records
        )
        emit(render_report(report, args.report_format), args.output)
    else:
        print(
            "other shards still pending; once they finish, the journals merge "
            "automatically (or run `python -m repro.campaign merge`)",
            file=sys.stderr,
        )
    return 0


def cmd_merge(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    try:
        if args.spec is not None:
            spec = load_campaign(args.spec)
        else:
            spec = discover_campaign_spec(parser, args.artifact_dir, args.key)
    except (ValueError, KeyError) as error:
        parser.error(f"invalid campaign spec: {error}")

    directory = Path(args.artifact_dir) / spec.content_key()
    try:
        target = merge_shard_journals(directory, spec)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(
        f"merged shard journals of campaign {spec.name!r} "
        f"({spec.content_key()}) into {target}",
        file=sys.stderr,
    )
    return 0


def cmd_report(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    try:
        if args.spec is not None:
            spec = load_campaign(args.spec)
        else:
            spec = discover_campaign_spec(parser, args.artifact_dir, args.key)
    except (ValueError, KeyError) as error:
        parser.error(f"invalid campaign spec: {error}")

    records, runtime_records = load_campaign_records(args.artifact_dir, spec)
    report = CampaignReport.from_records(spec, records, runtime_records=runtime_records)
    if not report.complete:
        print(
            f"warning: report covers {report.n_cells_aggregated}/"
            f"{report.n_cells_expected} cells; run with --resume to finish "
            "the campaign",
            file=sys.stderr,
        )
    text = render_report(report, args.report_format)
    if args.timings:
        directory = Path(args.artifact_dir) / spec.content_key()
        table = format_timings_table(read_timing_entries(directory))
        text += f"\nper-cell wall-clock timings (computed cells):\n{table}\n"
    emit(text, args.output)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    relog.configure_from_args(args)

    if args.list or args.list_scenarios or args.list_methods or args.list_execution_models:
        sections: List[str] = []
        if args.list or args.list_scenarios:
            sections.append("scenario presets (name, content key, description):")
            sections.append(format_scenario_listing())
        if args.list or args.list_methods:
            sections.append("scheduling methods:")
            sections.append(format_scheduler_listing())
        if args.list or args.list_execution_models:
            sections.append("run-time execution models:")
            sections.append(format_execution_model_listing())
        print("\n".join(sections))
        return 0

    if args.command == "run":
        return cmd_run(parser, args)
    if args.command == "merge":
        return cmd_merge(parser, args)
    if args.command == "report":
        return cmd_report(parser, args)
    parser.error("a subcommand is required (run, merge, report) — or --list")
    return 2  # pragma: no cover — parser.error raises


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
