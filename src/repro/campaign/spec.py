"""``CampaignSpec`` — a declarative grid of scenarios × methods × systems.

A campaign is the scenario-diversity axis of the evaluation pipeline made
first-class: one frozen, versioned value describing *which* scenarios to
evaluate, *with which* scheduling methods (:class:`~repro.service.SchedulerSpec`
strings), over *how many* deterministic systems, at *which* utilisation
points, with *how many* replications, reporting *which* metrics.

The spec follows the same serialisation discipline as
:class:`~repro.scenario.Scenario` and the service messages: a lossless JSON
round-trip through the versioned ``{kind, version, data}`` envelope
(``kind="repro/campaign"``, version 1) and a :meth:`~CampaignSpec.content_key`
hash over every field, so a campaign's artifact directory — like a schedule
cache entry — can never silently mix results from two different grids.

:meth:`CampaignSpec.cells` expands the grid into the canonical, deterministic
cell order every consumer shares (runner, journal, report): scenario-major,
then utilisation point, system index, replication and method.  That fixed
order is what makes resumed and multi-worker campaigns byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Tuple, Union

from repro.core.serialization import (
    content_hash,
    parse_versioned_payload,
    versioned_payload,
)
from repro.scenario import Scenario, ScenarioLike, create_scenario
from repro.service import SchedulerSpec

CAMPAIGN_KIND = "repro/campaign"
CAMPAIGN_VERSION = 1

#: Metrics a campaign can select, in canonical reporting order.
#: ``schedulable``/``psi``/``upsilon``/``best_psi``/``best_upsilon`` come from
#: the schedule responses (:mod:`repro.core.metrics` semantics); ``response_time``
#: is the analytical worst case of :func:`repro.analysis.max_response_time`.
CAMPAIGN_METRICS: Tuple[str, ...] = (
    "schedulable",
    "psi",
    "upsilon",
    "best_psi",
    "best_upsilon",
    "response_time",
)

#: Metrics where a *smaller* aggregate wins the leaderboard.
LOWER_IS_BETTER = frozenset({"response_time"})


@dataclass(frozen=True)
class CampaignCell:
    """One evaluation cell of the expanded grid (picklable, hashable).

    ``utilisation`` is ``None`` when the campaign has no explicit utilisation
    sweep — the scenario's own workload utilisation applies.  ``method`` is
    the canonical spec string, so logically-equal specs name the same cell.
    """

    scenario: str
    method: str
    utilisation: Optional[float]
    system_index: int
    replication: int

    def key(self) -> Tuple[str, str, Optional[float], int, int]:
        """The journal/lookup key of this cell."""
        return (
            self.scenario,
            self.method,
            self.utilisation,
            self.system_index,
            self.replication,
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A frozen, versioned description of one evaluation campaign.

    ``scenarios`` entries may be given as anything
    :func:`repro.scenario.create_scenario` resolves (preset names, payload
    dicts, inline JSON, ready :class:`~repro.scenario.Scenario` values);
    ``methods`` entries as spec strings or :class:`SchedulerSpec` values.
    Both are coerced at construction, so a spec built from CLI strings and one
    rebuilt from its JSON form compare (and hash) equal.
    """

    name: str = "campaign"
    description: str = ""
    scenarios: Tuple[Scenario, ...] = ("paper-default",)
    methods: Tuple[SchedulerSpec, ...] = ("static",)
    n_systems: int = 1
    utilisations: Tuple[float, ...] = ()
    replications: int = 1
    metrics: Tuple[str, ...] = field(default=CAMPAIGN_METRICS)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name or self.name != self.name.strip():
            raise ValueError(f"campaign name must be a non-empty stripped string, got {self.name!r}")
        object.__setattr__(
            self,
            "scenarios",
            tuple(create_scenario(entry) for entry in self._as_tuple("scenarios")),
        )
        if not self.scenarios:
            raise ValueError("a campaign needs at least one scenario")
        names = [scenario.name for scenario in self.scenarios]
        if len(set(names)) != len(names):
            raise ValueError(f"campaign scenario names must be unique, got {names}")

        object.__setattr__(
            self,
            "methods",
            tuple(SchedulerSpec.coerce(entry) for entry in self._as_tuple("methods")),
        )
        if not self.methods:
            raise ValueError("a campaign needs at least one method")
        method_strings = [str(method) for method in self.methods]
        if len(set(method_strings)) != len(method_strings):
            raise ValueError(f"campaign methods must be unique, got {method_strings}")

        for attr in ("n_systems", "replications"):
            value = getattr(self, attr)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ValueError(f"{attr} must be a positive integer, got {value!r}")

        utilisations = tuple(float(u) for u in self._as_tuple("utilisations"))
        for value in utilisations:
            if not 0.0 < value <= 1.0:
                raise ValueError(f"utilisations must lie in (0, 1], got {value!r}")
        if len(set(utilisations)) != len(utilisations):
            raise ValueError(f"utilisations must be unique, got {list(utilisations)}")
        object.__setattr__(self, "utilisations", utilisations)

        metrics = tuple(self._as_tuple("metrics"))
        unknown = set(metrics) - set(CAMPAIGN_METRICS)
        if unknown:
            raise ValueError(
                f"unknown campaign metrics {sorted(unknown)}; "
                f"available: {list(CAMPAIGN_METRICS)}"
            )
        if not metrics:
            raise ValueError("a campaign needs at least one metric")
        if len(set(metrics)) != len(metrics):
            raise ValueError(f"campaign metrics must be unique, got {list(metrics)}")
        # Normalise to canonical reporting order so logically-equal selections
        # hash (and therefore cache) identically.
        object.__setattr__(
            self, "metrics", tuple(m for m in CAMPAIGN_METRICS if m in metrics)
        )

    def _as_tuple(self, attr: str) -> Tuple:
        value = getattr(self, attr)
        if isinstance(value, (str, Mapping, Scenario, SchedulerSpec)):
            # A lone entry is almost certainly a mistake that tuple() would
            # either reject or silently explode character-wise; wrap it.
            return (value,)
        return tuple(value)

    # -- the grid ----------------------------------------------------------------

    def utilisation_points(self) -> Tuple[Optional[float], ...]:
        """The utilisation axis; ``(None,)`` means each scenario's own value."""
        return self.utilisations if self.utilisations else (None,)

    @property
    def n_cells(self) -> int:
        return (
            len(self.scenarios)
            * len(self.methods)
            * len(self.utilisation_points())
            * self.n_systems
            * self.replications
        )

    def cells(self) -> Iterator[CampaignCell]:
        """Expand the grid in the canonical deterministic order.

        Scenario-major, then utilisation, system index, replication, method —
        the order the runner computes, the journal records and the report
        aggregates in, at every worker count.
        """
        for scenario in self.scenarios:
            for utilisation in self.utilisation_points():
                for system_index in range(self.n_systems):
                    for replication in range(self.replications):
                        for method in self.methods:
                            yield CampaignCell(
                                scenario=scenario.name,
                                method=str(method),
                                utilisation=utilisation,
                                system_index=system_index,
                                replication=replication,
                            )

    def scenario_by_name(self, name: str) -> Scenario:
        for scenario in self.scenarios:
            if scenario.name == name:
                return scenario
        raise KeyError(f"campaign has no scenario named {name!r}")

    # -- serialisation -----------------------------------------------------------

    def data_dict(self) -> Dict[str, Any]:
        """The bare (unversioned) payload; every field enters the content key."""
        return {
            "name": self.name,
            "description": self.description,
            "scenarios": [scenario.to_dict() for scenario in self.scenarios],
            "methods": [method.to_dict() for method in self.methods],
            "n_systems": self.n_systems,
            "utilisations": list(self.utilisations),
            "replications": self.replications,
            "metrics": list(self.metrics),
        }

    def to_dict(self) -> Dict[str, Any]:
        return versioned_payload(CAMPAIGN_KIND, CAMPAIGN_VERSION, self.data_dict())

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        _, data = parse_versioned_payload(
            dict(payload), CAMPAIGN_KIND, max_version=CAMPAIGN_VERSION
        )
        known = {
            "name",
            "description",
            "scenarios",
            "methods",
            "n_systems",
            "utilisations",
            "replications",
            "metrics",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown campaign fields: {sorted(unknown)}")
        return cls(
            name=data.get("name", "campaign"),
            description=data.get("description", ""),
            scenarios=tuple(Scenario.from_dict(entry) for entry in data["scenarios"]),
            methods=tuple(SchedulerSpec.from_dict(entry) for entry in data["methods"]),
            n_systems=int(data.get("n_systems", 1)),
            utilisations=tuple(data.get("utilisations") or ()),
            replications=int(data.get("replications", 1)),
            metrics=tuple(data.get("metrics") or CAMPAIGN_METRICS),
        )

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    def content_key(self) -> str:
        """Content-address of the full campaign (any field change changes it)."""
        return content_hash(self.data_dict())


#: Anything :func:`create_campaign` can resolve into a spec.
CampaignLike = Union[str, Mapping, CampaignSpec]


def create_campaign(ref: CampaignLike) -> CampaignSpec:
    """Resolve a campaign reference: a spec, a payload dict, or JSON text.

    Mirrors :func:`repro.scenario.create_scenario` (minus the name registry —
    campaigns are authored, not preset): strings must be inline JSON or a path
    handled by the caller.
    """
    if isinstance(ref, CampaignSpec):
        return ref
    if isinstance(ref, Mapping):
        return CampaignSpec.from_dict(ref)
    if not isinstance(ref, str):
        raise TypeError(f"cannot resolve a campaign from {type(ref).__name__}")
    text = ref.strip()
    if not text.startswith("{"):
        raise ValueError(
            "campaign references must be inline repro/campaign JSON "
            f"(or a CampaignSpec/payload dict), got {ref!r}"
        )
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"invalid inline campaign JSON: {error}") from None
    return CampaignSpec.from_dict(payload)


def load_campaign(ref: CampaignLike) -> CampaignSpec:
    """Like :func:`create_campaign`, but strings may also name a JSON file.

    This is the resolution every CLI ``--campaign``/``spec`` argument goes
    through: inline JSON (anything starting with ``{``) parses directly,
    anything else is read as a path to a ``repro/campaign`` payload file.
    """
    if isinstance(ref, str) and not ref.strip().startswith("{"):
        path = Path(ref)
        if not path.exists():
            raise ValueError(f"campaign spec file not found: {ref!r}")
        return CampaignSpec.from_json(path.read_text(encoding="utf-8"))
    return create_campaign(ref)


def build_campaign(
    *,
    name: str = "campaign",
    description: str = "",
    scenarios: Sequence[ScenarioLike] = ("paper-default",),
    methods: Sequence[Union[str, SchedulerSpec]] = ("static",),
    n_systems: int = 1,
    utilisations: Sequence[float] = (),
    replications: int = 1,
    metrics: Sequence[str] = CAMPAIGN_METRICS,
) -> CampaignSpec:
    """Keyword-flavoured constructor used by the CLI's flag-builder mode."""
    return CampaignSpec(
        name=name,
        description=description,
        scenarios=tuple(scenarios),
        methods=tuple(methods),
        n_systems=n_systems,
        utilisations=tuple(utilisations),
        replications=replications,
        metrics=tuple(metrics),
    )
